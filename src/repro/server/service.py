"""The multi-session query service: shared engine, per-session front-ends.

One :class:`QueryService` owns the shared storage stack -- the
registered relations (behind a :class:`~repro.server.state.StateManager`),
one reentrant :class:`~repro.core.executor.SpatialQueryExecutor`, one
:class:`~repro.cache.QueryCache` and one
:class:`~repro.obs.metrics.MetricsRegistry` -- and hands out
:class:`Session` objects as the per-client execution front-end.  Each
session carries its *own* :class:`~repro.obs.trace.Tracer` (tracers are
deliberately not thread-safe; a session is single-threaded by contract)
while publishing into the shared registry, so per-query spans stay
readable per client and fleet-wide counters aggregate in one place.

Reads are epoch-pinned snapshot reads (see :mod:`repro.server.state`);
writes serialize behind per-relation write locks.  Admission control
keeps the service honest under overload:

* at most ``max_inflight`` queries execute at once -- the next one is
  *shed* with a retryable :class:`~repro.errors.ServerBusy`;
* a session that exhausts its ``session_budget`` gets a non-retryable
  :class:`~repro.errors.ServerBusy` (open a new session);
* a read invalidated more than ``snapshot_retries`` times surfaces
  :class:`~repro.errors.SnapshotConflict`;
* after :meth:`QueryService.begin_drain` every new query is refused
  with a retryable :class:`~repro.errors.ShuttingDown`.

Resilience: every admitted read carries a
:class:`~repro.core.cancel.CancellationToken` (with a deadline when the
request specified ``deadline_ms``).  The token is checked cooperatively
inside the executor; a *watchdog* thread additionally cancels tokens
that outlive their deadline, so a read stalled between checkpoints is
reaped at the next boundary it crosses.  Draining cancels every
in-flight token once the ``drain_timeout`` grace expires.

Everything is metered: ``server.sessions_active``,
``server.queries_inflight``, ``server.queries``, ``server.conflicts``
(pin invalidations absorbed by retries), ``server.shed`` and
``server.deadline_exceeded`` (exactly once per expired query, whoever
notices first).
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.cache import QueryCache
from repro.core.cancel import CancellationToken
from repro.core.executor import SpatialQueryExecutor
from repro.errors import (
    DeadlineExceeded,
    QueryCancelled,
    ServerBusy,
    SessionError,
    ShuttingDown,
)
from repro.join.result import JoinResult, SelectResult
from repro.obs.context import TraceContext
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import DURATION_BUCKETS, MetricsRegistry
from repro.obs.trace import Tracer
from repro.predicates.theta import ThetaOperator
from repro.server.state import DEFAULT_READ_RETRIES, EpochPin, StateManager
from repro.storage.costs import CostMeter


@dataclass(slots=True, frozen=True)
class ServiceConfig:
    """Admission-control and concurrency knobs of one service instance.

    ``max_inflight`` bounds simultaneously executing queries across all
    sessions (overload shedding); ``session_budget`` bounds queries per
    session (None = unbounded); ``snapshot_retries`` is the per-read
    re-pin budget before a conflict surfaces.  ``watchdog_interval`` is
    how often (seconds) the deadline watchdog sweeps in-flight tokens;
    it bounds how *late* a stalled query's deadline can fire, not how
    precise deadlines are (the query's own boundary checks are exact).
    """

    max_inflight: int = 8
    session_budget: int | None = None
    snapshot_retries: int = DEFAULT_READ_RETRIES
    watchdog_interval: float = 0.02

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise SessionError(
                f"max_inflight must be positive, got {self.max_inflight}"
            )
        if self.session_budget is not None and self.session_budget < 1:
            raise SessionError(
                f"session_budget must be positive, got {self.session_budget}"
            )
        if self.snapshot_retries < 0:
            raise SessionError(
                f"snapshot_retries must be >= 0, got {self.snapshot_retries}"
            )
        if self.watchdog_interval <= 0:
            raise SessionError(
                f"watchdog_interval must be positive, "
                f"got {self.watchdog_interval}"
            )


class QueryService:
    """Shared engine behind every session; see the module docstring."""

    def __init__(
        self,
        state: StateManager | None = None,
        *,
        executor: SpatialQueryExecutor | None = None,
        cache: QueryCache | None = None,
        metrics: MetricsRegistry | None = None,
        config: ServiceConfig | None = None,
        shards: Any = None,
    ) -> None:
        self.state = state if state is not None else StateManager()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: The service incident log: sheds, drains, deadline hits,
        #: snapshot conflicts -- plus (via ``attach_shards``) the
        #: fleet's kills, WAL recoveries, restarts and failovers.
        self.flight = FlightRecorder()
        #: Service-wide request sequence feeding :meth:`mint_trace` --
        #: a total order over every traced request the service admitted.
        self._trace_seq = itertools.count(1)
        #: Optional :class:`~repro.shard.ShardRuntime` serving sharded
        #: reads next to the shared-relation engine.  Attached here or
        #: later via :meth:`attach_shards`; sessions reach it through
        #: :meth:`Session.shard_select` / :meth:`Session.shard_join`.
        self.shards = None
        if shards is not None:
            self.attach_shards(shards)
        self.cache = cache
        if executor is None:
            executor = SpatialQueryExecutor(
                metrics=self.metrics, cache=cache
            )
        elif cache is None:
            self.cache = executor.cache
        self.executor = executor
        if self.cache is not None:
            self.cache.attach_metrics(self.metrics)
        self.config = config if config is not None else ServiceConfig()
        self._sessions: dict[int, Session] = {}
        self._session_ids = itertools.count(1)
        self._inflight = 0
        self._admission = threading.Lock()
        #: Signalled whenever ``_inflight`` returns to zero -- what
        #: :meth:`wait_idle` (and thus a draining server) blocks on.
        self._idle = threading.Condition(self._admission)
        self._draining = False
        self._query_ids = itertools.count(1)
        #: Tokens of currently admitted queries, keyed by query id --
        #: the watchdog's sweep set and the drain's cancellation set.
        self._inflight_tokens: dict[int, CancellationToken] = {}
        self._watchdog: threading.Thread | None = None
        self._watchdog_stop = threading.Event()

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def open_session(self, client: str = "") -> "Session":
        with self._admission:
            sid = next(self._session_ids)
            session = Session(self, sid, client)
            self._sessions[sid] = session
            self._gauge("server.sessions_active", len(self._sessions))
        return session

    def close_session(self, session: "Session") -> None:
        with self._admission:
            self._sessions.pop(session.session_id, None)
            self._gauge("server.sessions_active", len(self._sessions))

    @property
    def sessions_active(self) -> int:
        with self._admission:
            return len(self._sessions)

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------

    @contextmanager
    def _admit(self, session: "Session", op: str,
               cancel: CancellationToken | None = None):
        """Gate one query: drain, budget, capacity, inflight tracking.

        ``cancel`` (when the query carries a token) is registered for
        the lifetime of the admission so the watchdog can expire it and
        a drain can cancel it; it is always unregistered on the way
        out, which is what guarantees ``server.queries_inflight``
        returns to zero even for queries that died on their deadline.
        """
        with self._admission:
            if self._draining:
                self.metrics.counter("server.shed", reason="shutdown").inc()
                raise self._shed(
                    ShuttingDown(
                        "SHUTTING_DOWN: the service is draining; retry "
                        "against a live server"
                    ),
                    "shutdown", session, op,
                )
            if session.closed:
                raise SessionError(
                    f"session {session.session_id} is closed"
                )
            budget = self.config.session_budget
            if budget is not None and session.queries_issued >= budget:
                self.metrics.counter("server.shed", reason="budget").inc()
                raise self._shed(
                    ServerBusy(
                        f"session {session.session_id} exhausted its budget "
                        f"of {budget} queries",
                        retryable=False,
                    ),
                    "budget", session, op,
                )
            if self._inflight >= self.config.max_inflight:
                self.metrics.counter("server.shed", reason="overload").inc()
                raise self._shed(
                    ServerBusy(
                        f"service at capacity ({self.config.max_inflight} "
                        f"queries in flight)",
                        retryable=True,
                    ),
                    "overload", session, op,
                )
            self._inflight += 1
            session.queries_issued += 1
            self._gauge("server.queries_inflight", self._inflight)
            query_id = next(self._query_ids)
            if cancel is not None:
                self._inflight_tokens[query_id] = cancel
                if cancel.deadline is not None:
                    self._ensure_watchdog()
        started = time.perf_counter()
        outcome = "ok"
        try:
            self.metrics.counter("server.queries", op=op).inc()
            yield
        except BaseException as exc:
            outcome = type(exc).__name__
            raise
        finally:
            # Per-op SLO accounting: one observation per admitted query,
            # labelled by how it ended (the exception class name, "ok"
            # otherwise) so tail latencies of failures and successes
            # never blur together.
            self.metrics.histogram(
                "server.latency_seconds", buckets=DURATION_BUCKETS,
                op=op, outcome=outcome,
            ).observe(time.perf_counter() - started)
            with self._admission:
                self._inflight_tokens.pop(query_id, None)
                self._inflight -= 1
                self._gauge("server.queries_inflight", self._inflight)
                if self._inflight == 0:
                    self._idle.notify_all()

    def _shed(self, exc: Exception, reason: str, session: "Session",
              op: str) -> Exception:
        """Record one admission refusal and decorate its exception.

        The flight recorder gets a ``shed`` event and the exception gets
        the recent tail (``flight_events``) -- so a client refused at
        3am sees, inside the error payload, what the service was doing.
        """
        self.flight.record(
            "shed", reason=reason, session=session.session_id, op=op
        )
        exc.flight_events = self.flight.tail(6)
        return exc

    def _gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    # ------------------------------------------------------------------
    # Deadlines & the watchdog
    # ------------------------------------------------------------------

    def token_for(
        self, deadline_ms: float | None = None
    ) -> CancellationToken:
        """One query's cancellation token, metered on deadline expiry.

        ``deadline_ms`` is a relative budget in milliseconds (None =
        no deadline; the token is still created so a drain can cancel
        the query).  ``server.deadline_exceeded`` counts each expired
        token exactly once -- the token's single cancel transition is
        the metering point, whether the watchdog or the query's own
        boundary check noticed first.
        """

        def metered(error: QueryCancelled) -> None:
            if isinstance(error, DeadlineExceeded):
                self.metrics.counter("server.deadline_exceeded").inc()
                self.flight.record("deadline_exceeded")

        if deadline_ms is None:
            return CancellationToken(on_cancel=metered)
        if deadline_ms < 0:
            raise SessionError(
                f"deadline_ms must be >= 0, got {deadline_ms}"
            )
        return CancellationToken.with_timeout(
            deadline_ms / 1000.0, on_cancel=metered
        )

    def _ensure_watchdog(self) -> None:
        # Called under self._admission; starts the sweeper lazily so
        # deadline-free services never pay a thread.
        if self._watchdog is None or not self._watchdog.is_alive():
            self._watchdog_stop = threading.Event()
            self._watchdog = threading.Thread(
                target=self._watchdog_loop,
                name="query-service-watchdog", daemon=True,
            )
            self._watchdog.start()

    def _watchdog_loop(self) -> None:
        stop = self._watchdog_stop
        while not stop.wait(self.config.watchdog_interval):
            with self._admission:
                tokens = list(self._inflight_tokens.values())
            for token in tokens:
                if token.expired() and not token.cancelled:
                    token.cancel(DeadlineExceeded(
                        "query exceeded its deadline "
                        "(cancelled by the service watchdog)"
                    ))

    # ------------------------------------------------------------------
    # Drain & shutdown
    # ------------------------------------------------------------------

    @property
    def draining(self) -> bool:
        with self._admission:
            return self._draining

    def begin_drain(self) -> None:
        """Stop admitting queries; already-admitted ones keep running."""
        with self._admission:
            already = self._draining
            self._draining = True
        if not already:
            self.flight.record("drain_begin")

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no query is in flight; True when that was reached."""
        with self._idle:
            return self._idle.wait_for(
                lambda: self._inflight == 0, timeout
            )

    def cancel_inflight(self, message: str = "query cancelled") -> int:
        """Cancel every in-flight query's token; returns how many fired.

        The cancellation is cooperative -- each query unwinds at its
        next boundary check -- so callers that need the slots actually
        released should :meth:`wait_idle` afterwards.
        """
        with self._admission:
            tokens = list(self._inflight_tokens.values())
        return sum(1 for t in tokens if t.cancel(QueryCancelled(message)))

    def close(self) -> None:
        """Stop the watchdog thread.  Idempotent; the service stays
        usable for in-process callers (a new deadline restarts it)."""
        self._watchdog_stop.set()
        watchdog = self._watchdog
        if watchdog is not None:
            watchdog.join(timeout=2.0)
            self._watchdog = None

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Readiness snapshot: status, admission counters, storage state.

        The ``storage`` section is what drain/restart decisions key on
        without any other probe: the WAL high-water mark and checkpoint
        watermark (how much log a restart would replay), the records
        appended since the last checkpoint, and the buffer pools' dirty
        page count (the writes a clean shutdown still owes).  With a
        shard runtime attached, a ``shards`` section summarizes fleet
        health (restarts, generations, live workers).
        """
        with self._admission:
            inflight = self._inflight
            sessions = len(self._sessions)
            draining = self._draining
        payload = {
            "status": "draining" if draining else "ok",
            "inflight": inflight,
            "sessions_active": sessions,
            "shed": self._counter_total("server.shed"),
            "conflicts": self._counter_total("server.conflicts"),
            "deadline_exceeded": self._counter_total(
                "server.deadline_exceeded"
            ),
            "queries": self._counter_total("server.queries"),
            "storage": self._storage_health(),
        }
        payload["slo"] = self._slo_table()
        if self.shards is not None:
            status = self.shards.status()
            payload["shards"] = {
                "n_shards": status["n_shards"],
                "restarts": status["restarts"],
                "generations": [
                    s["generation"] for s in status["shards"]
                ],
                "alive": sum(1 for s in status["shards"] if s["alive"]),
            }
        return payload

    def _slo_table(self) -> list[dict[str, Any]]:
        """Per-op latency percentiles from ``server.latency_seconds``.

        One row per (op, outcome) series; percentiles are the
        histogram's interpolated estimates over the current interval.
        """
        rows = []
        for series in self.metrics.series("server.latency_seconds"):
            labels = dict(series.labels)
            rows.append({
                "op": labels.get("op", "?"),
                "outcome": labels.get("outcome", "?"),
                "count": series.count,
                "p50": series.quantile(0.50),
                "p95": series.quantile(0.95),
                "p99": series.quantile(0.99),
                "max": series.max,
            })
        return rows

    def stats(self, *, flight_limit: int = 12) -> dict[str, Any]:
        """Everything :meth:`health` knows, plus the flight recorder's
        recent tail and (with shards attached) the fleet-merged metrics.

        This is the payload behind the ``stats`` protocol op and the
        ``repro obs`` dashboard.  Fleet aggregation is idempotent, so
        polling stats never distorts the numbers it reports.
        """
        payload = self.health()
        payload["flight"] = {
            "recorded": self.flight.recorded,
            "dropped": self.flight.dropped,
            "events": self.flight.snapshot(limit=flight_limit),
        }
        if self.shards is not None:
            payload["fleet"] = self.shards.fleet_metrics().snapshot()
        return payload

    def _storage_health(self) -> dict[str, int]:
        """Aggregate WAL/buffer state over every registered relation.

        Relations may share a WAL or a pool (one per service in the
        usual wiring, one per shard in the sharded one), so aggregation
        deduplicates by object identity: each log/pool counts once.
        """
        wals: dict[int, Any] = {}
        pools: dict[int, Any] = {}
        for name in self.state.names():
            rel = self.state.get(name)
            if rel.wal is not None:
                wals[id(rel.wal)] = rel.wal
            pools[id(rel.buffer_pool)] = rel.buffer_pool
        checkpoints = [
            (w.checkpoint_meta or {}).get("lsn", 0) for w in wals.values()
        ]
        return {
            "wal_last_lsn": max(
                (w.last_lsn for w in wals.values()), default=0
            ),
            "wal_checkpoint_lsn": max(checkpoints, default=0),
            "wal_records_since_checkpoint": sum(
                w.records_since_checkpoint for w in wals.values()
            ),
            "dirty_pages": sum(p.dirty_count for p in pools.values()),
        }

    def _counter_total(self, name: str) -> int:
        return sum(s.value for s in self.metrics.series(name))

    # ------------------------------------------------------------------
    # Execution (called by sessions)
    # ------------------------------------------------------------------

    def run_read(
        self,
        session: "Session",
        op: str,
        relations: Sequence[Any],
        fn: Callable[[EpochPin], Any],
        *,
        cancel: CancellationToken | None = None,
    ) -> tuple[Any, EpochPin]:
        """One admitted, epoch-pinned, conflict-retried read.

        ``cancel`` registers the query's token for the watchdog/drain;
        ``fn`` is expected to thread the same token into the executor
        so the cancellation actually has checkpoints to fire at.
        """

        def count_conflict(attempt: int) -> None:
            self.metrics.counter("server.conflicts").inc()
            self.flight.record("snapshot_conflict", op=op, attempt=attempt)

        with self._admit(session, op, cancel=cancel):
            return self.state.read(
                relations, fn,
                retries=self.config.snapshot_retries,
                on_conflict=count_conflict,
            )

    def run_write(
        self,
        session: "Session",
        op: str,
        relation: str,
        fn: Callable[[Any], Any],
        *,
        on_commit: Callable[[int], None] | None = None,
    ) -> tuple[Any, int]:
        """One admitted write behind the relation's write lock."""
        with self._admit(session, op):
            return self.state.write(relation, fn, on_commit=on_commit)

    # ------------------------------------------------------------------
    # Sharded execution
    # ------------------------------------------------------------------

    def attach_shards(self, shards: Any) -> None:
        """Attach a :class:`~repro.shard.ShardRuntime` to the service.

        The runtime adopts the service's metrics registry and flight
        recorder when it has none of its own, so ``shard.*`` series land
        next to the ``server.*`` ones and fleet incidents (kills,
        recoveries, failovers) interleave with service incidents in one
        ordered log.
        """
        self.shards = shards
        if shards is not None:
            if shards.metrics is None:
                shards.metrics = self.metrics
            if getattr(shards, "flight", None) is None:
                shards.flight = self.flight

    def mint_trace(self, session: "Session", op: str) -> TraceContext:
        """A fresh request-scoped trace context for one sharded read.

        ``trace_id`` names the session and the service-wide request
        sequence number; ``seq`` totally orders traced requests across
        every session, so two concurrent sessions can never mint the
        same identity.
        """
        seq = next(self._trace_seq)
        return TraceContext(f"t{session.session_id}-{op}-{seq}", seq)

    def require_shards(self) -> Any:
        if self.shards is None:
            raise SessionError(
                "no shard runtime attached to this service"
            )
        return self.shards

    def run_shard(
        self,
        session: "Session",
        op: str,
        fn: Callable[[], Any],
        *,
        cancel: CancellationToken | None = None,
    ) -> Any:
        """One admitted sharded read.

        No epoch pin: the shard runtime owns its storage (per-shard
        WALs), and its generation protocol -- not the seqlock -- is what
        protects these reads from stale state.  Admission control and
        cancellation apply exactly as for shared-relation reads.
        """
        self.require_shards()
        with self._admit(session, op, cancel=cancel):
            return fn()


class Session:
    """One client's execution front-end over the shared service.

    A session is single-threaded by contract: its tracer and meter
    accounting assume one query at a time *from this session* (queries
    from different sessions overlap freely).  Obtain via
    :meth:`QueryService.open_session`; usable as a context manager.
    """

    def __init__(self, service: QueryService, session_id: int, client: str) -> None:
        self.service = service
        self.session_id = session_id
        self.client = client
        # Each session's spans export under its own process label, so
        # traces from different sessions can be pooled without colliding.
        self.tracer = Tracer(process=f"s{session_id}")
        self.queries_issued = 0
        self.closed = False

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.service.close_session(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reads ----------------------------------------------------------

    def select(
        self,
        relation: str,
        column: str,
        query: Any,
        theta: ThetaOperator,
        *,
        strategy: str = "auto",
        order: str = "bfs",
        meter: CostMeter | None = None,
        deadline_ms: float | None = None,
        cancel: CancellationToken | None = None,
    ) -> tuple[SelectResult, int]:
        """Snapshot selection; returns ``(result, pinned epoch)``.

        ``deadline_ms`` bounds the query in wall-clock milliseconds
        (:class:`~repro.errors.DeadlineExceeded` past it); ``cancel``
        supplies a caller-owned token instead (mutually exclusive with
        a deadline only in the sense that a supplied token wins).
        """
        svc = self.service
        rel = svc.state.get(relation)
        token = cancel if cancel is not None else svc.token_for(deadline_ms)

        def run(pin: EpochPin) -> SelectResult:
            return svc.executor.select(
                rel, column, query, theta,
                strategy=strategy, order=order, meter=meter,
                tracer=self.tracer, metrics=svc.metrics, cache=svc.cache,
                cancel=token,
            )

        result, pin = svc.run_read(self, "select", (rel,), run, cancel=token)
        return result, pin.epoch_of(rel)

    def join(
        self,
        rel_r: str,
        column_r: str,
        rel_s: str,
        column_s: str,
        theta: ThetaOperator,
        *,
        strategy: str = "auto",
        meter: CostMeter | None = None,
        collect_tuples: bool = False,
        deadline_ms: float | None = None,
        cancel: CancellationToken | None = None,
    ) -> tuple[JoinResult, tuple[int, int]]:
        """Snapshot join; returns ``(result, (epoch_r, epoch_s))``.

        ``deadline_ms``/``cancel`` as in :meth:`select`.
        """
        svc = self.service
        r = svc.state.get(rel_r)
        s = svc.state.get(rel_s)
        token = cancel if cancel is not None else svc.token_for(deadline_ms)

        def run(pin: EpochPin) -> JoinResult:
            return svc.executor.join(
                r, column_r, s, column_s, theta,
                strategy=strategy, meter=meter,
                collect_tuples=collect_tuples,
                tracer=self.tracer, metrics=svc.metrics, cache=svc.cache,
                cancel=token,
            )

        result, pin = svc.run_read(self, "join", (r, s), run, cancel=token)
        return result, (pin.epoch_of(r), pin.epoch_of(s))

    # -- sharded reads --------------------------------------------------

    def shard_select(
        self,
        table: str,
        window: Any,
        theta: ThetaOperator,
        *,
        deadline_ms: float | None = None,
        cancel: CancellationToken | None = None,
    ) -> SelectResult:
        """Distributed selection against the attached shard fleet.

        Admitted like any read; survives shard crashes via the router's
        failover or raises a typed
        :class:`~repro.errors.ShardUnavailable` -- never a partial
        answer.

        The read is traced end to end: a ``session.shard_select`` span
        opens over a per-query meter, the minted
        :class:`~repro.obs.context.TraceContext` rides every dispatch,
        and the workers' remote spans graft back under the session span
        -- so the whole distributed read is one tree obeying the cost
        conservation law.
        """
        svc = self.service
        shards = svc.require_shards()
        token = cancel if cancel is not None else svc.token_for(deadline_ms)
        ctx = svc.mint_trace(self, "shard_select")
        meter = CostMeter()

        def run() -> SelectResult:
            with self.tracer.span(
                "session.shard_select", meter=meter,
                table=table, trace_id=ctx.trace_id, seq=ctx.seq,
            ) as span:
                return shards.router.select(
                    table, window, theta, cancel=token,
                    trace=ctx.for_span(self.tracer.uid_of(span)),
                    meter=meter, tracer=self.tracer,
                )

        return svc.run_shard(self, "shard_select", run, cancel=token)

    def shard_join(
        self,
        table_r: str,
        table_s: str,
        theta: ThetaOperator,
        *,
        deadline_ms: float | None = None,
        cancel: CancellationToken | None = None,
    ) -> JoinResult:
        """Distributed join against the attached shard fleet.

        Traced end to end exactly like :meth:`shard_select`: one
        ``session.shard_join`` span, one minted context, remote spans
        grafted back -- one conserving tree per request.
        """
        svc = self.service
        shards = svc.require_shards()
        token = cancel if cancel is not None else svc.token_for(deadline_ms)
        ctx = svc.mint_trace(self, "shard_join")
        meter = CostMeter()

        def run() -> JoinResult:
            with self.tracer.span(
                "session.shard_join", meter=meter,
                table_r=table_r, table_s=table_s,
                trace_id=ctx.trace_id, seq=ctx.seq,
            ) as span:
                return shards.router.join(
                    table_r, table_s, theta, cancel=token,
                    trace=ctx.for_span(self.tracer.uid_of(span)),
                    meter=meter, tracer=self.tracer,
                )

        return svc.run_shard(self, "shard_join", run, cancel=token)

    # -- writes ---------------------------------------------------------

    def insert(
        self,
        relation: str,
        values: Sequence[Any],
        *,
        on_commit: Callable[[int], None] | None = None,
    ) -> int:
        """Insert one row; returns the committed epoch."""
        _, epoch = self.service.run_write(
            self, "insert", relation,
            lambda rel: rel.insert(list(values)),
            on_commit=on_commit,
        )
        return epoch

    def delete_where(
        self,
        relation: str,
        predicate: Callable[[Any], bool],
        *,
        limit: int | None = None,
        on_commit: Callable[[int], None] | None = None,
    ) -> tuple[int, int]:
        """Delete matching tuples; returns ``(deleted count, epoch)``.

        The scan-and-delete runs atomically under the write lock, so
        the predicate sees a consistent state.
        """

        def run(rel: Any) -> int:
            doomed = [t.tid for t in rel.scan() if predicate(t)]
            if limit is not None:
                doomed = doomed[:limit]
            for tid in doomed:
                rel.delete(tid)
            return len(doomed)

        count, epoch = self.service.run_write(
            self, "delete", relation, run, on_commit=on_commit
        )
        return count, epoch
