"""Concurrent multi-session query service with epoch-pinned snapshot reads.

Layering, bottom up:

* :mod:`repro.server.state` -- the :class:`StateManager` owning the
  shared relations; per-relation write locks and the epoch-pin seqlock
  that gives readers snapshot semantics without blocking;
* :mod:`repro.server.service` -- :class:`QueryService` (shared executor,
  cache, metrics, admission control) and :class:`Session` (per-client
  front-end with its own tracer);
* :mod:`repro.server.protocol` -- the JSON line protocol shared by every
  transport;
* :mod:`repro.server.net` -- TCP server (thread per session) with
  graceful drain, and a client with retry/backoff
  (:class:`~repro.server.net.RetryPolicy`).

See ``docs/server.md`` for the protocol and the concurrency rules, and
``docs/robustness.md`` for the resilience layer (deadlines, cooperative
cancellation, drain, retries, network chaos).
"""

from repro.core.cancel import CancellationToken
from repro.server.net import (
    IDEMPOTENT_OPS,
    QueryClient,
    QueryServer,
    RetryPolicy,
)
from repro.server.protocol import handle_request, parse_request
from repro.server.service import QueryService, ServiceConfig, Session
from repro.server.state import DEFAULT_READ_RETRIES, EpochPin, StateManager

__all__ = [
    "DEFAULT_READ_RETRIES",
    "IDEMPOTENT_OPS",
    "CancellationToken",
    "EpochPin",
    "QueryClient",
    "QueryServer",
    "QueryService",
    "RetryPolicy",
    "ServiceConfig",
    "Session",
    "StateManager",
    "handle_request",
    "parse_request",
]
