"""TCP transport for the query service: thread-per-session server, client.

The server accepts connections on a listening socket and dedicates one
thread (and one :class:`~repro.server.service.Session`) to each -- the
session-per-thread model is what the executor's reentrancy and the
service's admission control were built for.  Requests and replies are
newline-delimited UTF-8 (see :mod:`repro.server.protocol`); a failed
request never kills the connection, only surfaces as an ``ERR`` line,
except for protocol-level garbage after which the server keeps reading.

:class:`QueryClient` is the matching blocking client; it raises
:class:`~repro.errors.ProtocolError` for any ``ERR`` reply.
"""

from __future__ import annotations

import socket
import threading
from typing import Any

from repro.errors import ProtocolError, ReproError
from repro.server.protocol import (
    decode_response,
    encode_error,
    encode_ok,
    handle_request,
    parse_request,
)
from repro.server.service import QueryService


class QueryServer:
    """Serve a :class:`QueryService` over TCP, one thread per connection."""

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "QueryServer":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="query-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        self._listener.close()
        for t in self._conn_threads:
            t.join(timeout=5.0)

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(
                target=self._serve_connection, args=(conn, peer),
                name=f"query-server-{peer}", daemon=True,
            )
            self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket, peer: Any) -> None:
        session = self.service.open_session(client=f"{peer[0]}:{peer[1]}")
        try:
            with conn, conn.makefile("rwb") as stream:
                for raw in stream:
                    if self._stop.is_set():
                        break
                    try:
                        request = parse_request(raw.decode("utf-8"))
                        payload = handle_request(session, request)
                        reply = encode_ok(payload)
                    except (ReproError, UnicodeDecodeError) as exc:
                        reply = encode_error(exc)
                    stream.write(reply.encode("utf-8") + b"\n")
                    stream.flush()
                    if session.closed:
                        break
        except OSError:
            pass  # client went away mid-write; the session still closes
        finally:
            session.close()


class QueryClient:
    """Blocking line-protocol client for :class:`QueryServer`."""

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._sock.makefile("rwb")

    def request(self, **request: Any) -> dict[str, Any]:
        """Send one request dict; returns the ``OK`` payload or raises."""
        import json

        self._stream.write(
            json.dumps(request, separators=(",", ":")).encode("utf-8") + b"\n"
        )
        self._stream.flush()
        raw = self._stream.readline()
        if not raw:
            raise ProtocolError("server closed the connection")
        return decode_response(raw.decode("utf-8"))

    def close(self) -> None:
        try:
            self._stream.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
