"""TCP transport for the query service: thread-per-session server, client.

The server accepts connections on a listening socket and dedicates one
thread (and one :class:`~repro.server.service.Session`) to each -- the
session-per-thread model is what the executor's reentrancy and the
service's admission control were built for.  Requests and replies are
newline-delimited UTF-8 (see :mod:`repro.server.protocol`); a failed
request never kills the connection, only surfaces as an ``ERR`` line,
except for protocol-level garbage after which the server keeps reading.

Shutdown is *graceful by default*: :meth:`QueryServer.stop` stops
accepting, flips the service into drain mode (new requests on live
connections get a retryable ``ERR ShuttingDown!`` reply; ``ping`` and
``health`` keep answering), waits up to ``drain_timeout`` seconds for
in-flight queries, cancels stragglers through their cancellation
tokens, and only then closes the connection sockets -- which is what
actually unblocks connection threads parked in ``readline`` so they
exit and can be joined.

:class:`QueryClient` is the matching blocking client; it raises
:class:`~repro.errors.ProtocolError` for any ``ERR`` reply.  With a
:class:`RetryPolicy` it retries retryable failures (``ServerBusy``,
``SnapshotConflict``, ``ShuttingDown``) under bounded exponential
backoff with deterministic seeded jitter, and reconnects after broken
connections -- re-sending only *idempotent* requests there, because a
mid-reply EOF leaves a write's outcome unknown.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.errors import ProtocolError, ReproError
from repro.server.protocol import (
    decode_response,
    encode_error,
    encode_ok,
    handle_request,
    parse_request,
)
from repro.server.service import QueryService

#: Requests that may be safely re-sent when a connection broke mid-call
#: and the original's outcome is unknown.  Writes are excluded: an
#: ``insert`` whose reply was lost may well have committed, and blindly
#: re-sending it would double-apply.
IDEMPOTENT_OPS = frozenset(
    {"ping", "health", "relations", "metrics", "select", "join"}
)


class QueryServer:
    """Serve a :class:`QueryService` over TCP, one thread per connection.

    ``drain_timeout`` is the default grace :meth:`stop` gives in-flight
    queries before cancelling them through their tokens.
    """

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = 0, *, drain_timeout: float = 5.0) -> None:
        self.service = service
        self.drain_timeout = drain_timeout
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._stopped = False
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: list[threading.Thread] = []
        #: Live connection sockets, so stop() can close them out from
        #: under a blocked ``readline`` and actually reclaim the threads.
        self._conns: dict[int, socket.socket] = {}
        self._conn_ids = 0
        self._conn_lock = threading.Lock()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "QueryServer":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="query-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self, drain_timeout: float | None = None) -> None:
        """Drain and shut down; safe to call more than once.

        1. stop accepting and close the listener;
        2. ``begin_drain``: new requests get ``ERR ShuttingDown!``
           (retryable), ``ping``/``health`` still answer;
        3. wait up to ``drain_timeout`` for in-flight queries;
        4. cancel stragglers via their cancellation tokens and give
           them a short grace to unwind;
        5. close every connection socket (unblocking reader threads)
           and join the connection threads;
        6. stop the service watchdog.
        """
        if self._stopped:
            return
        self._stopped = True
        if drain_timeout is None:
            drain_timeout = self.drain_timeout
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        self._listener.close()

        self.service.begin_drain()
        if not self.service.wait_idle(drain_timeout):
            self.service.cancel_inflight(
                "server shutting down: drain timeout expired"
            )
            self.service.wait_idle(min(2.0, max(drain_timeout, 0.1)))

        with self._conn_lock:
            conns = list(self._conns.values())
        for conn in conns:
            _force_close(conn)
        for t in self._reap_conn_threads():
            t.join(timeout=5.0)
        self._reap_conn_threads()
        self.service.close()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _reap_conn_threads(self) -> list[threading.Thread]:
        """Drop finished connection threads; returns the live ones.

        Called on every accept and from stop() -- without it the thread
        list of a long-lived server grows one entry per connection ever
        served.
        """
        with self._conn_lock:
            self._conn_threads = [
                t for t in self._conn_threads if t.is_alive()
            ]
            return list(self._conn_threads)

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            self._reap_conn_threads()
            try:
                conn, peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                if self._stop.is_set():
                    break  # listener closed by stop(): the normal exit
                # Unexpected accept failure on a live listener: meter it
                # and keep serving -- silently breaking the loop would
                # leave a zombie server that looks up but accepts nobody.
                self.service.metrics.counter("server.accept_errors").inc()
                self._stop.wait(0.05)
                continue
            thread = threading.Thread(
                target=self._serve_connection, args=(conn, peer),
                name=f"query-server-{peer}", daemon=True,
            )
            with self._conn_lock:
                self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket, peer: Any) -> None:
        with self._conn_lock:
            self._conn_ids += 1
            conn_id = self._conn_ids
            self._conns[conn_id] = conn
        session = self.service.open_session(client=f"{peer[0]}:{peer[1]}")
        try:
            with conn, conn.makefile("rwb") as stream:
                for raw in stream:
                    # Note: no early-exit on the stop event here.  While
                    # draining, requests must still be *answered* (with
                    # ShuttingDown from admission control) so retrying
                    # clients redirect instead of seeing a dead socket;
                    # stop() ends the loop by closing the connection.
                    try:
                        request = parse_request(raw.decode("utf-8"))
                        payload = handle_request(session, request)
                        reply = encode_ok(payload)
                    except (ReproError, UnicodeDecodeError) as exc:
                        reply = encode_error(exc)
                    stream.write(reply.encode("utf-8") + b"\n")
                    stream.flush()
                    if session.closed:
                        break
        except OSError:
            pass  # client went away mid-write; the session still closes
        finally:
            session.close()
            with self._conn_lock:
                self._conns.pop(conn_id, None)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic seeded jitter.

    Attempt ``n`` (1-based) sleeps ``base_delay * multiplier**(n-1)``
    capped at ``max_delay``, plus a uniform jitter of up to ``jitter``
    of that value drawn from a :class:`random.Random` seeded with
    ``seed`` -- two clients built with the same seed back off on the
    identical schedule, which is what makes retry tests (and the chaos
    soak) reproducible.
    """

    max_attempts: int = 5
    base_delay: float = 0.02
    max_delay: float = 1.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ProtocolError(
                f"max_attempts must be positive, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ProtocolError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ProtocolError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry)."""
        base = min(
            self.base_delay * self.multiplier ** max(attempt - 1, 0),
            self.max_delay,
        )
        return base + rng.uniform(0.0, self.jitter * base)


class QueryClient:
    """Blocking line-protocol client for :class:`QueryServer`.

    Without a ``retry`` policy each request is sent exactly once, and a
    connection broken mid-call (EOF, timeout, garbled reply) marks the
    client *broken*: subsequent requests fail fast with a clear
    :class:`ProtocolError` instead of desynchronized reads on a stream
    whose framing is unknown.

    With a :class:`RetryPolicy` the client retries (reconnecting first
    when broken):

    * server errors whose wire retryable flag is set -- ``ServerBusy``
      (overload), ``SnapshotConflict``, ``ShuttingDown`` -- for *any*
      request: retryable means the server did not execute it;
    * transport failures (EOF, timeout, connect failure, garbled
      reply) for **idempotent** requests only (:data:`IDEMPOTENT_OPS`)
      -- a write whose reply was lost may have committed.

    ``last_attempts`` exposes how many attempts the most recent request
    took and ``retries_total`` the lifetime retry count -- the hooks the
    resilience tests assert on.
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0,
                 *, retry: RetryPolicy | None = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self._rng = random.Random(retry.seed if retry is not None else 0)
        self._sock: socket.socket | None = None
        self._stream = None
        self._broken = True
        self.last_attempts = 0
        self.retries_total = 0
        self._connect()

    # -- connection management -----------------------------------------

    def _connect(self) -> None:
        self._teardown()
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._stream = self._sock.makefile("rwb")
        self._broken = False

    def _teardown(self) -> None:
        if self._stream is not None:
            try:
                self._stream.close()
            except OSError:
                pass
            self._stream = None
        if self._sock is not None:
            _force_close(self._sock)
            self._sock = None
        self._broken = True

    @property
    def broken(self) -> bool:
        """True when the connection's framing state is unknown."""
        return self._broken

    # -- requests -------------------------------------------------------

    def request(self, **request: Any) -> dict[str, Any]:
        """Send one request dict; returns the ``OK`` payload or raises."""
        policy = self.retry
        if policy is None:
            self.last_attempts = 1
            return self._request_once(request)

        idempotent = request.get("op") in IDEMPOTENT_OPS
        attempts = 0
        while True:
            attempts += 1
            self.last_attempts = attempts
            try:
                if self._broken:
                    self._connect()
                return self._request_once(request)
            except ProtocolError as exc:
                transport = exc.server_type is None
                if transport and not idempotent:
                    raise  # outcome unknown; re-sending could double-apply
                if not (exc.retryable or transport):
                    raise
                if attempts >= policy.max_attempts:
                    raise
            except OSError:
                # Connect or send/recv failure.  A failed *connect* never
                # reached the server, but distinguishing it from a send
                # that broke mid-flight is not worth the fragility; the
                # idempotence rule covers both safely.
                if not idempotent or attempts >= policy.max_attempts:
                    raise
            self.retries_total += 1
            time.sleep(policy.delay(attempts, self._rng))

    def _request_once(self, request: dict[str, Any]) -> dict[str, Any]:
        if self._broken or self._stream is None:
            raise ProtocolError(
                "client connection is broken (a previous request died "
                "mid-reply); open a new client or use a RetryPolicy"
            )
        try:
            self._stream.write(
                json.dumps(request, separators=(",", ":")).encode("utf-8")
                + b"\n"
            )
            self._stream.flush()
            raw = self._stream.readline()
        except OSError:
            self._broken = True
            raise
        if not raw.endswith(b"\n"):
            # Empty = clean EOF; non-terminated = half-written reply.
            # Either way the stream's framing is gone.
            self._broken = True
            raise ProtocolError(
                "server closed the connection mid-reply"
                if raw else "server closed the connection"
            )
        try:
            return decode_response(raw.decode("utf-8", errors="replace"))
        except ProtocolError as exc:
            if exc.server_type is None:
                # Garbled reply line: we cannot know where the next
                # reply starts, so the connection is unusable.
                self._broken = True
            raise

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _force_close(sock: socket.socket) -> None:
    """Shut down and close a socket, tolerating already-dead ones."""
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
