"""The partition-parallel spatial join: grid scatter + per-tile sweeps.

End-to-end driver tying the subsystem together:

1. stream both relations once through pools sharing the paper's ``M``-page
   budget, extracting ``(tid, mbr, geometry)`` entries;
2. tile the data universe with a uniform :class:`GridSpec` and replicate
   each entry into every tile its MBR intersects;
3. sweep the tiles -- sequentially or on a worker pool -- with the
   reference-point rule guaranteeing each result pair is emitted by
   exactly one tile (no dedup pass anywhere);
4. merge the workers' private cost meters into the caller's meter and
   return one :class:`JoinResult` with combined stats.

Applicability matches the z-order merge: the MBR-intersection filter the
sweep uses is conservative for ``overlaps`` (and operators whose filter
is MBR intersection), so the executor gates this strategy accordingly.
"""

from __future__ import annotations

from repro.errors import JoinError
from repro.geometry.rect import Rect
from repro.join.result import JoinResult
from repro.parallel.partitioner import Entry, GridSpec, partition_pair
from repro.parallel.pool import run_partitions
from repro.predicates.theta import ThetaOperator
from repro.relational.relation import Relation
from repro.storage.buffer import BufferPool, paired_pools
from repro.storage.costs import CostMeter
from repro.storage.record import RecordId


def _extract_entries(relation: Relation, column: str, pool: BufferPool) -> list[Entry]:
    """One sequential pass: every tuple's ``(tid, mbr, geometry)``."""
    entries: list[Entry] = []
    for pid in relation.page_ids:
        page = pool.fetch(pid)
        for slot, record in enumerate(page.slots):
            if record is None:
                continue
            geom = record[column]
            entries.append((RecordId(pid, slot), geom.mbr(), geom))
    return entries


def _resolve_grid(
    grid: GridSpec | int | None,
    universe: Rect | None,
    entries_r: list[Entry],
    entries_s: list[Entry],
    workers: int,
) -> GridSpec:
    if isinstance(grid, GridSpec):
        return grid
    if universe is None:
        mbrs = [e[1] for e in entries_r] + [e[1] for e in entries_s]
        universe = Rect.union_of(mbrs) if mbrs else Rect(0.0, 0.0, 1.0, 1.0)
    pad_x = 1.0 if universe.width == 0 else 0.0
    pad_y = 1.0 if universe.height == 0 else 0.0
    if pad_x or pad_y:
        universe = Rect(universe.xmin, universe.ymin,
                        universe.xmax + pad_x, universe.ymax + pad_y)
    if grid is None:
        return GridSpec.for_workload(
            universe, len(entries_r) + len(entries_s), workers
        )
    return GridSpec(universe, grid, grid)


def partition_join(
    rel_r: Relation,
    rel_s: Relation,
    column_r: str,
    column_s: str,
    theta: ThetaOperator,
    *,
    workers: int = 1,
    grid: GridSpec | int | None = None,
    universe: Rect | None = None,
    memory_pages: int = 4000,
    meter: CostMeter | None = None,
    collect_tuples: bool = False,
    fault_plan=None,
    chunk_timeout: float | None = None,
    tracer=None,
    metrics=None,
    cancel=None,
    refiner=None,
) -> JoinResult:
    """Partition-parallel overlap join of two relations.

    ``grid`` may be a full :class:`GridSpec`, an integer ``n`` for an
    ``n x n`` grid over the data universe, or ``None`` for a workload-fitted
    grid.  ``workers=1`` runs fully in-process and deterministically;
    ``workers>1`` spreads tiles over a process pool (falling back to the
    sequential path where processes are unavailable).  Result pairs are
    returned in sorted order, identical for every worker count.

    ``fault_plan`` forwards a :class:`~repro.faults.plan.FaultPlan` to
    the worker pool (injected worker crashes are recovered by sequential
    chunk re-execution); ``chunk_timeout`` bounds each worker chunk.
    The returned stats report how the pool actually ran: effective
    worker count, degrade reason (if any), and recovered chunks.

    ``cancel`` (a :class:`~repro.core.cancel.CancellationToken`) is
    checked between the extract/scatter/sweep phases and at every
    worker-chunk boundary inside the pool.

    ``refiner`` (see :mod:`repro.intermediate.filter`) replaces the
    exact refinement step inside every tile sweep; ``None`` keeps the
    historical exact path.
    """
    if workers < 1:
        raise JoinError(f"workers must be positive, got {workers}")
    if meter is None:
        meter = CostMeter()
    from repro.obs.trace import coalesce

    tracer = coalesce(tracer)

    pool_r, pool_s = paired_pools(
        rel_r.buffer_pool.disk, rel_s.buffer_pool.disk, memory_pages, meter
    )
    with tracer.span("partition.extract", meter=meter) as span:
        entries_r = _extract_entries(rel_r, column_r, pool_r)
        entries_s = _extract_entries(rel_s, column_s, pool_s)
        span.set_tag("entries_r", len(entries_r))
        span.set_tag("entries_s", len(entries_s))

    from repro.core.cancel import check_cancel

    check_cancel(cancel)
    with tracer.span("partition.scatter", meter=meter) as span:
        spec = _resolve_grid(grid, universe, entries_r, entries_s, workers)
        tasks = partition_pair(entries_r, entries_s, spec)
        span.set_tag("grid", f"{spec.nx}x{spec.ny}")
        span.set_tag("tiles", len(tasks))

    with tracer.span("partition.sweep", meter=meter, workers=workers) as span:
        pairs, worker_meter, pool_report = run_partitions(
            tasks, spec, theta, workers=workers,
            fault_plan=fault_plan, chunk_timeout=chunk_timeout,
            metrics=metrics, cancel=cancel, refiner=refiner,
        )
        meter.absorb(worker_meter)
        span.set_tag("effective_workers", pool_report.effective_workers)
        span.set_tag("pairs", len(pairs))

    result = JoinResult(strategy="partition-sweep")
    result.pairs = sorted(pairs)
    if collect_tuples:
        for r_tid, s_tid in result.pairs:
            r_record = pool_r.fetch(r_tid.page_id).get(r_tid.slot)
            s_record = pool_s.fetch(s_tid.page_id).get(s_tid.slot)
            result.tuples.append((r_record, s_record))
    result.stats = meter.snapshot()
    result.stats.update(
        grid_nx=spec.nx, grid_ny=spec.ny,
        partitions=len(tasks), workers=pool_report.effective_workers,
        requested_workers=pool_report.requested_workers,
        chunk_retries=pool_report.retried_chunks,
    )
    if pool_report.degrade_reason is not None:
        result.stats["degrade_reason"] = pool_report.degrade_reason
    if pool_report.recoveries:
        result.stats["recovered_chunks"] = [
            f"chunk {r.chunk} ({r.tiles} tiles): {r.cause}"
            for r in pool_report.recoveries
        ]
    return result
