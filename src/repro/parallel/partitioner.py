"""Uniform grid partitioning with the reference-point rule.

The partition-parallel join (after Tsitsigkos & Mamoulis et al., *Parallel
In-Memory Evaluation of Spatial Joins*, 2019) tiles the universe with a
uniform grid and replicates every MBR into each tile it intersects.  The
tiles are then independent join problems -- the unit of parallelism.

Replication would normally produce duplicate result pairs (one per tile
two objects share).  The *reference-point rule* removes them without any
post-hoc dedup pass: the reference point of a candidate pair is the
bottom-left corner of the intersection of the two MBRs, and the pair is
reported only by the tile that owns that point.  Ownership is half-open
(a point on an interior tile seam belongs to the tile on its upper-right)
so exactly one tile owns any reference point, and since the reference
point lies inside both MBRs, the owning tile received both entries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.errors import JoinError
from repro.geometry.rect import Rect
from repro.storage.record import RecordId

#: One replicated index entry: ``(tid, mbr, geometry)``.  Plain tuples so
#: shipping partitions to worker processes pickles fast.
Entry = tuple[RecordId, Rect, Any]


@dataclass(frozen=True, slots=True)
class GridSpec:
    """A uniform ``nx`` x ``ny`` tiling of a positive-area universe."""

    universe: Rect
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise JoinError(f"grid must have at least one cell, got {self.nx}x{self.ny}")
        if self.universe.width <= 0 or self.universe.height <= 0:
            raise JoinError(
                f"grid universe must have positive area, got {self.universe}"
            )

    @property
    def cell_width(self) -> float:
        return self.universe.width / self.nx

    @property
    def cell_height(self) -> float:
        return self.universe.height / self.ny

    @property
    def num_cells(self) -> int:
        return self.nx * self.ny

    def cell_rect(self, ix: int, iy: int) -> Rect:
        u = self.universe
        cw, ch = self.cell_width, self.cell_height
        return Rect(u.xmin + ix * cw, u.ymin + iy * ch,
                    u.xmin + (ix + 1) * cw, u.ymin + (iy + 1) * ch)

    def owner_cell(self, x: float, y: float) -> tuple[int, int]:
        """The unique cell owning point ``(x, y)`` (half-open tiling).

        Points outside the universe clamp to the border cells, so every
        reference point has an owner even when geometries protrude.
        """
        ix = min(self.nx - 1, max(0, int((x - self.universe.xmin) / self.cell_width)))
        iy = min(self.ny - 1, max(0, int((y - self.universe.ymin) / self.cell_height)))
        return ix, iy

    def covering_cells(self, mbr: Rect) -> Iterator[tuple[int, int]]:
        """All cells whose closed rectangle intersects ``mbr``.

        Closed-set semantics: an MBR touching a tile seam is replicated to
        both neighbouring tiles, so the owner of any reference point on
        the seam is guaranteed to hold both entries of the pair.
        """
        ix0, iy0 = self.owner_cell(mbr.xmin, mbr.ymin)
        ix1, iy1 = self.owner_cell(mbr.xmax, mbr.ymax)
        for iy in range(iy0, iy1 + 1):
            for ix in range(ix0, ix1 + 1):
                yield ix, iy

    @classmethod
    def for_workload(cls, universe: Rect, n_entries: int, workers: int = 1,
                     target_per_cell: int = 128) -> "GridSpec":
        """A square grid sized to the workload.

        Aims for ~``target_per_cell`` entries per tile so the per-tile
        sweeps stay cache-friendly, with at least enough tiles to keep
        ``workers`` busy; degenerate universes are padded to unit extent.
        """
        pad_x = 1.0 if universe.width == 0 else 0.0
        pad_y = 1.0 if universe.height == 0 else 0.0
        if pad_x or pad_y:
            universe = Rect(universe.xmin, universe.ymin,
                            universe.xmax + pad_x, universe.ymax + pad_y)
        by_load = math.isqrt(max(0, n_entries) // max(1, target_per_cell))
        by_workers = math.isqrt(4 * max(1, workers) - 1) + 1
        n = min(128, max(1, by_load, by_workers))
        return cls(universe, n, n)


@dataclass(slots=True)
class PartitionTask:
    """One grid tile's independent join problem.

    ``entries_r``/``entries_s`` are x-sorted (by ``mbr.xmin``) slices of
    the two relations' replicated entry lists -- the plane-sweep kernel
    relies on that order.
    """

    ix: int
    iy: int
    entries_r: list[Entry]
    entries_s: list[Entry]

    @property
    def load(self) -> int:
        """Work estimate used by the pool's greedy load balancing."""
        return len(self.entries_r) + len(self.entries_s)


def reference_point(mbr_a: Rect, mbr_b: Rect) -> tuple[float, float]:
    """Bottom-left corner of the intersection of two intersecting MBRs."""
    return max(mbr_a.xmin, mbr_b.xmin), max(mbr_a.ymin, mbr_b.ymin)


def scatter(entries: Sequence[Entry], grid: GridSpec) -> dict[tuple[int, int], list[Entry]]:
    """Replicate entries into every grid cell their MBR intersects.

    Input order is preserved per cell, so x-sorted input yields x-sorted
    per-cell lists.
    """
    cells: dict[tuple[int, int], list[Entry]] = {}
    for entry in entries:
        for cell in grid.covering_cells(entry[1]):
            cells.setdefault(cell, []).append(entry)
    return cells


def partition_pair(
    entries_r: Sequence[Entry],
    entries_s: Sequence[Entry],
    grid: GridSpec,
) -> list[PartitionTask]:
    """Build the per-tile join tasks for two entry lists.

    Entries are x-sorted once up front (the per-cell lists inherit the
    order); tiles where either side is empty produce no task -- they
    cannot contribute a pair.
    """
    sorted_r = sorted(entries_r, key=lambda e: e[1].xmin)
    sorted_s = sorted(entries_s, key=lambda e: e[1].xmin)
    cells_r = scatter(sorted_r, grid)
    cells_s = scatter(sorted_s, grid)
    return [
        PartitionTask(ix, iy, cells_r[(ix, iy)], cells_s[(ix, iy)])
        for ix, iy in sorted(set(cells_r) & set(cells_s))
    ]
