"""Partition-parallel spatial join (beyond the paper).

The paper's Algorithm JOIN and the Section 4.4 strategies are inherently
single-threaded page-at-a-time designs.  This subsystem adds the
partition-parallel evaluation of Tsitsigkos & Mamoulis et al. (2019):
uniform grid partitioning with the reference-point duplicate-avoidance
rule (:mod:`repro.parallel.partitioner`), a forward plane-sweep kernel
per tile (:mod:`repro.parallel.plane_sweep`), and a worker pool merging
per-worker cost meters (:mod:`repro.parallel.pool`).  The executor
exposes it as the ``partition`` strategy.
"""

from repro.parallel.join import partition_join
from repro.parallel.partitioner import (
    Entry,
    GridSpec,
    PartitionTask,
    partition_pair,
    reference_point,
    scatter,
)
from repro.parallel.plane_sweep import sweep_tile
from repro.parallel.pool import (
    ChunkRecovery,
    PoolReport,
    balance_tasks,
    run_partitions,
)

__all__ = [
    "ChunkRecovery",
    "Entry",
    "GridSpec",
    "PartitionTask",
    "PoolReport",
    "balance_tasks",
    "partition_join",
    "partition_pair",
    "reference_point",
    "run_partitions",
    "scatter",
    "sweep_tile",
]
