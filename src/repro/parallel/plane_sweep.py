"""Forward plane sweep over one grid tile.

The kernel of the partition-parallel join: both entry lists arrive sorted
by ``mbr.xmin``; a single merge pass walks the lists in x order and, for
each entry, scans forward in the *other* list while the x intervals still
overlap.  Candidates that also overlap in y are MBR matches; each is
charged one Theta-filter evaluation.  Surviving candidates pass through
the reference-point ownership test (duplicate avoidance across tiles,
free of charge -- it is bookkeeping, not a predicate) and are then
refined with the exact theta-operator, which dispatches over the stored
geometries via :mod:`repro.predicates.dispatch`.
"""

from __future__ import annotations

from typing import Sequence

from repro.parallel.partitioner import Entry, GridSpec, reference_point
from repro.predicates.theta import ThetaOperator
from repro.storage.costs import CostMeter
from repro.storage.record import RecordId


def sweep_tile(
    grid: GridSpec,
    ix: int,
    iy: int,
    entries_r: Sequence[Entry],
    entries_s: Sequence[Entry],
    theta: ThetaOperator,
    meter: CostMeter,
) -> list[tuple[RecordId, RecordId]]:
    """All matching (tid_r, tid_s) pairs owned by tile ``(ix, iy)``.

    Emits each qualifying pair exactly once across the whole grid: pairs
    whose reference point falls in another tile are skipped here and
    reported there.
    """
    pairs: list[tuple[RecordId, RecordId]] = []
    cell = (ix, iy)
    owner = grid.owner_cell
    i = j = 0
    n_r, n_s = len(entries_r), len(entries_s)
    while i < n_r and j < n_s:
        r_tid, r_mbr, r_geom = entries_r[i]
        s_tid, s_mbr, s_geom = entries_s[j]
        if r_mbr.xmin <= s_mbr.xmin:
            # r opens first: pair it with every s whose x interval starts
            # before r's closes.
            k = j
            while k < n_s:
                s_tid, s_mbr, s_geom = entries_s[k]
                if s_mbr.xmin > r_mbr.xmax:
                    break
                k += 1
                meter.record_filter_eval()
                if s_mbr.ymin > r_mbr.ymax or r_mbr.ymin > s_mbr.ymax:
                    continue
                if owner(*reference_point(r_mbr, s_mbr)) != cell:
                    continue
                meter.record_exact_eval()
                if theta(r_geom, s_geom):
                    pairs.append((r_tid, s_tid))
            i += 1
        else:
            k = i
            while k < n_r:
                r_tid, r_mbr, r_geom = entries_r[k]
                if r_mbr.xmin > s_mbr.xmax:
                    break
                k += 1
                meter.record_filter_eval()
                if r_mbr.ymin > s_mbr.ymax or s_mbr.ymin > r_mbr.ymax:
                    continue
                if owner(*reference_point(r_mbr, s_mbr)) != cell:
                    continue
                meter.record_exact_eval()
                if theta(r_geom, s_geom):
                    pairs.append((r_tid, s_tid))
            j += 1
    return pairs
