"""Forward plane sweep over one partition (grid tile or shard range).

The kernel of the partition-parallel join: both entry lists arrive sorted
by ``mbr.xmin``; a single merge pass walks the lists in x order and, for
each entry, scans forward in the *other* list while the x intervals still
overlap.  Candidates that also overlap in y are MBR matches; each is
charged one Theta-filter evaluation.  Surviving candidates pass through
the reference-point ownership test (duplicate avoidance across
partitions, free of charge -- it is bookkeeping, not a predicate) and are
then refined with the exact theta-operator, which dispatches over the
stored geometries via :mod:`repro.predicates.dispatch`.  An optional
*refiner* (see :mod:`repro.intermediate.filter`) replaces that exact
step with the raster-interval second tier: sure hits and misses are
resolved from cell intervals and only ambiguous pairs run the exact
predicate.  Without a refiner an
:class:`~repro.intermediate.filter.ExactRefiner` is constructed, which
is byte-identical to the historical behavior.

:func:`sweep_sorted` is the generalized kernel: ownership is an
arbitrary predicate over the reference point, so the same pass serves
grid tiles (:func:`sweep_tile`) and z-order range shards
(:mod:`repro.shard.worker`), which partition the universe differently
but deduplicate identically.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.parallel.partitioner import Entry, GridSpec, reference_point
from repro.predicates.theta import ThetaOperator
from repro.storage.costs import CostMeter
from repro.storage.record import RecordId


def sweep_sorted(
    entries_r: Sequence[Entry],
    entries_s: Sequence[Entry],
    theta: ThetaOperator,
    meter: CostMeter,
    owns: Callable[[float, float], bool],
    refiner=None,
) -> list[tuple[RecordId, RecordId]]:
    """All matching (tid_r, tid_s) pairs whose reference point this
    partition ``owns``.

    ``owns(x, y)`` is the reference-point no-dedup rule: with entries
    replicated into every partition their MBR intersects and exactly one
    partition owning any point, each qualifying pair is emitted exactly
    once across the whole partitioning -- pairs owned elsewhere are
    skipped here and reported there.

    ``refiner`` resolves owned candidates (default: exact refinement;
    pass an :class:`~repro.intermediate.filter.IntervalFilter` for the
    raster second tier).
    """
    if refiner is None:
        from repro.intermediate.filter import ExactRefiner

        refiner = ExactRefiner(theta)
    pairs: list[tuple[RecordId, RecordId]] = []
    i = j = 0
    n_r, n_s = len(entries_r), len(entries_s)
    while i < n_r and j < n_s:
        r_tid, r_mbr, r_geom = entries_r[i]
        s_tid, s_mbr, s_geom = entries_s[j]
        if r_mbr.xmin <= s_mbr.xmin:
            # r opens first: pair it with every s whose x interval starts
            # before r's closes.
            k = j
            while k < n_s:
                s_tid, s_mbr, s_geom = entries_s[k]
                if s_mbr.xmin > r_mbr.xmax:
                    break
                k += 1
                meter.record_filter_eval()
                if s_mbr.ymin > r_mbr.ymax or r_mbr.ymin > s_mbr.ymax:
                    continue
                if not owns(*reference_point(r_mbr, s_mbr)):
                    continue
                if refiner.matches(r_geom, s_geom, meter):
                    pairs.append((r_tid, s_tid))
            i += 1
        else:
            k = i
            while k < n_r:
                r_tid, r_mbr, r_geom = entries_r[k]
                if r_mbr.xmin > s_mbr.xmax:
                    break
                k += 1
                meter.record_filter_eval()
                if r_mbr.ymin > s_mbr.ymax or s_mbr.ymin > r_mbr.ymax:
                    continue
                if not owns(*reference_point(r_mbr, s_mbr)):
                    continue
                if refiner.matches(r_geom, s_geom, meter):
                    pairs.append((r_tid, s_tid))
            j += 1
    return pairs


def sweep_tile(
    grid: GridSpec,
    ix: int,
    iy: int,
    entries_r: Sequence[Entry],
    entries_s: Sequence[Entry],
    theta: ThetaOperator,
    meter: CostMeter,
    refiner=None,
) -> list[tuple[RecordId, RecordId]]:
    """All matching (tid_r, tid_s) pairs owned by tile ``(ix, iy)``.

    Emits each qualifying pair exactly once across the whole grid: pairs
    whose reference point falls in another tile are skipped here and
    reported there.
    """
    cell = (ix, iy)
    owner = grid.owner_cell

    def owns(x: float, y: float) -> bool:
        return owner(x, y) == cell

    return sweep_sorted(entries_r, entries_s, theta, meter, owns, refiner)
