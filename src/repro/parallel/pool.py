"""Worker pool for the partition-parallel join.

``run_partitions`` executes the per-tile plane sweeps either sequentially
in-process (``workers=1`` -- the deterministic path unit tests rely on)
or on a :mod:`multiprocessing` pool.  Each worker runs its share of the
tiles with a *private* :class:`CostMeter`; the caller merges the meters
with :meth:`CostMeter.merge` so the final stats are one combined snapshot
regardless of how the work was spread.

Tiles are assigned to workers by greedy load balancing (largest tile
first, onto the least-loaded worker) -- uniform grids over skewed data
produce very uneven tiles, and a round-robin split would leave most
workers idle behind the densest tile.

Environments without working process support (sandboxes may refuse to
create semaphores or fork) degrade to the sequential path rather than
fail; the effective worker count is reported back to the caller.
"""

from __future__ import annotations

import multiprocessing
from functools import partial
from typing import Sequence

from repro.errors import JoinError
from repro.parallel.partitioner import GridSpec, PartitionTask
from repro.parallel.plane_sweep import sweep_tile
from repro.predicates.theta import ThetaOperator
from repro.storage.costs import CostMeter
from repro.storage.record import RecordId


def _run_chunk(
    tasks: Sequence[PartitionTask],
    grid: GridSpec,
    theta: ThetaOperator,
) -> tuple[list[tuple[RecordId, RecordId]], CostMeter]:
    """One worker's share: sweep every assigned tile on a private meter."""
    meter = CostMeter()
    pairs: list[tuple[RecordId, RecordId]] = []
    for task in tasks:
        pairs.extend(
            sweep_tile(grid, task.ix, task.iy, task.entries_r, task.entries_s,
                       theta, meter)
        )
    return pairs, meter


def balance_tasks(
    tasks: Sequence[PartitionTask], workers: int
) -> list[list[PartitionTask]]:
    """Greedy longest-processing-time split of tiles into worker chunks."""
    if workers < 1:
        raise JoinError(f"workers must be positive, got {workers}")
    chunks: list[list[PartitionTask]] = [[] for _ in range(workers)]
    loads = [0] * workers
    for task in sorted(tasks, key=lambda t: t.load, reverse=True):
        w = loads.index(min(loads))
        chunks[w].append(task)
        loads[w] += task.load
    return [c for c in chunks if c]


def run_partitions(
    tasks: Sequence[PartitionTask],
    grid: GridSpec,
    theta: ThetaOperator,
    *,
    workers: int = 1,
) -> tuple[list[tuple[RecordId, RecordId]], CostMeter, int]:
    """Sweep all tiles; returns ``(pairs, merged_meter, effective_workers)``.

    ``effective_workers`` is 1 when the sequential fallback ran (either
    requested, or because the platform refused to start processes).
    """
    if workers < 1:
        raise JoinError(f"workers must be positive, got {workers}")
    if workers == 1 or len(tasks) <= 1:
        pairs, meter = _run_chunk(tasks, grid, theta)
        return pairs, meter, 1

    chunks = balance_tasks(tasks, workers)
    try:
        with multiprocessing.get_context().Pool(processes=len(chunks)) as mp_pool:
            reports = mp_pool.map(partial(_run_chunk, grid=grid, theta=theta), chunks)
    except (OSError, PermissionError, ValueError, ImportError):
        # No usable process support here: run the chunks in-process, still
        # on private meters, so results and accounting are identical.
        reports = [_run_chunk(chunk, grid, theta) for chunk in chunks]
        pairs = [p for chunk_pairs, _ in reports for p in chunk_pairs]
        return pairs, CostMeter.merge([m for _, m in reports]), 1

    pairs = [p for chunk_pairs, _ in reports for p in chunk_pairs]
    return pairs, CostMeter.merge([m for _, m in reports]), len(chunks)
