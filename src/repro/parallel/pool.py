"""Worker pool for the partition-parallel join, with failure recovery.

``run_partitions`` executes the per-tile plane sweeps either sequentially
in-process (``workers=1`` -- the deterministic path unit tests rely on)
or on a :mod:`multiprocessing` pool.  Each worker runs its share of the
tiles with a *private* :class:`CostMeter`; the caller merges the meters
with :meth:`CostMeter.merge` so the final stats are one combined snapshot
regardless of how the work was spread.

Tiles are assigned to workers by greedy load balancing (largest tile
first, onto the least-loaded worker) -- uniform grids over skewed data
produce very uneven tiles, and a round-robin split would leave most
workers idle behind the densest tile.

Failure handling is explicit, never silent:

* environments without working process support (sandboxes may refuse to
  create semaphores or fork) degrade to the sequential path and report
  the *cause* in the returned :class:`PoolReport`;
* each chunk is collected with an optional timeout; a chunk whose worker
  crashed (e.g. an injected :class:`WorkerError`) or timed out is
  re-executed sequentially in the parent -- a crashed machine does not
  poison the data, so the re-run omits the crash injection -- and the
  recovery is recorded per chunk;
* pool shutdown always runs in a ``finally`` and always joins:
  the pool is ``close()``-d when every dispatched chunk was collected
  (workers drain cleanly and release their IPC resources) and
  ``terminate()``-d only when a chunk is still running past its timeout
  -- the one case where waiting could block forever.  Either way no
  worker process outlives the call.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.errors import JoinError, WorkerError
from repro.parallel.partitioner import GridSpec, PartitionTask
from repro.parallel.plane_sweep import sweep_tile
from repro.predicates.theta import ThetaOperator
from repro.storage.costs import CostMeter
from repro.storage.record import RecordId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.faults.plan import FaultPlan


@dataclass(slots=True)
class ChunkRecovery:
    """One worker chunk that failed and was re-executed sequentially."""

    chunk: int
    tiles: int
    cause: str
    recovered: bool = True


@dataclass(slots=True)
class PoolReport:
    """How the partition run actually executed.

    ``degrade_reason`` is set when the process pool could not be used at
    all (and why); ``recoveries`` lists every chunk whose worker crashed
    or timed out and had to be re-run in the parent.
    """

    requested_workers: int
    effective_workers: int
    degrade_reason: str | None = None
    recoveries: list[ChunkRecovery] = field(default_factory=list)

    @property
    def retried_chunks(self) -> int:
        return len(self.recoveries)

    @property
    def degraded(self) -> bool:
        return self.degrade_reason is not None


def _run_chunk(
    tasks: Sequence[PartitionTask],
    grid: GridSpec,
    theta: ThetaOperator,
    fault_plan: "FaultPlan | None" = None,
    chunk_index: int = 0,
    refiner=None,
) -> tuple[list[tuple[RecordId, RecordId]], CostMeter]:
    """One worker's share: sweep every assigned tile on a private meter.

    ``refiner`` (an :class:`~repro.intermediate.filter.IntervalFilter`,
    or ``None`` for exact refinement) is pickled along with the tasks on
    the process-pool path -- workers probe their own copy of the
    approximation memo, and the interval counters ride home on the
    private meter like every other counter.
    """
    if fault_plan is not None and fault_plan.should_crash_chunk(chunk_index):
        raise WorkerError(f"injected crash of worker chunk {chunk_index}")
    meter = CostMeter()
    pairs: list[tuple[RecordId, RecordId]] = []
    for task in tasks:
        pairs.extend(
            sweep_tile(grid, task.ix, task.iy, task.entries_r, task.entries_s,
                       theta, meter, refiner)
        )
    return pairs, meter


def balance_tasks(
    tasks: Sequence[PartitionTask], workers: int
) -> list[list[PartitionTask]]:
    """Greedy longest-processing-time split of tiles into worker chunks."""
    if workers < 1:
        raise JoinError(f"workers must be positive, got {workers}")
    chunks: list[list[PartitionTask]] = [[] for _ in range(workers)]
    loads = [0] * workers
    for task in sorted(tasks, key=lambda t: t.load, reverse=True):
        w = loads.index(min(loads))
        chunks[w].append(task)
        loads[w] += task.load
    return [c for c in chunks if c]


def _run_chunks_sequentially(
    chunks: list[list[PartitionTask]],
    grid: GridSpec,
    theta: ThetaOperator,
    fault_plan: "FaultPlan | None",
    report: PoolReport,
    metrics=None,
    cancel=None,
    refiner=None,
) -> list[tuple[list[tuple[RecordId, RecordId]], CostMeter]]:
    """Run every chunk in-process, recovering injected crashes per chunk."""
    from repro.core.cancel import check_cancel

    results = []
    for i, chunk in enumerate(chunks):
        check_cancel(cancel)
        started = time.perf_counter()
        try:
            results.append(_run_chunk(chunk, grid, theta, fault_plan, i, refiner))
        except WorkerError as exc:
            # A deadline may have expired while the crashed attempt ran;
            # recovery is new work, so it honours the token too -- an
            # expired query must not finish the recovery pass.
            check_cancel(cancel)
            results.append(_run_chunk(chunk, grid, theta, refiner=refiner))
            report.recoveries.append(
                ChunkRecovery(chunk=i, tiles=len(chunk), cause=repr(exc))
            )
            if fault_plan is not None:
                fault_plan.note_worker_crash(i, recovered=True)
        if metrics is not None:
            _observe_chunk(metrics, time.perf_counter() - started, len(chunk))
    return results


def _observe_chunk(metrics, seconds: float, tiles: int) -> None:
    from repro.obs.metrics import DURATION_BUCKETS  # lazy: optional layer

    metrics.histogram("parallel.chunk_seconds", buckets=DURATION_BUCKETS).observe(seconds)
    metrics.histogram("parallel.chunk_tiles").observe(tiles)


def run_partitions(
    tasks: Sequence[PartitionTask],
    grid: GridSpec,
    theta: ThetaOperator,
    *,
    workers: int = 1,
    fault_plan: "FaultPlan | None" = None,
    chunk_timeout: float | None = None,
    metrics=None,
    cancel=None,
    refiner=None,
) -> tuple[list[tuple[RecordId, RecordId]], CostMeter, PoolReport]:
    """Sweep all tiles; returns ``(pairs, merged_meter, report)``.

    ``report.effective_workers`` is 1 when the sequential path ran
    (either requested, or because the platform refused to start
    processes -- in which case ``report.degrade_reason`` says why).
    ``chunk_timeout`` bounds each worker chunk in wall-clock seconds;
    a chunk that exceeds it is re-executed sequentially.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) receives
    per-chunk wall durations and tile counts, plus a recovery counter --
    the partition-level timing breakdown that makes a parallel join's
    imbalance visible.  On the process-pool path a chunk's duration is
    measured from dispatch to collection, so concurrent chunks overlap.

    ``cancel`` (a :class:`~repro.core.cancel.CancellationToken`) is the
    per-chunk cooperative cancellation boundary: the sequential path
    checks it before every chunk (a many-tile partition join can be
    stopped mid-sweep), the process-pool path before dispatch and
    between chunk collections.  A chunk already running in a worker
    process finishes (or times out) before the cancellation surfaces --
    cancellation is cooperative, never pre-emptive.
    """
    from repro.core.cancel import check_cancel

    if workers < 1:
        raise JoinError(f"workers must be positive, got {workers}")
    if workers == 1 or len(tasks) <= 1:
        report = PoolReport(requested_workers=workers, effective_workers=1)
        chunk = list(tasks)
        reports = _run_chunks_sequentially([chunk] if chunk else [], grid, theta,
                                           fault_plan, report, metrics, cancel,
                                           refiner)
        pairs = [p for chunk_pairs, _ in reports for p in chunk_pairs]
        _publish_recoveries(metrics, report)
        return pairs, CostMeter.merge([m for _, m in reports]), report

    check_cancel(cancel)
    chunks = balance_tasks(tasks, workers)
    report = PoolReport(requested_workers=workers, effective_workers=len(chunks))
    try:
        mp_pool = multiprocessing.get_context().Pool(processes=len(chunks))
    except (OSError, PermissionError, ValueError, ImportError) as exc:
        # No usable process support here: run the chunks in-process, still
        # on private meters, so results and accounting are identical --
        # and say so, instead of silently pretending parallelism.
        report.effective_workers = 1
        report.degrade_reason = f"{type(exc).__name__}: {exc}"
        reports = _run_chunks_sequentially(chunks, grid, theta, fault_plan,
                                           report, metrics, cancel, refiner)
        pairs = [p for chunk_pairs, _ in reports for p in chunk_pairs]
        _publish_recoveries(metrics, report)
        return pairs, CostMeter.merge([m for _, m in reports]), report

    results: list[tuple[list[tuple[RecordId, RecordId]], CostMeter] | None] = []
    causes: list[str | None] = []
    outstanding = 0
    try:
        dispatched = time.perf_counter()
        handles = [
            mp_pool.apply_async(_run_chunk,
                                (chunk, grid, theta, fault_plan, i, refiner))
            for i, chunk in enumerate(chunks)
        ]
        outstanding = len(handles)
        for i, handle in enumerate(handles):
            # A cancel here leaves ``outstanding`` > 0, so the finally
            # terminates (not drains) the pool -- no orphaned workers.
            check_cancel(cancel)
            try:
                results.append(handle.get(timeout=chunk_timeout))
                causes.append(None)
                outstanding -= 1
                if metrics is not None:
                    _observe_chunk(metrics, time.perf_counter() - dispatched,
                                   len(chunks[i]))
            except multiprocessing.TimeoutError:
                results.append(None)
                causes.append(f"timeout after {chunk_timeout}s")
            except Exception as exc:  # worker crashed: recover below
                results.append(None)
                causes.append(repr(exc))
                outstanding -= 1
    finally:
        # A timed-out chunk is still *running* in its worker: close()
        # would block join() behind it indefinitely, so those runs are
        # terminated.  Every other exit -- clean collection, worker
        # exceptions (the worker itself is idle again), or an error in
        # this parent loop before dispatch completed -- closes the pool
        # and joins it, letting workers drain and release their
        # semaphores/pipes instead of being killed mid-cleanup (which
        # leaks them and trips multiprocessing's atexit warnings).
        if outstanding:
            mp_pool.terminate()
        else:
            mp_pool.close()
        mp_pool.join()

    for i, (chunk, outcome, cause) in enumerate(zip(chunks, results, causes)):
        if outcome is not None:
            continue
        check_cancel(cancel)
        started = time.perf_counter()
        results[i] = _run_chunk(chunk, grid, theta, refiner=refiner)
        report.recoveries.append(
            ChunkRecovery(chunk=i, tiles=len(chunk), cause=cause or "unknown")
        )
        if metrics is not None:
            _observe_chunk(metrics, time.perf_counter() - started, len(chunk))
        if fault_plan is not None:
            fault_plan.note_worker_crash(i, recovered=True)

    completed = [r for r in results if r is not None]
    pairs = [p for chunk_pairs, _ in completed for p in chunk_pairs]
    _publish_recoveries(metrics, report)
    return pairs, CostMeter.merge([m for _, m in completed]), report


def _publish_recoveries(metrics, report: PoolReport) -> None:
    if metrics is not None and report.recoveries:
        metrics.counter("parallel.chunk_recoveries").inc(len(report.recoveries))
