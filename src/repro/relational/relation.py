"""Relations: schema-checked tuple collections over simulated files.

A relation owns a backing file (heap by default, clustered after
:meth:`Relation.recluster`), hands out tuple ids, and hosts secondary
spatial indices -- one generalization tree per indexed spatial column,
as the paper assumes ("each generalization tree serves as a secondary
index on a spatial column of exactly one relation", Section 3.1).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import RelationError, SchemaError
from repro.relational.schema import Schema
from repro.relational.tuples import RelTuple
from repro.storage.buffer import BufferPool
from repro.storage.clustered import ClusteredFile
from repro.storage.heapfile import HeapFile
from repro.storage.record import RecordId

#: Default tuple size in bytes (the paper's ``v`` from Table 3).
DEFAULT_TUPLE_SIZE = 300


class Relation:
    """A named relation backed by a simulated file.

    ``record_size`` and ``utilization`` feed the ``m = floor(s*l / v)``
    arithmetic of the cost model; with the Table 3 values each page holds
    five tuples.
    """

    #: Process-wide allocator for :attr:`uid` -- never reset, never
    #: recycled, so a uid identifies one relation *instance* forever
    #: (unlike ``id()``, which the allocator reuses after collection).
    _uid_counter = itertools.count(1)

    def __init__(
        self,
        name: str,
        schema: Schema,
        buffer_pool: BufferPool,
        record_size: int = DEFAULT_TUPLE_SIZE,
        utilization: float = 0.75,
        *,
        wal: Any = None,
    ) -> None:
        if not name:
            raise RelationError("relation name must be non-empty")
        #: Stable identity for epoch-keyed consumers (query cache,
        #: join-index registry): unique per instance for the lifetime of
        #: the process, even after this relation is garbage-collected.
        self.uid = next(Relation._uid_counter)
        self.name = name
        self.schema = schema
        self.buffer_pool = buffer_pool
        self.record_size = record_size
        self.utilization = utilization
        self._file: HeapFile = HeapFile(buffer_pool, record_size, utilization)
        self._indices: dict[str, Any] = {}
        self._clustered = False
        self._mod_count = 0
        #: Optional write-ahead log (duck-typed so this module never
        #: imports :mod:`repro.wal`).  When set, every mutation appends a
        #: log record and stamps the touched pages with its LSN; the
        #: buffer pool then enforces the WAL rule against those stamps.
        self.wal = wal
        if wal is not None:
            wal.register_relation(self)
            if getattr(buffer_pool, "wal", None) is None:
                buffer_pool.wal = wal

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> RelTuple:
        """Validate, store and return the tuple (with its id assigned).

        Secondary indices on this relation are maintained automatically.
        """
        t = RelTuple(self.schema, values)
        t.tid = self._file.append(t)
        if self.wal is not None:
            lsn = self.wal.log_insert(self.name, t.tid, self.schema, t.values)
            self._stamp(lsn, t.tid.page_id)
        for column, index in self._indices.items():
            index.insert(t[column], t.tid)
        self._mod_count += 1
        return t

    def insert_all(self, rows: Iterable[Sequence[Any]]) -> list[RelTuple]:
        """Insert many rows; returns the stored tuples in order."""
        return [self.insert(r) for r in rows]

    def delete(self, tid: RecordId) -> None:
        """Remove a tuple by id; index entries are removed as well."""
        t = self.get(tid)
        self._file.delete(tid)
        if self.wal is not None:
            lsn = self.wal.log_delete(self.name, tid)
            self._stamp(lsn, tid.page_id)
        for column, index in self._indices.items():
            remove = getattr(index, "delete", None) or getattr(index, "remove", None)
            if remove is not None:
                remove(t[column], tid)
        self._mod_count += 1

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def get(self, tid: RecordId) -> RelTuple:
        """Fetch one tuple by id (a page access through the buffer pool)."""
        record = self._file.get(tid)
        if not isinstance(record, RelTuple):
            raise RelationError(f"{tid} does not hold a tuple of {self.name}")
        return record

    def get_many(self, tids: Sequence[RecordId]) -> list[RelTuple]:
        """Fetch several tuples, sorting ids to batch same-page accesses."""
        return self._file.get_many(list(tids))

    def scan(self) -> Iterator[RelTuple]:
        """Sequential scan in file order."""
        for _rid, record in self._file.scan():
            yield record

    def select(self, predicate: Callable[[RelTuple], bool]) -> list[RelTuple]:
        """Materialized selection via full scan (no index use)."""
        return [t for t in self.scan() if predicate(t)]

    def project(self, names: Sequence[str]) -> list[RelTuple]:
        """Materialized projection onto the named columns."""
        return [t.project(names) for t in self.scan()]

    # ------------------------------------------------------------------
    # Indexing & clustering
    # ------------------------------------------------------------------

    def attach_index(self, column: str, index: Any, backfill: bool = True) -> None:
        """Register a secondary index (e.g. an R-tree) on a spatial column.

        The index must expose ``insert(key, tid)``; existing tuples are
        back-filled into it unless ``backfill=False`` (for indices built
        alongside the relation, like explicit cartographic hierarchies).
        """
        col = self.schema.column(column)
        if not col.type.is_spatial:
            raise SchemaError(
                f"column {column!r} of {self.name} is not spatial "
                f"({col.type.value}); generalization trees index spatial columns"
            )
        if column in self._indices:
            raise RelationError(f"{self.name} already has an index on {column!r}")
        if backfill:
            for t in self.scan():
                index.insert(t[column], t.tid)
        self._indices[column] = index
        if self.wal is not None:
            # The index content is derivable (recovery backfills from the
            # rebuilt relation); only the *fact* of the index is logged.
            self.wal.log_attach_index(self.name, column, type(index).__name__)

    def index_on(self, column: str) -> Any:
        """The secondary index on ``column``; raises if none is attached."""
        try:
            return self._indices[column]
        except KeyError:
            raise RelationError(
                f"{self.name} has no index on column {column!r}"
            ) from None

    def has_index_on(self, column: str) -> bool:
        return column in self._indices

    def recluster(self, order: Sequence[RecordId]) -> dict[RecordId, RecordId]:
        """Rebuild the backing file with tuples in the given RID order.

        This realizes strategy IIb's breadth-first clustering: pass the
        RIDs in BFS order of the generalization tree and the relation's
        pages become tree-clustered.  Returns the old-RID -> new-RID map;
        attached indices are rewritten to the new ids.
        """
        old_tuples = {rid: rec for rid, rec in self._file.scan()}
        missing = [rid for rid in order if rid not in old_tuples]
        if missing:
            raise RelationError(f"recluster order references unknown RIDs: {missing[:3]}")
        if len(order) != len(old_tuples):
            raise RelationError(
                f"recluster order has {len(order)} RIDs, relation has {len(old_tuples)} tuples"
            )
        new_file = ClusteredFile(self.buffer_pool, self.record_size, self.utilization)
        ordered_tuples = [old_tuples[rid] for rid in order]
        new_rids = new_file.bulk_load(ordered_tuples)
        rid_map = dict(zip(order, new_rids))
        if self.wal is not None:
            # One atomic commit record, logged after the new file is fully
            # built but before the swap: a crash earlier leaves orphan
            # pages and the old file intact (the recluster never
            # happened); from here on recovery replays it wholesale.
            lsn = self.wal.log_recluster(self.name, list(order), list(new_rids))
            self._stamp(lsn, *new_file.page_ids)
        for t, new_rid in zip(ordered_tuples, new_rids):
            t.tid = new_rid
        self._file = new_file
        self._clustered = True
        self._mod_count += 1
        for index in self._indices.values():
            remap = getattr(index, "remap_tids", None)
            if remap is not None:
                remap(rid_map)
        return rid_map

    def reset_buffer(self, memory_pages: int | None = None, meter: Any = None) -> None:
        """Install a fresh, cold buffer pool over the same disk.

        Benchmarks call this between strategy runs so every run starts
        with an empty cache; dirty pages are flushed (and their writes
        charged to the old meter) first.  Structures that captured the
        old pool (e.g. B+-trees) keep using it -- only this relation's
        own page traffic moves to the new pool.
        """
        from repro.storage.costs import CostMeter

        self.buffer_pool.flush_all()
        capacity = memory_pages if memory_pages is not None else self.buffer_pool.capacity
        new_meter = meter if meter is not None else CostMeter()
        new_pool = BufferPool(self.buffer_pool.disk, capacity, new_meter)
        new_pool.wal = getattr(self.buffer_pool, "wal", None)
        self.buffer_pool = new_pool
        self._file.buffer_pool = new_pool

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _stamp(self, lsn: int, *page_ids: int) -> None:
        """Stamp resident pages with the LSN of the record covering them.

        The stamp is what the buffer pool's WAL rule checks: the page may
        not be physically written until the log is durable past ``lsn``.
        """
        for page_id in page_ids:
            page = self.buffer_pool.peek(page_id)
            if page is not None:
                page.page_lsn = lsn

    @property
    def is_clustered(self) -> bool:
        return self._clustered

    @property
    def modification_count(self) -> int:
        """Monotonic counter bumped by every tuple mutation.

        Derived structures built from a snapshot of the relation (e.g. a
        precomputed join index) capture this value and compare it later to
        detect staleness.
        """
        return self._mod_count

    def bump_epoch(self, count: int = 1) -> int:
        """Advance the modification counter without a tuple mutation.

        Maintenance paths whose effects bypass :meth:`insert`/
        :meth:`delete` -- WAL recovery rebuilding the relation in place,
        external reorganization -- call this so epoch-keyed consumers
        (the query cache, the join-index registry) see their snapshots
        as stale.  Returns the new count.
        """
        if count < 1:
            raise RelationError(f"epoch bump must be positive, got {count}")
        self._mod_count += count
        return self._mod_count

    @property
    def num_pages(self) -> int:
        """Pages occupied by the relation (the model's ``ceil(N/m)``)."""
        return self._file.num_pages

    @property
    def records_per_page(self) -> int:
        """The model's ``m``."""
        return self._file.records_per_page

    @property
    def page_ids(self) -> tuple[int, ...]:
        """Ids of the pages backing this relation, in file order."""
        return self._file.page_ids

    def __len__(self) -> int:
        return len(self._file)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, {len(self)} tuples, {self.num_pages} pages)"
