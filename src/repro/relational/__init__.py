"""Minimal extended-relational layer (the paper's assumed data model).

Section 2 assumes "a relational data model that is extended by spatial
data types and operators" (a la POSTGRES / DASDBS).  This subpackage
provides just the slice of that model the join strategies need:

* :class:`~repro.relational.schema.Schema` with spatial column types;
* :class:`~repro.relational.tuples.RelTuple` -- immutable tuples with ids;
* :class:`~repro.relational.relation.Relation` -- a named, schema-checked
  collection of tuples backed by a simulated heap (or clustered) file,
  with secondary spatial indices attachable per column.

Selections and projections are provided so the paper's motivating query
pipelines ("one or more selections before computing the actual join",
Section 4.5) can be expressed.
"""

from repro.relational.schema import Column, ColumnType, Schema
from repro.relational.tuples import RelTuple
from repro.relational.relation import Relation
from repro.relational.algebra import (
    equijoin_into,
    project_into,
    select_into,
    theta_join_into,
)

__all__ = [
    "Column",
    "ColumnType",
    "Schema",
    "RelTuple",
    "Relation",
    "select_into",
    "project_into",
    "equijoin_into",
    "theta_join_into",
]
