"""Schemas with spatial column types.

The paper's running example uses::

    house(hid, hprice, hlocation)   -- hlocation of type POINT
    lake(lid, name, larea)          -- larea of type POLYGON

A :class:`Schema` validates tuple values against declared column types and
identifies which columns are spatial (eligible for generalization-tree
indices and spatial joins).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import SchemaError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.polyline import PolyLine
from repro.geometry.rect import Rect


class ColumnType(enum.Enum):
    """Supported column types; the last four are spatial."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    POINT = "point"
    RECT = "rect"
    POLYGON = "polygon"
    POLYLINE = "polyline"

    @property
    def is_spatial(self) -> bool:
        return self in _SPATIAL_TYPES

    def accepts(self, value: Any) -> bool:
        """True if ``value`` is a legal instance of this column type."""
        expected = _PYTHON_TYPES[self]
        if self is ColumnType.FLOAT:
            # Ints are acceptable floats, but bools are not numbers here.
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is ColumnType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        return isinstance(value, expected)


_SPATIAL_TYPES = frozenset(
    {ColumnType.POINT, ColumnType.RECT, ColumnType.POLYGON, ColumnType.POLYLINE}
)

_PYTHON_TYPES: dict[ColumnType, type | tuple[type, ...]] = {
    ColumnType.INT: int,
    ColumnType.FLOAT: float,
    ColumnType.STR: str,
    ColumnType.POINT: Point,
    ColumnType.RECT: Rect,
    ColumnType.POLYGON: Polygon,
    ColumnType.POLYLINE: PolyLine,
}


@dataclass(frozen=True, slots=True)
class Column:
    """A named, typed column."""

    name: str
    type: ColumnType

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"column name must be an identifier, got {self.name!r}")


class Schema:
    """An ordered set of uniquely named columns."""

    __slots__ = ("_columns", "_index_by_name")

    def __init__(self, columns: Sequence[Column]) -> None:
        cols = tuple(columns)
        if not cols:
            raise SchemaError("a schema needs at least one column")
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        self._columns = cols
        self._index_by_name = {c.name: i for i, c in enumerate(cols)}

    @classmethod
    def of(cls, **name_types: ColumnType) -> "Schema":
        """Concise constructor: ``Schema.of(hid=ColumnType.INT, ...)``."""
        return cls([Column(n, t) for n, t in name_types.items()])

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index_by_name

    def index_of(self, name: str) -> int:
        """Position of a column; raises for unknown names."""
        try:
            return self._index_by_name[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; schema has {self.column_names}"
            ) from None

    def column(self, name: str) -> Column:
        return self._columns[self.index_of(name)]

    def spatial_columns(self) -> tuple[Column, ...]:
        """The columns eligible for spatial indices and joins."""
        return tuple(c for c in self._columns if c.type.is_spatial)

    def validate(self, values: Sequence[Any]) -> tuple[Any, ...]:
        """Type-check a value sequence against the schema; returns a tuple."""
        vals = tuple(values)
        if len(vals) != len(self._columns):
            raise SchemaError(
                f"expected {len(self._columns)} values, got {len(vals)}"
            )
        for col, val in zip(self._columns, vals):
            if not col.type.accepts(val):
                raise SchemaError(
                    f"column {col.name!r} expects {col.type.value}, "
                    f"got {type(val).__name__} ({val!r})"
                )
        return vals

    def project(self, names: Sequence[str]) -> "Schema":
        """Sub-schema with the named columns, in the order given."""
        return Schema([self.column(n) for n in names])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.type.value}" for c in self._columns)
        return f"Schema({cols})"
