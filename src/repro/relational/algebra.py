"""Materializing relational algebra over simulated relations.

Section 2.1 walks through the classical pipeline -- select the New York
customers, equijoin with orders, project away redundant columns -- and
Section 4.5 notes that spatial joins, too, typically run on the *results
of selections* rather than on base relations.  This module provides the
pieces to express both:

* :func:`select_into` / :func:`project_into` -- materialized selection
  and projection into fresh relations;
* :func:`equijoin_into` -- the classical hash equijoin of the customer/
  order example;
* :func:`theta_join_into` -- a spatial theta-join (delegating to any
  strategy of :class:`~repro.core.executor.SpatialQueryExecutor`) whose
  result is materialized as a relation of concatenated tuples.

All operators write their output through the same buffer pool machinery
as base relations, so downstream operators and cost meters see ordinary
relations.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import RelationError
from repro.relational.relation import Relation
from repro.relational.schema import Column, Schema
from repro.relational.tuples import RelTuple
from repro.storage.buffer import BufferPool


def _output_relation(name: str, schema: Schema, like: Relation) -> Relation:
    """A fresh relation sharing the source's disk and page geometry."""
    return Relation(
        name,
        schema,
        like.buffer_pool,
        record_size=like.record_size,
        utilization=like.utilization,
    )


def select_into(
    relation: Relation,
    predicate: Callable[[RelTuple], bool],
    name: str,
) -> Relation:
    """Materialize ``sigma_predicate(relation)`` as a new relation."""
    out = _output_relation(name, relation.schema, relation)
    for t in relation.scan():
        if predicate(t):
            out.insert(t.values)
    return out


def project_into(
    relation: Relation,
    columns: Sequence[str],
    name: str,
) -> Relation:
    """Materialize ``pi_columns(relation)`` as a new relation.

    Duplicate rows are kept (bag semantics), matching SQL defaults and
    keeping tuple identity simple.
    """
    schema = relation.schema.project(columns)
    out = _output_relation(name, schema, relation)
    for t in relation.scan():
        out.insert([t[c] for c in columns])
    return out


def _joined_schema(rel_r: Relation, rel_s: Relation) -> Schema:
    cols: list[Column] = list(rel_r.schema.columns)
    taken = {c.name for c in cols}
    for c in rel_s.schema.columns:
        name = c.name
        while name in taken:
            name = f"{name}_2"
        cols.append(Column(name, c.type))
        taken.add(name)
    return Schema(cols)


def equijoin_into(
    rel_r: Relation,
    column_r: str,
    rel_s: Relation,
    column_s: str,
    name: str,
) -> Relation:
    """Classical hash equijoin ``R |x|_{R.a = S.b} S``, materialized.

    The smaller relation is built into an in-memory hash table and the
    larger one probes it -- the textbook strategy the paper contrasts the
    spatial case against (hashing works because equality, unlike spatial
    proximity, survives a 1-D mapping).
    """
    if len(rel_r) <= len(rel_s):
        build_rel, build_col = rel_r, column_r
        probe_rel, probe_col = rel_s, column_s
        build_is_r = True
    else:
        build_rel, build_col = rel_s, column_s
        probe_rel, probe_col = rel_r, column_r
        build_is_r = False

    table: dict[Any, list[RelTuple]] = {}
    for t in build_rel.scan():
        table.setdefault(t[build_col], []).append(t)

    schema = _joined_schema(rel_r, rel_s)
    out = _output_relation(name, schema, rel_r)
    for probe in probe_rel.scan():
        for match in table.get(probe[probe_col], ()):
            r_tuple, s_tuple = (match, probe) if build_is_r else (probe, match)
            out.insert(r_tuple.values + s_tuple.values)
    return out


def theta_join_into(
    executor: Any,
    rel_r: Relation,
    column_r: str,
    rel_s: Relation,
    column_s: str,
    theta: Any,
    name: str,
    *,
    strategy: str = "auto",
    meter: Any = None,
) -> Relation:
    """Materialize the spatial join ``R |x|_theta S`` as a new relation.

    ``executor`` is a :class:`~repro.core.executor.SpatialQueryExecutor`;
    any of its strategies may be chosen.  Output tuples concatenate the
    matching input tuples (clashing column names get a ``_2`` suffix), as
    in the paper's ``nyorders`` walk-through.
    """
    result = executor.join(
        rel_r, column_r, rel_s, column_s, theta,
        strategy=strategy, meter=meter,
    )
    schema = _joined_schema(rel_r, rel_s)
    out = _output_relation(name, schema, rel_r)
    for tid_r, tid_s in result.pairs:
        r_tuple = rel_r.get(tid_r)
        s_tuple = rel_s.get(tid_s)
        out.insert(r_tuple.values + s_tuple.values)
    return out
