"""Relation tuples: immutable rows with a tuple identifier.

Tuple identifiers are the :class:`~repro.storage.record.RecordId` of the
row's record in the backing file; join indices store exactly these ids
(Section 2.1: "a join index is nothing but a two-column relation that
stores the tuple IDs of matching tuples").
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import SchemaError
from repro.relational.schema import Schema
from repro.storage.record import RecordId


class RelTuple:
    """One row of a relation: schema-bound values plus an optional id.

    Access columns by name (``t["hlocation"]``) or position (``t.values``).
    Instances are value-immutable; the tuple id is assigned by the relation
    when the row is stored.
    """

    __slots__ = ("_schema", "_values", "tid")

    def __init__(self, schema: Schema, values: Sequence[Any], tid: RecordId | None = None) -> None:
        self._schema = schema
        self._values = schema.validate(values)
        self.tid = tid

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def values(self) -> tuple[Any, ...]:
        return self._values

    def __getitem__(self, name: str) -> Any:
        return self._values[self._schema.index_of(name)]

    def project(self, names: Sequence[str]) -> "RelTuple":
        """A new (id-less) tuple with only the named columns."""
        sub = self._schema.project(names)
        return RelTuple(sub, [self[n] for n in names])

    def concat(self, other: "RelTuple") -> "RelTuple":
        """Join-style concatenation; clashing names get a ``_2`` suffix."""
        from repro.relational.schema import Column

        cols: list[Column] = list(self._schema.columns)
        taken = set(self._schema.column_names)
        for c in other.schema.columns:
            name = c.name
            while name in taken:
                name = f"{name}_2"
            if name != c.name:
                c = Column(name, c.type)
            cols.append(c)
            taken.add(c.name)
        merged = Schema(cols)
        return RelTuple(merged, self._values + other.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelTuple):
            return NotImplemented
        return self._schema == other._schema and self._values == other._values

    def __hash__(self) -> int:
        try:
            return hash((self._schema, self._values))
        except TypeError as exc:  # pragma: no cover - all our types hash
            raise SchemaError(f"tuple contains unhashable value: {exc}") from exc

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{n}={v!r}" for n, v in zip(self._schema.column_names, self._values)
        )
        return f"RelTuple({pairs})"
