"""Crash-consistent storage: write-ahead log, checkpoints, recovery.

ARIES-lite for the simulated stack: :class:`WriteAheadLog` makes every
relation mutation durable *before* its data page is dirtied, the buffer
pool enforces the WAL rule against ``durable_lsn``, a
:class:`Checkpointer` periodically fuses the log into a snapshot, and
:func:`recover` rebuilds the committed prefix from any (possibly
crashed, possibly torn-tailed) disk image -- idempotently.
"""

from repro.wal.checkpoint import CHECKPOINT_FORMAT, Checkpointer, snapshot_relation
from repro.wal.log import (
    LOG_RECORD_SIZE,
    LogRecordKind,
    WriteAheadLog,
    frame_crc,
    frame_is_valid,
    make_frame,
)
from repro.wal.recovery import RecoveryReport, recover

__all__ = [
    "CHECKPOINT_FORMAT",
    "Checkpointer",
    "LOG_RECORD_SIZE",
    "LogRecordKind",
    "RecoveryReport",
    "WriteAheadLog",
    "frame_crc",
    "frame_is_valid",
    "make_frame",
    "recover",
    "snapshot_relation",
]
