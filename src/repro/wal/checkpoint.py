"""Checkpoints: fusing the log into a snapshot, then truncating it.

A checkpoint bounds recovery work.  Without one, recovery replays the
entire history; with one, it rebuilds the snapshot (reusing the
:mod:`repro.persistence` serialization) and replays only the log tail.

The commit protocol is ordered so a crash at *any* physical write leaves
a consistent view:

1. snapshot chunk pages are written through (orphans if we crash here);
2. one ``CHECKPOINT`` log record referencing them is appended durably;
3. the anchor is updated -- new (truncated) log chain + checkpoint
   pointer -- via the dual-anchor alternation, so even a torn anchor
   write falls back to the previous consistent anchor.

Only step 3 makes the checkpoint visible to recovery; until then the old
checkpoint (or none) is used and the full log tail is replayed instead.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Iterable

from repro.wal.log import LogRecordKind, WriteAheadLog, encode_tid

#: Snapshot format tag (mirrors the persistence module's convention).
CHECKPOINT_FORMAT = "repro-wal-checkpoint"


def snapshot_relation(relation: Any) -> dict:
    """One relation's checkpoint image: schema, rows *and their RIDs*.

    This is :func:`repro.persistence.relation_to_dict` extended with the
    physical identity recovery needs: the RID of every row (so replayed
    log records that reference pre-crash RIDs can be translated onto the
    rebuilt relation) and the clustered flag.
    """
    from repro.persistence import geometry_to_dict  # lazy: avoids cycle

    columns = [
        {"name": c.name, "type": c.type.value} for c in relation.schema.columns
    ]
    rows: list[list] = []
    rids: list[list[int]] = []
    for t in relation.scan():
        row = []
        for column, value in zip(relation.schema.columns, t.values):
            row.append(geometry_to_dict(value) if column.type.is_spatial else value)
        rows.append(row)
        rids.append(encode_tid(t.tid))
    return {
        "name": relation.name,
        "record_size": relation.record_size,
        "utilization": relation.utilization,
        "columns": columns,
        "rows": rows,
        "rids": rids,
        "clustered": relation.is_clustered,
        "indexed_columns": sorted(
            c for c in relation.schema.column_names if relation.has_index_on(c)
        ),
    }


class Checkpointer:
    """Periodic log-to-snapshot fusion for a set of durable relations.

    ``every_ops`` is the cadence: :meth:`maybe_checkpoint` fires once the
    WAL has accumulated that many data records since the last checkpoint.
    Call it after each mutation (the CLI crash demo does), or call
    :meth:`checkpoint` directly for an explicit fuse.
    """

    def __init__(
        self,
        wal: WriteAheadLog,
        relations: Iterable[Any],
        *,
        every_ops: int = 64,
    ) -> None:
        if every_ops < 1:
            raise ValueError(f"every_ops must be positive, got {every_ops}")
        self.wal = wal
        self.relations = list(relations)
        self.every_ops = every_ops
        self.checkpoints_taken = 0

    def track(self, relation: Any) -> None:
        """Include another relation in future checkpoints."""
        if all(r is not relation for r in self.relations):
            self.relations.append(relation)

    def maybe_checkpoint(self) -> int | None:
        """Checkpoint iff the cadence threshold is reached; returns LSN."""
        if self.wal.records_since_checkpoint >= self.every_ops:
            return self.checkpoint()
        return None

    def checkpoint(self) -> int:
        """Fuse log into snapshot, truncate, return the checkpoint LSN."""
        self.wal.sync()  # group mode: nothing may outrun the log
        payload = {
            "format": CHECKPOINT_FORMAT,
            "relations": {r.name: snapshot_relation(r) for r in self.relations},
        }
        text = json.dumps(payload)
        crc = zlib.crc32(text.encode("utf-8"))
        page_ids = self.wal.write_checkpoint_pages(text)
        lsn = self.wal.append(
            LogRecordKind.CHECKPOINT, {"pages": page_ids, "crc": crc}
        )
        self.wal.sync()  # the checkpoint record must be durable first
        self.wal.install_checkpoint(lsn, page_ids, crc)
        self.checkpoints_taken += 1
        return lsn
