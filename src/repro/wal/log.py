"""The write-ahead log: LSN-stamped, CRC32-framed records on disk.

ARIES-lite for the simulated storage stack.  Every mutation of a durable
relation appends one *frame* -- ``{lsn, kind, payload, crc}`` -- to a
dedicated log region: pages allocated on the **same** ``SimulatedDisk``
as the data, but written *through* (bypassing the buffer pool), so a log
record is durable the moment :meth:`WriteAheadLog.append` returns under
the default ``sync="always"`` policy.  Each physical log write is
charged as one ``log_write`` on the :class:`~repro.storage.costs.CostMeter`
-- the durability surcharge the cost model surfaces on U_I..U_III.

The log's own metadata (the chain of log pages, the latest checkpoint,
registered relation schemas) lives in a pair of alternating **anchor
pages** -- the classic dual-superblock trick: an anchor update that lands
torn at a crash leaves the *previous* anchor intact, so recovery can
always find a consistent view.

Frame integrity is end-to-end: the CRC covers ``(lsn, kind, payload)``,
so a torn tail -- a frame only partially persisted at the crash point --
is detected by :func:`repro.wal.recovery.recover` and truncated, never
replayed.
"""

from __future__ import annotations

import zlib
from enum import Enum
from typing import Any, Sequence

from repro.errors import TransientStorageError, WALError
from repro.storage.costs import CostMeter
from repro.storage.disk import SimulatedDisk
from repro.storage.page import Page
from repro.storage.record import RecordId

#: Declared bytes per log frame: with the Table 3 page size (2000) one
#: log page holds 20 frames -- the ``group`` sync policy's amortization.
LOG_RECORD_SIZE = 100

#: Declared bytes per checkpoint snapshot chunk.
CHECKPOINT_CHUNK_SIZE = 1500

#: Bounded retries for the WAL's own physical writes (transient faults).
WAL_WRITE_RETRIES = 5


class LogRecordKind(str, Enum):
    """What a log frame describes."""

    INSERT = "insert"
    DELETE = "delete"
    RECLUSTER = "recluster"
    ATTACH_INDEX = "attach-index"
    CHECKPOINT = "checkpoint"


def frame_crc(lsn: int, kind: str, payload: Any) -> int:
    """CRC32 over the frame content (everything but the crc itself)."""
    raw = repr((lsn, kind, payload)).encode("utf-8", errors="replace")
    return zlib.crc32(raw)


def make_frame(lsn: int, kind: str, payload: dict) -> dict:
    return {
        "lsn": lsn,
        "kind": kind,
        "payload": payload,
        "crc": frame_crc(lsn, kind, payload),
    }


def frame_is_valid(obj: Any) -> bool:
    """True iff ``obj`` is a wholly persisted, untampered log frame."""
    if not isinstance(obj, dict):
        return False
    try:
        lsn, kind, payload, crc = obj["lsn"], obj["kind"], obj["payload"], obj["crc"]
    except KeyError:
        return False
    if not isinstance(lsn, int):
        return False
    return crc == frame_crc(lsn, kind, payload)


def anchor_crc(version: int, log_pages: list, checkpoint: Any, relations: Any) -> int:
    raw = repr((version, log_pages, checkpoint, relations)).encode(
        "utf-8", errors="replace"
    )
    return zlib.crc32(raw)


def encode_tid(tid: RecordId) -> list[int]:
    return [tid.page_id, tid.slot]


def decode_tid(data: Sequence[int]) -> RecordId:
    return RecordId(int(data[0]), int(data[1]))


def encode_row(schema: Any, values: Sequence[Any]) -> list:
    """JSON-safe row encoding, reusing the persistence geometry codec."""
    from repro.persistence import geometry_to_dict  # lazy: avoids cycle

    return [
        geometry_to_dict(v) if col.type.is_spatial else v
        for col, v in zip(schema.columns, values)
    ]


def decode_row(schema: Any, row: Sequence[Any]) -> list:
    """Inverse of :func:`encode_row`."""
    from repro.persistence import geometry_from_dict  # lazy: avoids cycle

    return [
        geometry_from_dict(v) if col.type.is_spatial else v
        for col, v in zip(schema.columns, row)
    ]


class WriteAheadLog:
    """An append-only, CRC-framed log region on a simulated disk.

    ``sync`` policies:

    * ``"always"`` (default): every append physically writes the tail log
      page before returning -- one ``log_write`` per mutation, the
      no-surprises policy the crash-anywhere property assumes;
    * ``"group"``: frames buffer in the tail page and reach the disk when
      the page fills or :meth:`sync` is called -- amortized to
      ``1/frames_per_page`` writes per mutation, at the price that a
      crash loses the unsynced tail (still a clean *prefix*: the WAL rule
      keeps data pages from overtaking the log).

    ``durable_lsn`` is the watermark the buffer pool enforces the WAL
    rule against: no dirty data page with ``page_lsn > durable_lsn`` may
    be physically written.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        meter: CostMeter | None = None,
        *,
        sync: str = "always",
        start_lsn: int = 1,
    ) -> None:
        if sync not in ("always", "group"):
            raise WALError(f"unknown sync policy {sync!r}")
        if start_lsn < 1:
            raise WALError(f"start_lsn must be >= 1, got {start_lsn}")
        self.disk = disk
        self.meter = meter if meter is not None else CostMeter()
        self.sync_policy = sync
        self._next_lsn = start_lsn
        self.last_lsn = start_lsn - 1
        self.durable_lsn = start_lsn - 1
        self._log_pages: list[int] = []
        self._tail: Page | None = None
        self._checkpoint_meta: dict | None = None
        self._relation_meta: dict[str, dict] = {}
        self.records_since_checkpoint = 0
        # Metrics series, bound by attach_metrics(); None = unobserved.
        self._m_sync_batch = None
        self._m_log_writes = None
        self._m_checkpoint_pages = None
        # Dual anchors: updates alternate between the two pages, so a
        # torn anchor write can never destroy the only copy.
        self._anchors = [disk.allocate_page(), disk.allocate_page()]
        self._anchor_version = 0
        self._write_anchor()

    def attach_metrics(self, registry) -> None:
        """Publish WAL behavior into a metrics registry.

        ``wal.sync_batch_frames`` is the histogram of how many frames
        each physical tail flush made durable -- 1 under ``always``,
        up to frames-per-page under ``group`` (the amortization the
        sync policy buys, now visible instead of inferred).
        """
        self._m_sync_batch = registry.histogram(
            "wal.sync_batch_frames", buckets=(1, 2, 5, 10, 20, 50)
        )
        self._m_log_writes = registry.counter("wal.log_writes")
        self._m_checkpoint_pages = registry.counter("wal.checkpoint_pages")

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, kind: LogRecordKind, payload: dict) -> int:
        """Frame, stamp and store one record; returns its LSN.

        Under ``sync="always"`` the record is durable on return.
        """
        lsn = self._next_lsn
        tail = self._tail
        if tail is None or not tail.has_room_for(LOG_RECORD_SIZE):
            # Seal the old tail (making its frames durable first keeps
            # durability in LSN order), then chain a fresh log page and
            # publish it in the anchor before any frame lands on it.
            if tail is not None:
                self._flush_tail()
            tail = self.disk.allocate_page()
            self._tail = tail
            self._log_pages.append(tail.page_id)
            self._write_anchor()
        tail.insert(make_frame(lsn, kind.value, payload), LOG_RECORD_SIZE)
        self._next_lsn += 1
        self.last_lsn = lsn
        if kind is not LogRecordKind.CHECKPOINT:
            self.records_since_checkpoint += 1
        if self.sync_policy == "always":
            self._flush_tail()
        return lsn

    def sync(self) -> None:
        """Force every appended frame to disk (group-commit flush)."""
        if self._tail is not None and self.durable_lsn < self.last_lsn:
            self._flush_tail()

    # ------------------------------------------------------------------
    # Typed record constructors (what Relation mutations call)
    # ------------------------------------------------------------------

    def log_insert(self, relation: str, tid: RecordId, schema: Any,
                   values: Sequence[Any]) -> int:
        return self.append(
            LogRecordKind.INSERT,
            {"relation": relation, "tid": encode_tid(tid),
             "row": encode_row(schema, values)},
        )

    def log_delete(self, relation: str, tid: RecordId) -> int:
        return self.append(
            LogRecordKind.DELETE,
            {"relation": relation, "tid": encode_tid(tid)},
        )

    def log_recluster(
        self,
        relation: str,
        order: Sequence[RecordId],
        new_rids: Sequence[RecordId],
    ) -> int:
        """One atomic commit record for a whole recluster.

        Carries the old RIDs in clustering order *and* the new RIDs they
        became, so recovery can both replay the operation and keep
        translating later records that reference post-recluster ids.
        """
        return self.append(
            LogRecordKind.RECLUSTER,
            {
                "relation": relation,
                "order": [encode_tid(r) for r in order],
                "new_rids": [encode_tid(r) for r in new_rids],
            },
        )

    def log_attach_index(self, relation: str, column: str, index_type: str) -> int:
        return self.append(
            LogRecordKind.ATTACH_INDEX,
            {"relation": relation, "column": column, "index_type": index_type},
        )

    # ------------------------------------------------------------------
    # Relation registry (durable schema metadata)
    # ------------------------------------------------------------------

    def register_relation(self, relation: Any) -> None:
        """Record a relation's static metadata durably in the anchor.

        Recovery needs the schema even when the crash predates the first
        checkpoint; registering is itself a durable (anchor) write.
        """
        self._relation_meta[relation.name] = {
            "columns": [
                {"name": c.name, "type": c.type.value}
                for c in relation.schema.columns
            ],
            "record_size": relation.record_size,
            "utilization": relation.utilization,
        }
        self._write_anchor()

    # ------------------------------------------------------------------
    # Checkpoint support (driven by Checkpointer)
    # ------------------------------------------------------------------

    def write_checkpoint_pages(self, text: str) -> list[int]:
        """Persist a serialized snapshot into fresh chunk pages.

        Each page is written through immediately and charged as one
        ``checkpoint_page`` on the meter.
        """
        page_ids: list[int] = []
        chunk_size = min(CHECKPOINT_CHUNK_SIZE, self.disk.page_size)
        for start in range(0, max(len(text), 1), chunk_size):
            chunk = text[start:start + chunk_size]
            page = self.disk.allocate_page()
            page.insert(chunk, min(len(chunk) or 1, page.capacity))
            self._write_page(page)
            self.meter.record_checkpoint_page()
            if self._m_checkpoint_pages is not None:
                self._m_checkpoint_pages.inc()
            page_ids.append(page.page_id)
        return page_ids

    def install_checkpoint(self, lsn: int, page_ids: list[int], crc: int) -> None:
        """Publish a completed checkpoint and truncate replayed log.

        The checkpoint record (at ``lsn``) lives in the current tail
        page; every *earlier* log page is dropped from the chain -- its
        records are fused into the snapshot and will be skipped, not
        replayed.
        """
        self._checkpoint_meta = {"lsn": lsn, "pages": list(page_ids), "crc": crc}
        if self._tail is not None:
            self._log_pages = [self._tail.page_id]
        else:  # pragma: no cover - checkpoint always appends a record first
            self._log_pages = []
        self.records_since_checkpoint = 0
        self._write_anchor()

    @property
    def checkpoint_meta(self) -> dict | None:
        return dict(self._checkpoint_meta) if self._checkpoint_meta else None

    @property
    def log_page_ids(self) -> tuple[int, ...]:
        return tuple(self._log_pages)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _flush_tail(self) -> None:
        if self._tail is None:  # pragma: no cover - guarded by callers
            return
        self._write_page(self._tail)
        self.meter.record_log_write()
        if self._m_log_writes is not None:
            self._m_log_writes.inc()
            self._m_sync_batch.observe(self.last_lsn - self.durable_lsn)
        self.durable_lsn = self.last_lsn

    def _write_anchor(self) -> None:
        self._anchor_version += 1
        version = self._anchor_version
        log_pages = list(self._log_pages)
        checkpoint = dict(self._checkpoint_meta) if self._checkpoint_meta else None
        relations = {k: dict(v) for k, v in self._relation_meta.items()}
        payload = {
            "wal-anchor": True,
            "version": version,
            "log_pages": log_pages,
            "checkpoint": checkpoint,
            "relations": relations,
            "crc": anchor_crc(version, log_pages, checkpoint, relations),
        }
        target = self._anchors[version % 2]
        target.slots = [payload]
        target.slot_sizes = [LOG_RECORD_SIZE]
        target.used_bytes = LOG_RECORD_SIZE
        self._write_page(target)
        self.meter.record_log_write()
        if self._m_log_writes is not None:
            self._m_log_writes.inc()

    def _write_page(self, page: Page) -> None:
        """Write through with bounded retry on transient faults.

        Crash and permanent errors propagate -- a WAL cannot outlive its
        device.
        """
        backoff = 1
        for attempt in range(WAL_WRITE_RETRIES + 1):
            try:
                self.disk.write_page(page)
                return
            except TransientStorageError:
                if attempt == WAL_WRITE_RETRIES:
                    raise
                self.meter.record_retry(backoff)
                backoff *= 2
