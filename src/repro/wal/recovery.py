"""Crash recovery: rebuild committed state from anchor + snapshot + log.

``recover(disk)`` takes *any* disk image -- typically the frozen
``crash_image()`` of a :class:`~repro.faults.disk.FaultyDisk`, but a
cleanly shut-down disk works identically -- and returns the durable
relations plus a :class:`RecoveryReport` accounting for every log frame.

The invariants (pinned by ``tests/wal/``):

* **prefix semantics** -- the recovered state equals the state after
  some prefix of the *committed* operations (an operation commits when
  its log frame becomes durable);
* **torn-tail truncation** -- a frame that fails its CRC (or any frame
  after it) is truncated, never replayed;
* **idempotence** -- recovery ends with a fresh checkpoint fusing the
  replayed state, so recovering the recovered image replays zero
  records and yields the identical state.

Replay is LSN-gated: the rebuilt pages are stamped with the LSN of the
record that produced them, only frames beyond the checkpoint watermark
are applied, and application order is strictly monotone in LSN -- the
per-page watermark discipline of ARIES collapsed onto a single ordered
log scan.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import WALError
from repro.relational.relation import Relation
from repro.relational.schema import Column, ColumnType, Schema
from repro.storage.buffer import BufferPool
from repro.storage.costs import CostMeter
from repro.storage.disk import SimulatedDisk
from repro.storage.record import RecordId
from repro.wal.checkpoint import CHECKPOINT_FORMAT, Checkpointer
from repro.wal.log import (
    LogRecordKind,
    WriteAheadLog,
    decode_row,
    decode_tid,
    anchor_crc,
    frame_is_valid,
)


@dataclass(slots=True)
class RecoveryReport:
    """Full account of one recovery pass."""

    wal_found: bool = False
    checkpoint_lsn: int = 0
    last_lsn: int = 0
    records_replayed: int = 0
    records_skipped: int = 0
    records_truncated: int = 0
    torn_tail_detected: bool = False
    pages_repaired: int = 0
    relations: list[str] = field(default_factory=list)
    pending_indexes: list[tuple[str, str, str]] = field(default_factory=list)
    meter: CostMeter = field(default_factory=CostMeter)
    #: The recovered substrate, for callers that continue the workload.
    wal: WriteAheadLog | None = None
    buffer_pool: BufferPool | None = None

    def format(self) -> str:
        """Human-readable multi-line account (the CLI prints this)."""
        if not self.wal_found:
            return "recovery: no write-ahead log found on this disk image"
        lines = [
            "recovery report",
            f"  checkpoint LSN {self.checkpoint_lsn}, last LSN {self.last_lsn}",
            f"  records: {self.records_replayed} replayed, "
            f"{self.records_skipped} skipped, {self.records_truncated} truncated",
            f"  torn log tail detected: {'yes' if self.torn_tail_detected else 'no'}",
            f"  data pages repaired: {self.pages_repaired}",
            f"  relations recovered: {', '.join(self.relations) or '(none)'}",
        ]
        for rel, col, idx_type in self.pending_indexes:
            lines.append(
                f"  index pending rebuild: {rel}.{col} ({idx_type}) -- "
                "pass index_factories to recover() to rebuild"
            )
        return "\n".join(lines)


def _find_anchor(disk: SimulatedDisk, meter: CostMeter) -> dict | None:
    """Scan for the highest-versioned *valid* anchor (dual-superblock)."""
    best: dict | None = None
    for page_id in range(disk.num_pages):
        page = disk.read_page(page_id)
        meter.record_read()
        if not page.slots:
            continue
        obj = page.slots[0]
        if not (isinstance(obj, dict) and obj.get("wal-anchor") is True):
            continue
        try:
            ok = obj["crc"] == anchor_crc(
                obj["version"], obj["log_pages"], obj["checkpoint"],
                obj["relations"],
            )
        except (KeyError, TypeError):
            ok = False
        if ok and (best is None or obj["version"] > best["version"]):
            best = obj
    return best


def _read_frames(
    disk: SimulatedDisk, log_pages: list[int], meter: CostMeter
) -> tuple[list[dict], int, bool]:
    """All valid frames in chain order, plus (truncated count, torn flag).

    The log is append-only, so the first frame that fails validation (bad
    CRC, wrong shape, or a non-monotone LSN) marks the torn tail:
    everything from there on is truncated, never replayed.
    """
    frames: list[dict] = []
    truncated = 0
    torn = False
    last_lsn = 0
    for page_id in log_pages:
        if not 0 <= page_id < disk.num_pages:  # pragma: no cover - defensive
            continue
        page = disk.read_page(page_id)
        meter.record_read()
        for slot in page.slots:
            if slot is None:
                continue
            if torn:
                truncated += 1
                continue
            if not frame_is_valid(slot) or slot["lsn"] <= last_lsn:
                torn = True
                truncated += 1
                continue
            frames.append(slot)
            last_lsn = slot["lsn"]
    return frames, truncated, torn


def _load_checkpoint_payload(
    disk: SimulatedDisk, checkpoint: dict, meter: CostMeter
) -> dict:
    chunks: list[str] = []
    for page_id in checkpoint["pages"]:
        page = disk.read_page(page_id)
        meter.record_read()
        chunks.append(page.slots[0] if page.slots else "")
    text = "".join(chunks)
    if zlib.crc32(text.encode("utf-8")) != checkpoint["crc"]:
        # Cannot happen via the commit protocol (the anchor only ever
        # references fully persisted chunks); guard against hand-edited
        # images anyway.
        raise WALError("checkpoint snapshot failed its CRC check")
    payload = json.loads(text)
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise WALError("checkpoint snapshot has the wrong format tag")
    return payload


def _image_has_live_record(disk: SimulatedDisk, tid: RecordId) -> bool:
    """Did the mutation at ``tid`` survive in the durable image?

    Pure introspection for the ``pages_repaired`` accounting -- reads are
    not charged (a real recovery compares LSNs it already paged in).
    """
    if not 0 <= tid.page_id < disk.num_pages:
        return False
    page = disk.read_page(tid.page_id)
    return 0 <= tid.slot < len(page.slots) and page.slots[tid.slot] is not None


def _schema_from_columns(columns: list[dict]) -> Schema:
    return Schema([Column(c["name"], ColumnType(c["type"])) for c in columns])


def recover(
    disk: SimulatedDisk,
    *,
    memory_pages: int = 4000,
    meter: CostMeter | None = None,
    index_factories: dict[tuple[str, str], Callable[[], Any]] | None = None,
    plan: Any = None,
) -> tuple[dict[str, Relation], RecoveryReport]:
    """Rebuild committed relations from a (possibly crashed) disk image.

    Returns ``(relations, report)``.  The relations live on a *fresh*
    disk with a fresh write-ahead log (exposed as ``report.wal`` /
    ``report.buffer_pool``); recovery finishes with a checkpoint fusing
    the replayed state, so recovering the result again is a no-op.

    ``index_factories`` maps ``(relation, column)`` to a zero-argument
    index constructor; logged ``attach-index`` records with no factory
    are surfaced in ``report.pending_indexes`` instead of silently lost.
    Pass the originating :class:`~repro.faults.plan.FaultPlan` as
    ``plan`` to mark its crash event consumed by this recovery.
    """
    report_meter = meter if meter is not None else CostMeter()
    report = RecoveryReport(meter=report_meter)
    factories = index_factories or {}

    anchor = _find_anchor(disk, report_meter)
    if anchor is None:
        # Crash predates even the first anchor write: nothing was ever
        # durable, so the empty state *is* the committed prefix.
        if plan is not None:
            plan.mark_crash_recovered()
        return {}, report
    report.wal_found = True

    checkpoint = anchor.get("checkpoint")
    frames, truncated, torn = _read_frames(
        disk, anchor.get("log_pages", []), report_meter
    )
    report.records_truncated = truncated
    report.torn_tail_detected = torn
    checkpoint_lsn = checkpoint["lsn"] if checkpoint else 0
    max_lsn = max([checkpoint_lsn] + [f["lsn"] for f in frames])
    report.checkpoint_lsn = checkpoint_lsn
    report.last_lsn = max_lsn

    # Fresh durable substrate: recovered relations get their own disk,
    # pool and WAL; LSNs continue past the old log so page stamps stay
    # monotone across the crash.
    new_disk = SimulatedDisk(disk.page_size)
    pool = BufferPool(new_disk, memory_pages, report_meter)
    new_wal = WriteAheadLog(new_disk, report_meter, start_lsn=max_lsn + 1)
    pool.wal = new_wal

    relations: dict[str, Relation] = {}
    translation: dict[RecordId, RecordId] = {}

    def ensure_relation(name: str, columns: list[dict], record_size: int,
                        utilization: float) -> Relation:
        rel = relations.get(name)
        if rel is None:
            rel = Relation(
                name, _schema_from_columns(columns), pool,
                record_size=record_size, utilization=utilization,
                wal=new_wal,
            )
            relations[name] = rel
        return rel

    for name, meta in anchor.get("relations", {}).items():
        ensure_relation(
            name, meta["columns"], meta["record_size"], meta["utilization"]
        )

    # Phase 1: rebuild the checkpoint snapshot (rows with their RIDs).
    if checkpoint:
        payload = _load_checkpoint_payload(disk, checkpoint, report_meter)
        for name, snap in payload["relations"].items():
            rel = ensure_relation(
                name, snap["columns"], snap["record_size"], snap["utilization"]
            )
            for rid_data, row in zip(snap["rids"], snap["rows"]):
                t = rel.insert(decode_row(rel.schema, row))
                translation[decode_tid(rid_data)] = t.tid
            if snap.get("clustered"):
                # The rebuilt heap preserves the clustered row order; the
                # flag is restored so strategy selection stays correct.
                rel._clustered = True

    # Phase 2: replay the log tail in strict LSN order.
    repaired_pages: set[int] = set()
    applied_lsn = checkpoint_lsn
    for frame in frames:
        lsn = frame["lsn"]
        if lsn <= applied_lsn:
            report.records_skipped += 1
            continue
        kind = frame["kind"]
        p = frame["payload"]
        if kind == LogRecordKind.CHECKPOINT.value:
            # A checkpoint whose anchor publication did not survive the
            # crash: its snapshot is unreachable, the records it fused
            # are still in our chain, so it is skipped -- not replayed.
            report.records_skipped += 1
            applied_lsn = lsn
            continue
        rel = relations.get(p["relation"])
        if rel is None:  # pragma: no cover - registration precedes use
            report.records_skipped += 1
            continue
        if kind == LogRecordKind.INSERT.value:
            logged_tid = decode_tid(p["tid"])
            t = rel.insert(decode_row(rel.schema, p["row"]))
            translation[logged_tid] = t.tid
            if not _image_has_live_record(disk, logged_tid):
                repaired_pages.add(logged_tid.page_id)
        elif kind == LogRecordKind.DELETE.value:
            logged_tid = decode_tid(p["tid"])
            actual = translation.get(logged_tid)
            if actual is not None:
                rel.delete(actual)
            if _image_has_live_record(disk, logged_tid):
                repaired_pages.add(logged_tid.page_id)
        elif kind == LogRecordKind.RECLUSTER.value:
            order = [decode_tid(x) for x in p["order"]]
            new_logged = [decode_tid(x) for x in p["new_rids"]]
            new_map = rel.recluster([translation[r] for r in order])
            translation.update({
                nl: new_map[translation[ol]]
                for ol, nl in zip(order, new_logged)
            })
        elif kind == LogRecordKind.ATTACH_INDEX.value:
            key = (p["relation"], p["column"])
            factory = factories.get(key)
            if factory is not None:
                rel.attach_index(p["column"], factory(), backfill=True)
            else:
                report.pending_indexes.append(
                    (p["relation"], p["column"], p.get("index_type", "?"))
                )
        else:  # pragma: no cover - unknown kinds are future extensions
            report.records_skipped += 1
            continue
        report.records_replayed += 1
        applied_lsn = lsn

    report.pages_repaired = len(repaired_pages)
    report.relations = sorted(relations)
    report.wal = new_wal
    report.buffer_pool = pool

    # Fuse the replayed state so recovery is idempotent: a second pass
    # over the recovered image finds a checkpoint and an empty tail.
    Checkpointer(new_wal, relations.values()).checkpoint()

    # Replay rebuilt every relation from scratch, so epoch-keyed
    # consumers (query cache, join-index registry) must treat any
    # pre-crash snapshot as stale.  The rebuilt modification count could
    # coincidentally equal a pre-crash value (replay compresses the
    # mutation history); one extra bump past the replayed count makes
    # the recovered epoch unambiguous.
    for rel in relations.values():
        rel.bump_epoch()

    if plan is not None:
        plan.mark_crash_recovered()
    return relations, report
