"""Command-line interface: regenerate the paper's studies from a shell.

Usage::

    python -m repro figures                 # Figures 8-13 as tables
    python -m repro figures --figure 11     # one figure
    python -m repro updates                 # Section 4.2 update costs
    python -m repro crossovers              # exact crossover points
    python -m repro demo                    # measured strategy comparison
    python -m repro demo --fault-seed 7 --fault-rate 0.02
                                            # ... under injected storage faults

All output is plain text, suitable for diffing between runs.  With
``--fault-seed``/``--fault-rate`` the demo relations live on a
:class:`~repro.faults.disk.FaultyDisk`, every strategy runs through the
resilient executor (bounded retries + fallback chain), and the fault
audit -- injected vs. consumed, per-strategy retries and fallbacks -- is
appended to the table.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.costmodel.sensitivity import join_crossover
from repro.costmodel.sweep import join_study, log_space, selection_study, update_study

#: Figure number -> (study kind, distribution).
FIGURES = {
    8: ("select", "uniform"),
    9: ("select", "no-loc"),
    10: ("select", "hi-loc"),
    11: ("join", "uniform"),
    12: ("join", "no-loc"),
    13: ("join", "hi-loc"),
}


def _figure_table(number: int, points: int) -> str:
    kind, dist = FIGURES[number]
    if kind == "select":
        study = selection_study(dist, log_space(1e-6, 1.0, points))
    else:
        study = join_study(dist, log_space(1e-12, 1.0, points))
    return f"--- Figure {number} ---\n{study.format_table()}"


def cmd_figures(args: argparse.Namespace) -> str:
    numbers = [args.figure] if args.figure else sorted(FIGURES)
    return "\n\n".join(_figure_table(n, args.points) for n in numbers)


def cmd_updates(_args: argparse.Namespace) -> str:
    lines = ["update costs per insertion (Table 3 parameters)"]
    for name, value in update_study().items():
        lines.append(f"  {name:6s} = {value:16.1f}")
    return "\n".join(lines)


def cmd_crossovers(_args: argparse.Namespace) -> str:
    lines = ["exact D_III / D_IIb crossover selectivities (bisection)"]
    for dist in ("uniform", "no-loc", "hi-loc"):
        p = join_crossover(dist)
        lines.append(
            f"  {dist:8s}: p = {p:.3e}" if p is not None else f"  {dist:8s}: none"
        )
    return "\n".join(lines)


def cmd_demo(args: argparse.Namespace) -> str:
    from repro.core.comparison import StrategyComparison
    from repro.predicates.theta import Overlaps, WithinDistance
    from repro.workloads.assembly import build_indexed_relation

    faulted = args.fault_seed is not None or args.fault_rate > 0.0
    disk = None
    if faulted:
        from repro.faults import FaultPlan, FaultyDisk

        plan = FaultPlan(
            seed=args.fault_seed if args.fault_seed is not None else 0,
            read_rate=args.fault_rate,
            write_rate=args.fault_rate,
            torn_rate=args.fault_rate / 2,
        )
        disk = FaultyDisk(plan)

    ir_r = build_indexed_relation(args.size, seed=1, disk=disk)
    ir_s = build_indexed_relation(args.size, seed=2, disk=disk)
    # Fault runs use an overlaps join so the whole fallback chain
    # (partition -> tree -> zorder -> scan) is applicable.
    theta = Overlaps() if faulted else WithinDistance(30.0)
    report = StrategyComparison().compare_join(
        ir_r.relation, "shape", ir_s.relation, "shape", theta,
        resilient=faulted,
    )
    lines = [report.format_table()]
    if faulted:
        lines.append("")
        lines.append(
            "fault injection: seed={} rate={} -> {injected} injected, "
            "{consumed} consumed, {outstanding} outstanding".format(
                args.fault_seed, args.fault_rate, **disk.plan.summary()
            )
        )
        for strategy, exec_report in report.execution_reports.items():
            lines.append(
                f"  {strategy:<12} retries={exec_report.retries} "
                f"backoff={exec_report.backoff_steps} "
                f"fallbacks={exec_report.fallbacks} "
                f"ran={exec_report.strategy}"
            )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Efficient Computation of Spatial Joins' "
            "(Guenther, ICDE 1993)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="print Figures 8-13 as tables")
    figures.add_argument(
        "--figure", type=int, choices=sorted(FIGURES), default=None,
        help="print a single figure",
    )
    figures.add_argument(
        "--points", type=int, default=13, help="sweep points per figure"
    )
    figures.set_defaults(handler=cmd_figures)

    updates = sub.add_parser("updates", help="Section 4.2 update costs")
    updates.set_defaults(handler=cmd_updates)

    crossovers = sub.add_parser("crossovers", help="exact crossover points")
    crossovers.set_defaults(handler=cmd_crossovers)

    demo = sub.add_parser("demo", help="measured strategy comparison")
    demo.add_argument("--size", type=int, default=400, help="tuples per relation")
    demo.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed for deterministic storage-fault injection",
    )
    demo.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="per-access transient fault probability (0 disables injection)",
    )
    demo.set_defaults(handler=cmd_demo)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    print(args.handler(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
