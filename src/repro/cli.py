"""Command-line interface: regenerate the paper's studies from a shell.

Usage::

    python -m repro figures                 # Figures 8-13 as tables
    python -m repro figures --figure 11     # one figure
    python -m repro updates                 # Section 4.2 update costs
    python -m repro crossovers              # exact crossover points
    python -m repro demo                    # measured strategy comparison
    python -m repro demo --fault-seed 7 --fault-rate 0.02
                                            # ... under injected storage faults
    python -m repro trace --explain --drift # instrumented query + span tree
    python -m repro trace --trace-out t.jsonl --metrics
    python -m repro serve --port 7654       # multi-session query service
    python -m repro client --port 7654 --request '{"op":"relations"}'
    python -m repro shards --kill-at 3      # supervised fleet under chaos
    python -m repro obs --kill-at 2         # distributed-tracing dashboard

All output is plain text, suitable for diffing between runs.  With
``--fault-seed``/``--fault-rate`` the demo relations live on a
:class:`~repro.faults.disk.FaultyDisk`, every strategy runs through the
resilient executor (bounded retries + fallback chain), and the fault
audit -- injected vs. consumed, per-strategy retries and fallbacks -- is
appended to the table.
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.costmodel.sensitivity import join_crossover
from repro.costmodel.sweep import join_study, log_space, selection_study, update_study

#: Figure number -> (study kind, distribution).
FIGURES = {
    8: ("select", "uniform"),
    9: ("select", "no-loc"),
    10: ("select", "hi-loc"),
    11: ("join", "uniform"),
    12: ("join", "no-loc"),
    13: ("join", "hi-loc"),
}


def _figure_table(number: int, points: int) -> str:
    kind, dist = FIGURES[number]
    if kind == "select":
        study = selection_study(dist, log_space(1e-6, 1.0, points))
    else:
        study = join_study(dist, log_space(1e-12, 1.0, points))
    return f"--- Figure {number} ---\n{study.format_table()}"


def cmd_figures(args: argparse.Namespace) -> str:
    numbers = [args.figure] if args.figure else sorted(FIGURES)
    return "\n\n".join(_figure_table(n, args.points) for n in numbers)


def cmd_updates(args: argparse.Namespace) -> str:
    durable = getattr(args, "durable", False)
    lines = ["update costs per insertion (Table 3 parameters)"]
    baseline = update_study()
    if not durable:
        for name, value in baseline.items():
            lines.append(f"  {name:6s} = {value:16.1f}")
        return "\n".join(lines)
    durable_costs = update_study(
        durable=True, policy=args.policy, checkpoint_every=args.checkpoint_every
    )
    lines[0] += (
        f" -- durable: WAL sync={args.policy}, "
        f"checkpoint every {args.checkpoint_every} ops"
    )
    for name, value in baseline.items():
        lines.append(
            f"  {name:6s} = {value:16.1f}  "
            f"durable = {durable_costs[name]:16.1f}  "
            f"(+{durable_costs[name] - value:.1f})"
        )
    return "\n".join(lines)


def cmd_crossovers(_args: argparse.Namespace) -> str:
    lines = ["exact D_III / D_IIb crossover selectivities (bisection)"]
    for dist in ("uniform", "no-loc", "hi-loc"):
        p = join_crossover(dist)
        lines.append(
            f"  {dist:8s}: p = {p:.3e}" if p is not None else f"  {dist:8s}: none"
        )
    return "\n".join(lines)


def _crash_demo(args: argparse.Namespace) -> str:
    """Run a durable workload, crash it at a physical write, recover.

    Prints the fault plan audit, the :class:`~repro.wal.RecoveryReport`
    and a prefix-verification line: the recovered state must equal the
    state after some prefix of the committed operations.
    """
    from repro.errors import CrashError
    from repro.faults import FaultPlan, FaultyDisk
    from repro.relational.relation import Relation
    from repro.relational.schema import Column, ColumnType, Schema
    from repro.storage.buffer import BufferPool
    from repro.storage.costs import CostMeter
    from repro.wal import Checkpointer, WriteAheadLog, recover

    plan = FaultPlan(
        seed=args.fault_seed if args.fault_seed is not None else 0,
        crash_at_write=args.crash_at,
        crash_torn_tail=args.torn_tail,
    )
    disk = FaultyDisk(plan)
    meter = CostMeter()
    # States after each committed operation, oldest first -- the prefix
    # family the recovered state must be a member of.
    prefixes: list[tuple[int, ...]] = [()]
    live: list[int] = []
    try:
        pool = BufferPool(disk, 256, meter)
        wal = WriteAheadLog(disk, meter)
        pool.wal = wal
        schema = Schema([Column("oid", ColumnType.INT)])
        rel = Relation("objects", schema, pool, wal=wal)
        checkpointer = Checkpointer(wal, [rel], every_ops=16)
        tids = {}
        for i in range(args.size):
            tids[i] = rel.insert([i]).tid
            live.append(i)
            prefixes.append(tuple(sorted(live)))
            if i % 7 == 6:
                victim = live[len(live) // 2]
                rel.delete(tids[victim])
                live.remove(victim)
                prefixes.append(tuple(sorted(live)))
            checkpointer.maybe_checkpoint()
        pool.flush_all()
    except CrashError:
        pass

    lines = [
        "crash demo: {} inserts (1 delete per 7), crash scheduled at "
        "physical write {}{}".format(
            args.size, args.crash_at,
            " with torn tail" if args.torn_tail else "",
        ),
        "fault plan: {injected} injected, {consumed} consumed, "
        "{outstanding} outstanding".format(**plan.summary()),
    ]
    if not disk.crashed:
        lines.append(
            "workload finished before the scheduled write index -- "
            "no crash fired, nothing to recover"
        )
        return "\n".join(lines)

    relations, report = recover(disk.crash_image(), plan=plan)
    lines.append("")
    lines.append(report.format())
    recovered = (
        tuple(sorted(t["oid"] for t in relations["objects"].scan()))
        if "objects" in relations
        else ()
    )
    if recovered in prefixes:
        lines.append(
            f"recovered state = committed prefix of "
            f"{len(recovered)} live rows (out of {len(live)} at crash time)"
        )
    else:  # pragma: no cover - the crash-anywhere property forbids this
        lines.append("ERROR: recovered state is NOT a committed prefix")
    lines.append(
        "fault plan after recovery: {injected} injected, {consumed} "
        "consumed, {outstanding} outstanding".format(**plan.summary())
    )
    lines.append(
        f"durability cost: {meter.log_writes} log writes, "
        f"{meter.checkpoint_pages} checkpoint pages"
    )
    return "\n".join(lines)


def cmd_demo(args: argparse.Namespace) -> str:
    from repro.core.comparison import StrategyComparison
    from repro.predicates.theta import Overlaps, WithinDistance
    from repro.workloads.assembly import build_indexed_relation

    if args.crash_at is not None:
        return _crash_demo(args)

    faulted = args.fault_seed is not None or args.fault_rate > 0.0
    disk = None
    if faulted:
        from repro.faults import FaultPlan, FaultyDisk

        plan = FaultPlan(
            seed=args.fault_seed if args.fault_seed is not None else 0,
            read_rate=args.fault_rate,
            write_rate=args.fault_rate,
            torn_rate=args.fault_rate / 2,
        )
        disk = FaultyDisk(plan)

    ir_r = build_indexed_relation(args.size, seed=1, disk=disk)
    ir_s = build_indexed_relation(args.size, seed=2, disk=disk)
    # Fault runs use an overlaps join so the whole fallback chain
    # (partition -> tree -> zorder -> scan) is applicable.
    theta = Overlaps() if faulted else WithinDistance(30.0)
    report = StrategyComparison().compare_join(
        ir_r.relation, "shape", ir_s.relation, "shape", theta,
        resilient=faulted,
    )
    lines = [report.format_table()]
    if faulted:
        lines.append("")
        lines.append(
            "fault injection: seed={} rate={} -> {injected} injected, "
            "{consumed} consumed, {outstanding} outstanding".format(
                args.fault_seed, args.fault_rate, **disk.plan.summary()
            )
        )
        for strategy, exec_report in report.execution_reports.items():
            lines.append(
                f"  {strategy:<12} retries={exec_report.retries} "
                f"backoff={exec_report.backoff_steps} "
                f"fallbacks={exec_report.fallbacks} "
                f"ran={exec_report.strategy}"
            )
    return "\n".join(lines)


def cmd_trace(args: argparse.Namespace) -> str:
    """Run one seeded SELECT and one JOIN fully instrumented.

    Emits the span tree (``--explain``), the JSONL trace
    (``--trace-out``), the model-vs-measured drift verdict (``--drift``)
    and the metrics registry (``--metrics``).  With ``--cache`` the
    SELECT and the JOIN each run twice through a query cache -- the cold
    pass misses and is admitted, the warm pass reports its hit tier --
    and the cache summary is appended.  With ``--interval`` the join
    runs with the raster-interval second tier enabled and the interval
    counters (probes, sure hits, exact evals saved) are summarized.
    The footer verifies trace conservation: the exclusive per-span cost
    deltas must sum back to the query meter's totals.
    """
    from repro.core.executor import SpatialQueryExecutor
    from repro.geometry.rect import Rect
    from repro.obs import MetricsRegistry, Tracer, sum_cost_self
    from repro.predicates.theta import Overlaps
    from repro.storage.costs import CostMeter
    from repro.workloads.assembly import build_indexed_relation

    tracer = Tracer()
    metrics = MetricsRegistry()
    cache = None
    if args.cache:
        from repro.cache import QueryCache

        cache = QueryCache(byte_budget=args.cache_budget)
    ir_r = build_indexed_relation(args.size, seed=args.seed)
    ir_s = build_indexed_relation(args.size, seed=args.seed + 1)
    executor = SpatialQueryExecutor(
        tracer=tracer, metrics=metrics, cache=cache,
        interval=True if args.interval else None,
    )
    theta = Overlaps()
    meter = CostMeter()

    query = Rect(100.0, 100.0, 400.0, 420.0)
    selected = executor.select(
        ir_r.relation, "shape", query, theta, strategy="tree", meter=meter
    )

    plan = None
    if args.drift:
        from repro.core.optimizer import plan_join

        plan = plan_join(
            ir_r.relation, "shape", ir_s.relation, "shape", theta,
            memory_pages=executor.memory_pages, workers=executor.workers,
            cache=cache,
        )
    result, report = executor.execute_join(
        ir_r.relation, "shape", ir_s.relation, "shape", theta,
        strategy=args.strategy, meter=meter, plan=plan,
    )

    lines = [
        f"traced workload: {args.size} tuples/relation, seed {args.seed}",
        f"SELECT {query} overlaps -> {len(selected.matches)} matches",
        f"JOIN ({report.strategy}) -> {len(result.pairs)} pairs",
    ]
    if args.interval:
        stats = meter.snapshot()
        lines.append(
            f"interval filter: {int(stats['interval_probes'])} probes, "
            f"{int(stats['interval_sure_hits'])} sure hits, "
            f"{int(stats['interval_evals_saved'])} exact evals saved"
        )
    if cache is not None:
        warm_select = executor.select(
            ir_r.relation, "shape", query, theta, strategy="tree", meter=meter
        )
        select_tier = (
            warm_select.strategy[len("cached-"):]
            if warm_select.strategy.startswith("cached-")
            else "miss"
        )
        warm_result, warm_report = executor.execute_join(
            ir_r.relation, "shape", ir_s.relation, "shape", theta,
            strategy=args.strategy, meter=meter, plan=plan,
        )
        lines.append(
            f"warm SELECT -> {len(warm_select.matches)} matches "
            f"(cache: {select_tier} hit)"
        )
        lines.append(
            f"warm JOIN -> {len(warm_result.pairs)} pairs "
            f"(cache: {warm_report.cached or 'miss'}"
            f"{' hit' if warm_report.cached else ''})"
        )
        lines.append(cache.describe())
    if args.explain:
        lines.append("")
        lines.append(tracer.render_tree())
    if args.drift:
        lines.append("")
        lines.append(report.drift.format())
    if args.metrics:
        lines.append("")
        lines.append(metrics.render())
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as out:
            count = tracer.export_jsonl(out)
        lines.append(f"wrote {count} spans to {args.trace_out}")

    # Trace conservation: exclusive span deltas must sum to the meter.
    reconstructed = sum_cost_self(tracer.to_records())
    expected = meter.snapshot()
    drifted_keys = [
        k for k, v in expected.items()
        if abs(reconstructed.get(k, 0.0) - v) > 1e-6
    ]
    if drifted_keys:  # pragma: no cover - conservation is pinned by tests
        lines.append(f"WARNING: trace does not account for {drifted_keys}")
    else:
        lines.append(
            f"trace accounts for all {expected['total']:.0f} metered cost "
            f"units across {len(tracer.spans)} spans"
        )
    return "\n".join(lines)


def _build_service(size: int, cache_budget: int, config=None):
    """A QueryService over two freshly built demo relations ``r`` and ``s``."""
    from repro.cache import QueryCache
    from repro.server import QueryService, StateManager
    from repro.workloads.assembly import build_indexed_relation

    state = StateManager()
    for name, seed in (("r", 1), ("s", 2)):
        ir = build_indexed_relation(size, seed=seed)
        ir.relation.name = name
        state.register(ir.relation)
    return QueryService(
        state, cache=QueryCache(byte_budget=cache_budget), config=config
    )


def cmd_serve(args: argparse.Namespace) -> str:
    """Serve the demo relations over TCP until interrupted."""
    from repro.server import QueryServer, ServiceConfig

    service = _build_service(
        args.size, args.cache_budget,
        ServiceConfig(
            max_inflight=args.max_inflight,
            session_budget=args.session_budget,
        ),
    )
    server = QueryServer(
        service, host=args.host, port=args.port,
        drain_timeout=args.drain_timeout,
    ).start()
    print(
        f"query service on {server.host}:{server.port} "
        f"(relations: {', '.join(service.state.names())}; "
        f"max_inflight={args.max_inflight}; "
        f"drain_timeout={args.drain_timeout:g}s) -- Ctrl-C to stop"
    )
    try:
        import time

        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        # Graceful drain: in-flight queries get drain_timeout to finish
        # (new requests are refused with a retryable ShuttingDown);
        # stragglers are cancelled through their tokens.
        print("draining ...")
    finally:
        server.stop()
    snap = service.metrics.snapshot()
    queries = sum(
        s["value"] for s in snap.get("server.queries", [])
    )
    return f"served {queries} queries; bye"


def cmd_client(args: argparse.Namespace) -> str:
    """Send one request line (or a ping) to a running server."""
    import json

    from repro.server import QueryClient, RetryPolicy

    if args.request:
        request = json.loads(args.request)
    else:
        request = {"op": "ping"}
    if args.deadline_ms is not None:
        request.setdefault("deadline_ms", args.deadline_ms)
    retry = None
    if args.retries > 0:
        retry = RetryPolicy(
            max_attempts=args.retries + 1, seed=args.retry_seed
        )
    with QueryClient(args.host, args.port, retry=retry) as client:
        payload = client.request(**request)
        attempts = client.last_attempts
    text = json.dumps(payload, indent=2, sort_keys=True, default=str)
    if attempts > 1:
        text += f"\n(succeeded on attempt {attempts})"
    return text


def cmd_shards(args: argparse.Namespace) -> str:
    """Shard-runtime demo: distributed join vs. the unsharded oracle.

    Loads the demo relations into a standing shard fleet, optionally
    schedules seeded shard kills at exact dispatch boundaries, runs a
    distributed join and select, and verifies both against the
    single-process engine -- then prints the fleet status and the fault
    audit, so a kill that was absorbed is visibly consumed.
    """
    from repro.core.executor import SpatialQueryExecutor
    from repro.faults.plan import FaultPlan
    from repro.geometry.rect import Rect
    from repro.predicates.theta import Overlaps
    from repro.shard import ShardRuntime
    from repro.workloads.assembly import build_indexed_relation

    plan = None
    if args.kill_at:
        schedule = {}
        for spec in args.kill_at:
            index, _, shard = spec.partition(":")
            schedule[int(index)] = int(shard) if shard else -1
        plan = FaultPlan(args.fault_seed, kill_shard_at=schedule)

    relations = {}
    for name, seed in (("r", 1), ("s", 2)):
        ir = build_indexed_relation(args.size, seed=seed)
        ir.relation.name = name
        relations[name] = ir
    universe = relations["r"].universe
    theta = Overlaps()
    window = Rect(100.0, 100.0, 400.0, 400.0)

    executor = SpatialQueryExecutor()
    oracle_join = sorted(executor.join(
        relations["r"].relation, "shape",
        relations["s"].relation, "shape", theta, strategy="scan",
    ).pairs)
    oracle_select = sorted(executor.select(
        relations["r"].relation, "shape", window, theta,
        strategy="scan",
    ).tids)

    lines = []
    with ShardRuntime(
        universe, args.shards, bits=args.bits,
        processes=args.processes, fault_plan=plan,
    ) as runtime:
        for name, ir in relations.items():
            runtime.load_relation(ir.relation, "shape")
        join_result = runtime.router.join("r", "s", theta)
        select_result = runtime.router.select(
            "r", window, theta, with_payloads=False
        )
        status = runtime.status()

    join_ok = join_result.pairs == oracle_join
    select_ok = [t for t, _ in select_result.matches] == oracle_select
    lines.append(
        f"shard fleet: {status['n_shards']} shards over "
        f"{1 << status['bits']}x{1 << status['bits']} z-cells "
        f"({'processes' if status['processes'] else 'inline'}"
        f"{', degraded: ' + status['degrade_reason'] if status['degrade_reason'] else ''})"
    )
    lines.append(
        f"{'shard':>5} {'z-range':>13} {'gen':>4} {'restarts':>8} "
        f"{'dispatches':>10} {'rows':>6} {'mode':>8} {'alive':>5}"
    )
    for s in status["shards"]:
        lo, hi = s["zrange"]
        lines.append(
            f"{s['shard']:>5} {f'[{lo},{hi}]':>13} {s['generation']:>4} "
            f"{s['restarts']:>8} {s['dispatches']:>10} {s['rows']:>6} "
            f"{s['mode']:>8} {str(s['alive']):>5}"
        )
    lines.append(
        f"join: {len(join_result.pairs)} pairs via {join_result.strategy} "
        f"-- {'identical to unsharded oracle' if join_ok else 'MISMATCH'}"
    )
    lines.append(
        f"select: {len(select_result.matches)} matches via "
        f"{select_result.strategy} -- "
        f"{'identical to unsharded oracle' if select_ok else 'MISMATCH'}"
    )
    if plan is not None:
        lines.append(
            f"fault audit: {plan.summary()['injected']} injected, "
            f"{plan.summary()['consumed']} consumed"
        )
        lines.extend(f"  {event}" for event in plan.describe_events())
    return "\n".join(lines)


def cmd_obs(args: argparse.Namespace) -> str:
    """End-to-end observability dashboard over a sharded query service.

    Builds a query service fronting a standing shard fleet, runs traced
    distributed reads through a session (optionally killing shards at
    exact dispatch boundaries), and renders what the observability stack
    saw: the hottest spans of the grafted distributed trace, the per-op
    SLO latency table, the flight recorder's incident tail, the
    model-drift verdict for the sharded join, and the cross-process
    cost-conservation footer (exclusive span deltas vs. the roots'
    inclusive totals).
    """
    from repro.core.executor import SpatialQueryExecutor
    from repro.core.optimizer import plan_join
    from repro.faults.plan import FaultPlan
    from repro.geometry.rect import Rect
    from repro.obs import sum_cost_self
    from repro.obs.drift import drift_from_plan
    from repro.predicates.theta import Overlaps
    from repro.server import QueryService
    from repro.shard import ShardRuntime
    from repro.workloads.assembly import build_indexed_relation

    plan = None
    if args.kill_at:
        schedule = {}
        for spec in args.kill_at:
            index, _, shard = spec.partition(":")
            schedule[int(index)] = int(shard) if shard else -1
        plan = FaultPlan(args.fault_seed, kill_shard_at=schedule)

    relations = {}
    for name, seed in (("r", 1), ("s", 2)):
        ir = build_indexed_relation(args.size, seed=seed)
        ir.relation.name = name
        relations[name] = ir
    universe = relations["r"].universe
    theta = Overlaps()
    window = Rect(100.0, 100.0, 400.0, 400.0)

    oracle_pairs = sorted(SpatialQueryExecutor().join(
        relations["r"].relation, "shape",
        relations["s"].relation, "shape", theta, strategy="scan",
    ).pairs)
    # The Section-4 prediction for the sharded join: D_PAR at one worker
    # per shard (the reference-point rule keeps total work invariant
    # under the split, so the formula prices the merged meter).
    join_plan = plan_join(
        relations["r"].relation, "shape",
        relations["s"].relation, "shape", theta, workers=args.shards,
    )

    service = QueryService()
    lines = []
    try:
        with ShardRuntime(
            universe, args.shards, bits=args.bits, fault_plan=plan,
        ) as runtime:
            service.attach_shards(runtime)
            for ir in relations.values():
                runtime.load_relation(ir.relation, "shape")
            with service.open_session("obs") as session:
                join_result = session.shard_join("r", "s", theta)
                select_result = session.shard_select("r", window, theta)
                records = session.tracer.to_records()
            stats = service.stats()
            status = runtime.status()
    finally:
        service.close()

    join_ok = join_result.pairs == oracle_pairs
    lines.append(
        f"observability dashboard: {status['n_shards']} shards, "
        f"{args.size} tuples/relation"
        + (f", {len(plan.kill_shard_at)} scheduled kill(s)"
           if plan is not None else "")
    )
    lines.append(
        f"join: {len(join_result.pairs)} pairs via {join_result.strategy} "
        f"-- {'identical to unsharded oracle' if join_ok else 'MISMATCH'}"
    )
    lines.append(
        f"select: {len(select_result.matches)} matches via "
        f"{select_result.strategy}"
    )

    lines.append("")
    lines.append(f"top spans by exclusive cost (of {len(records)} total):")
    ranked = sorted(
        records,
        key=lambda r: r["cost_self"].get("total", 0.0),
        reverse=True,
    )[:args.top]
    for r in ranked:
        lines.append(
            f"  {r['uid']:>12}  {r['name']:<22} "
            f"cost_self={r['cost_self'].get('total', 0.0):>10.0f}  "
            f"cost={r['cost'].get('total', 0.0):>10.0f}"
        )

    lines.append("")
    lines.append("SLO: server.latency_seconds percentiles per (op, outcome)")
    lines.append(
        f"  {'op':<14} {'outcome':<10} {'count':>5} "
        f"{'p50':>10} {'p95':>10} {'p99':>10}"
    )

    def _ms(value) -> str:
        return f"{value * 1e3:8.2f}ms" if value is not None else f"{'-':>10}"

    for row in stats["slo"]:
        lines.append(
            f"  {row['op']:<14} {row['outcome']:<10} {row['count']:>5} "
            f"{_ms(row['p50'])} {_ms(row['p95'])} {_ms(row['p99'])}"
        )

    lines.append("")
    flight = stats["flight"]
    lines.append(
        f"flight recorder: {flight['recorded']} recorded, "
        f"{flight['dropped']} dropped"
    )
    if flight["events"]:
        for event in flight["events"]:
            fields = " ".join(
                f"{k}={v}" for k, v in sorted(event["fields"].items())
            )
            lines.append(
                f"  #{event['id']} {event['kind']}"
                + (f" {fields}" if fields else "")
            )
    else:
        lines.append("  (no incidents)")

    measured = next(
        (r["cost"].get("total", 0.0) for r in records
         if r["name"] == "session.shard_join"),
        0.0,
    )
    lines.append("")
    lines.append(drift_from_plan(
        join_plan, join_result.strategy, measured,
        query=f"sharded join r x s ({join_result.strategy})",
    ).format())

    # Cross-process conservation: every exclusive span delta -- session
    # spans and grafted worker spans alike -- must sum back to the root
    # spans' inclusive totals.  Nothing leaks, nothing double-counts.
    total_self = sum_cost_self(records)["total"]
    root_total = sum(
        r["cost"].get("total", 0.0)
        for r in records if r["parent_id"] is None
    )
    lines.append("")
    if abs(total_self - root_total) > 1e-6:  # pragma: no cover - pinned
        lines.append(
            f"WARNING: conservation violated "
            f"(self={total_self:.0f} != roots={root_total:.0f})"
        )
    else:
        lines.append(
            f"conservation: {total_self:.0f} exclusive cost units across "
            f"{len(records)} spans == the grafted trees' inclusive totals"
        )
    if args.trace_out:
        import json

        with open(args.trace_out, "w", encoding="utf-8") as out:
            count = 0
            for record in records:
                out.write(json.dumps(record, sort_keys=True) + "\n")
                count += 1
        lines.append(f"wrote {count} spans to {args.trace_out}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Efficient Computation of Spatial Joins' "
            "(Guenther, ICDE 1993)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="print Figures 8-13 as tables")
    figures.add_argument(
        "--figure", type=int, choices=sorted(FIGURES), default=None,
        help="print a single figure",
    )
    figures.add_argument(
        "--points", type=int, default=13, help="sweep points per figure"
    )
    figures.set_defaults(handler=cmd_figures)

    updates = sub.add_parser("updates", help="Section 4.2 update costs")
    updates.add_argument(
        "--durable", action="store_true",
        help="also show costs with the write-ahead-logging surcharge",
    )
    updates.add_argument(
        "--policy", choices=("always", "group"), default="always",
        help="WAL sync policy for the durable column",
    )
    updates.add_argument(
        "--checkpoint-every", type=int, default=64,
        help="checkpoint cadence (operations) for the durable column",
    )
    updates.set_defaults(handler=cmd_updates)

    crossovers = sub.add_parser("crossovers", help="exact crossover points")
    crossovers.set_defaults(handler=cmd_crossovers)

    demo = sub.add_parser("demo", help="measured strategy comparison")
    demo.add_argument("--size", type=int, default=400, help="tuples per relation")
    demo.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed for deterministic storage-fault injection",
    )
    demo.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="per-access transient fault probability (0 disables injection)",
    )
    demo.add_argument(
        "--crash-at", type=int, default=None,
        help="run a durable workload and crash the disk at this physical "
        "write index, then recover and verify the committed prefix",
    )
    demo.add_argument(
        "--torn-tail", action="store_true",
        help="with --crash-at: land the in-flight write torn (partial frame)",
    )
    demo.set_defaults(handler=cmd_demo)

    trace = sub.add_parser(
        "trace", help="run an instrumented query and inspect its spans"
    )
    trace.add_argument("--size", type=int, default=300, help="tuples per relation")
    trace.add_argument("--seed", type=int, default=11, help="workload seed")
    trace.add_argument(
        "--strategy", default="auto",
        choices=("auto", "scan", "tree", "zorder", "partition", "index-nl"),
        help="join strategy to trace (default: optimizer's pick)",
    )
    trace.add_argument(
        "--trace-out", default=None, metavar="FILE.jsonl",
        help="write the span records as JSON Lines to this file",
    )
    trace.add_argument(
        "--explain", action="store_true",
        help="print the span tree with per-span cost deltas",
    )
    trace.add_argument(
        "--drift", action="store_true",
        help="plan with the Section 4 formulas and report model drift",
    )
    trace.add_argument(
        "--metrics", action="store_true",
        help="print the metrics registry after the run",
    )
    trace.add_argument(
        "--cache", action="store_true",
        help="run each query twice through a query-result cache and "
        "report the warm pass's hit tier",
    )
    trace.add_argument(
        "--cache-budget", type=int, default=8 * 1024 * 1024,
        metavar="BYTES", help="query-cache byte budget (with --cache)",
    )
    trace.add_argument(
        "--interval", action="store_true",
        help="enable the raster-interval second-tier filter on the join "
        "and report how many exact evaluations it saved",
    )
    trace.set_defaults(handler=cmd_trace)

    serve = sub.add_parser(
        "serve", help="serve demo relations over the TCP line protocol"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    serve.add_argument("--size", type=int, default=300, help="tuples per relation")
    serve.add_argument(
        "--max-inflight", type=int, default=8,
        help="admission control: max queries executing at once",
    )
    serve.add_argument(
        "--session-budget", type=int, default=None,
        help="max queries per session (default: unbounded)",
    )
    serve.add_argument(
        "--cache-budget", type=int, default=8 * 1024 * 1024,
        metavar="BYTES", help="shared query-cache byte budget",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECONDS",
        help="on shutdown, grace period for in-flight queries before "
        "they are cancelled through their tokens",
    )
    serve.set_defaults(handler=cmd_serve)

    client = sub.add_parser(
        "client", help="send one protocol request to a running server"
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, required=True)
    client.add_argument(
        "--request", default=None, metavar="JSON",
        help="request object, e.g. "
        "'{\"op\":\"select\",\"relation\":\"r\",\"column\":\"shape\","
        "\"rect\":[0,0,100,100],\"theta\":\"overlaps\"}' (default: ping)",
    )
    client.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="attach a deadline to the request (server cancels past it)",
    )
    client.add_argument(
        "--retries", type=int, default=0,
        help="retry retryable failures (busy/conflict/shutting-down) "
        "up to this many times with exponential backoff",
    )
    client.add_argument(
        "--retry-seed", type=int, default=0,
        help="seed for the deterministic retry jitter",
    )
    client.set_defaults(handler=cmd_client)

    shards = sub.add_parser(
        "shards", help="supervised shard fleet demo with optional chaos"
    )
    shards.add_argument(
        "--shards", type=int, default=4, dest="shards",
        help="number of standing shard workers",
    )
    shards.add_argument(
        "--size", type=int, default=200, help="tuples per relation"
    )
    shards.add_argument(
        "--bits", type=int, default=4,
        help="z-order resolution bits per axis for the key space",
    )
    shards.add_argument(
        "--processes", action="store_true",
        help="run shards as real worker processes (default: inline)",
    )
    shards.add_argument(
        "--kill-at", action="append", default=None, metavar="INDEX[:SHARD]",
        help="kill a shard at this dispatch index (repeatable); "
        "omit :SHARD to kill whichever shard is being dispatched to",
    )
    shards.add_argument(
        "--fault-seed", type=int, default=7,
        help="seed for the deterministic fault plan (with --kill-at)",
    )
    shards.set_defaults(handler=cmd_shards)

    obs = sub.add_parser(
        "obs", help="distributed-observability dashboard over a shard fleet"
    )
    obs.add_argument(
        "--shards", type=int, default=4,
        help="number of standing shard workers",
    )
    obs.add_argument(
        "--size", type=int, default=200, help="tuples per relation"
    )
    obs.add_argument(
        "--bits", type=int, default=4,
        help="z-order resolution bits per axis for the key space",
    )
    obs.add_argument(
        "--top", type=int, default=8,
        help="how many spans to show in the hot-span table",
    )
    obs.add_argument(
        "--kill-at", action="append", default=None, metavar="INDEX[:SHARD]",
        help="kill a shard at this dispatch index (repeatable); "
        "omit :SHARD to kill whichever shard is being dispatched to",
    )
    obs.add_argument(
        "--fault-seed", type=int, default=7,
        help="seed for the deterministic fault plan (with --kill-at)",
    )
    obs.add_argument(
        "--trace-out", default=None, metavar="FILE.jsonl",
        help="write the grafted distributed trace as JSON Lines",
    )
    obs.set_defaults(handler=cmd_obs)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    print(args.handler(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
