"""Adaptive query-result cache with epoch invalidation.

Public surface:

* :class:`~repro.cache.cache.QueryCache` -- the three-tier cache
  (exact / containment / miss), wired into
  :class:`~repro.core.executor.SpatialQueryExecutor` via its ``cache=``
  parameter;
* :class:`~repro.cache.policy.CachePolicy` -- cost-model-aware
  admission plus LRU-by-predicted-cost eviction under a byte budget;
* :func:`~repro.cache.keys.geometry_fingerprint` and the operator
  monotonicity predicates backing the containment tier.
"""

from repro.cache.cache import CacheStats, QueryCache
from repro.cache.keys import (
    exact_monotone,
    geometry_fingerprint,
    theta_cache_key,
    window_monotone,
)
from repro.cache.policy import (
    DEFAULT_ADMISSION_THRESHOLD,
    DEFAULT_BYTE_BUDGET,
    CachePolicy,
)

__all__ = [
    "CachePolicy",
    "CacheStats",
    "DEFAULT_ADMISSION_THRESHOLD",
    "DEFAULT_BYTE_BUDGET",
    "QueryCache",
    "exact_monotone",
    "geometry_fingerprint",
    "theta_cache_key",
    "window_monotone",
]
