"""The adaptive query-result and Theta-filter cache.

Motivation (ROADMAP north star + Section 4): under HI-LOC workloads the
same hot windows and join pairs are queried over and over, yet every
``executor.select``/``executor.join`` re-traverses the generalization
tree from the root.  The cache short-circuits that repetition in three
tiers:

* **exact hit** -- the same query (relation identity, predicate,
  geometry fingerprint) at the same modification epoch: the stored
  result is served verbatim at zero page reads;
* **containment hit** -- a cached SELECT for window ``W`` answers any
  ``W' subset-of W`` by refining the stored Theta-filter candidate set
  (or, for exact-monotone operators, the stored matches) with the exact
  predicate -- justified by the Table 1 filter contract:
  ``Theta-hits(W)`` is a superset of ``Theta-hits(W')``;
* **miss** -- the query executes normally and is admitted under the
  cost-model-aware policy of :mod:`repro.cache.policy`.

Invalidation is *epoch-based*, reusing the PR-1 join-index registry
scheme: every entry captures the operand relations' monotonic
``modification_count`` at admission, and any insert, delete, recluster
or WAL-recovery replay bumps that counter -- stale entries are dropped
on the next probe (and by :meth:`QueryCache.purge_stale`), never
served.  Entries are keyed on :attr:`~repro.relational.relation.Relation.uid`
-- a stable, never-recycled instance id -- and hold their relations by
*weak* reference: dropping a relation releases its cached results (and
their geometry payloads) instead of pinning them forever, and a
same-named reload gets a fresh uid so it can never be served another
relation's answers.

The cache is safe to share across threads: one re-entrant lock guards
every probe, admission, eviction and sweep, which is what lets the
multi-session query service of :mod:`repro.server` keep a single cache
hot for all concurrent clients.

Symmetric operators are orientation-normalized: ``R join S`` and
``S join R`` under a symmetric theta share one entry, with the pair
order swapped on the way out.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from typing import Any

from repro.cache.keys import (
    exact_monotone,
    geometry_fingerprint,
    theta_cache_key,
    window_monotone,
)
from repro.cache.policy import (
    CachePolicy,
    estimate_join_bytes,
    estimate_select_bytes,
)
from repro.geometry.rect import Rect
from repro.join.result import JoinResult, SelectResult
from repro.predicates.theta import ThetaOperator
from repro.relational.relation import Relation
from repro.storage.costs import CostMeter


@dataclass(slots=True)
class CacheStats:
    """Lifetime event counters of one cache instance."""

    probes: int = 0
    exact_hits: int = 0
    containment_hits: int = 0
    misses: int = 0
    admissions: int = 0
    rejections: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hits(self) -> int:
        return self.exact_hits + self.containment_hits

    @property
    def hit_ratio(self) -> float:
        """Observed hit probability over all probes so far (0 when idle)."""
        return self.hits / self.probes if self.probes else 0.0

    def snapshot(self) -> dict[str, int]:
        return {
            "probes": self.probes,
            "exact_hits": self.exact_hits,
            "containment_hits": self.containment_hits,
            "misses": self.misses,
            "admissions": self.admissions,
            "rejections": self.rejections,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


@dataclass(slots=True)
class _SelectEntry:
    """One cached spatial selection.

    ``relation_ref`` is a weak reference: the entry must never keep its
    relation alive (a dropped relation would otherwise be pinned by its
    own cached answers, forever, keyed under an id that can recycle).
    """

    relation_ref: weakref.ref
    column: str
    epoch: int
    theta: ThetaOperator
    query: Any
    strategy: str
    order: str
    matches: list[tuple[Any, Any]]
    candidates: list[tuple[Any, Any, Any]] | None
    refinable_matches: bool
    predicted_cost: float
    nbytes: int
    tick: int = 0

    def fresh(self) -> bool:
        rel = self.relation_ref()
        return rel is not None and rel.modification_count == self.epoch


@dataclass(slots=True)
class _JoinEntry:
    """One cached spatial join, stored in canonical orientation."""

    rel_r_ref: weakref.ref
    rel_s_ref: weakref.ref
    epoch_r: int
    epoch_s: int
    theta: ThetaOperator
    pairs: list[tuple[Any, Any]]
    tuples: list[tuple[Any, Any]] | None
    predicted_cost: float
    nbytes: int
    tick: int = 0

    def fresh(self) -> bool:
        rel_r = self.rel_r_ref()
        rel_s = self.rel_s_ref()
        return (
            rel_r is not None
            and rel_s is not None
            and rel_r.modification_count == self.epoch_r
            and rel_s.modification_count == self.epoch_s
        )


class QueryCache:
    """Epoch-invalidated result cache for selections and joins.

    ``policy`` bounds admission and memory (see
    :class:`~repro.cache.policy.CachePolicy`); the keyword shortcuts
    construct one.  ``attach_metrics`` publishes hit/miss/eviction/
    invalidation counters and byte/entry gauges into a
    :class:`~repro.obs.metrics.MetricsRegistry`.

    All public methods are thread-safe; a single instance may be shared
    by every session of a concurrent query service.
    """

    def __init__(
        self,
        policy: CachePolicy | None = None,
        *,
        byte_budget: int | None = None,
        admission_threshold: float | None = None,
    ) -> None:
        if policy is None:
            kwargs: dict[str, Any] = {}
            if byte_budget is not None:
                kwargs["byte_budget"] = byte_budget
            if admission_threshold is not None:
                kwargs["admission_threshold"] = admission_threshold
            policy = CachePolicy(**kwargs)
        self.policy = policy
        self.stats = CacheStats()
        self._entries: dict[tuple, _SelectEntry | _JoinEntry] = {}
        #: (kind-specific group key) -> set of entry keys, for the
        #: containment scan and the optimizer's hit-probability probe.
        self._groups: dict[tuple, set[tuple]] = {}
        self._tick = 0
        self._metrics = None
        self._lock = threading.RLock()
        #: Uids of relations whose weakref died; their entries are
        #: purged at the next probe/admit/sweep.  The weakref callback
        #: only appends (atomic), never touches cache structures -- it
        #: may fire inside garbage collection on any thread.
        self._dead_uids: list[int] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    def entries(self) -> list[_SelectEntry | _JoinEntry]:
        """Live entries (fresh or not-yet-purged stale), for tests."""
        with self._lock:
            return list(self._entries.values())

    def attach_metrics(self, registry: Any, **labels: Any) -> None:
        """Publish cache events into a metrics registry from now on."""
        with self._lock:
            self._metrics = (registry, labels)
            self._publish_gauges()

    # ------------------------------------------------------------------
    # Relation liveness
    # ------------------------------------------------------------------

    def _track(self, relation: Relation) -> weakref.ref:
        """A weak reference whose death schedules the uid for purging."""
        dead = self._dead_uids
        uid = relation.uid
        return weakref.ref(relation, lambda _ref: dead.append(uid))

    def _purge_dead(self) -> None:
        """Drop entries whose relation was garbage-collected.

        Runs under the lock at every probe/admit/sweep; keyed on the
        stable uid the dead relation carried, so the sweep touches
        exactly the entries that can never be served again.
        """
        if not self._dead_uids:
            return
        dead: set[int] = set()
        while self._dead_uids:
            dead.add(self._dead_uids.pop())
        doomed = [
            key for key in self._entries
            if not dead.isdisjoint(self._key_uids(key))
        ]
        for key in doomed:
            self._drop(key)
            self.stats.invalidations += 1
            self._count("cache.invalidations")
        if doomed:
            self._publish_gauges()

    @staticmethod
    def _key_uids(key: tuple) -> tuple[int, ...]:
        """The relation uids embedded in an entry key."""
        if key[0] == "select":
            return (key[1],)
        return (key[1], key[3])

    # ------------------------------------------------------------------
    # Selections
    # ------------------------------------------------------------------

    def probe_select(
        self,
        relation: Relation,
        column: str,
        query: Any,
        theta: ThetaOperator,
        *,
        strategy: str,
        order: str,
        meter: CostMeter,
    ) -> tuple[str, SelectResult] | tuple[None, None]:
        """Look up a selection; serve exact or containment, else miss.

        Containment refinement charges one exact predicate evaluation
        per stored candidate to ``meter`` -- the same refinement work a
        real traversal would do at the leaves -- and zero page reads.
        """
        with self._lock:
            self._purge_dead()
            self.stats.probes += 1
            meter.record_cache_probe()

            key = self._select_key(relation, column, theta, strategy, order, query)
            entry = self._entries.get(key)
            if entry is not None and not self._validate(key, entry):
                entry = None
            if entry is not None:
                assert isinstance(entry, _SelectEntry)
                self._touch(entry)
                self.stats.exact_hits += 1
                meter.record_cache_hit()
                self._count("cache.hits", tier="exact", kind="select")
                result = SelectResult(
                    strategy="cached-exact", matches=list(entry.matches)
                )
                result.stats = meter.snapshot()
                return "exact", result

            served = self._containment_lookup(
                relation, column, query, theta, strategy, order, meter
            )
            if served is not None:
                return "containment", served

            self.stats.misses += 1
            self._count("cache.misses", kind="select")
            return None, None

    def _containment_lookup(
        self,
        relation: Relation,
        column: str,
        query: Any,
        theta: ThetaOperator,
        strategy: str,
        order: str,
        meter: CostMeter,
    ) -> SelectResult | None:
        """Serve ``query`` from a cached strictly-larger window, if any."""
        if not isinstance(query, Rect):
            return None
        if not (window_monotone(theta) or exact_monotone(theta)):
            return None
        group = self._groups.get(
            self._select_group(relation, column, theta, strategy, order)
        )
        if not group:
            return None
        best: _SelectEntry | None = None
        for entry_key in sorted(group):
            entry = self._entries.get(entry_key)
            if entry is None:
                continue
            assert isinstance(entry, _SelectEntry)
            if not self._validate(entry_key, entry):
                continue
            window = entry.query
            if not isinstance(window, Rect) or not window.contains_rect(query):
                continue
            usable = (
                entry.candidates is not None and window_monotone(theta)
            ) or (entry.refinable_matches and exact_monotone(theta))
            if not usable:
                continue
            # Prefer the entry needing the least refinement work.
            work = (
                len(entry.candidates)
                if entry.candidates is not None and window_monotone(theta)
                else len(entry.matches)
            )
            if best is None or work < self._refine_work(best, theta):
                best = entry
        if best is None:
            return None

        result = SelectResult(strategy="cached-containment")
        if best.candidates is not None and window_monotone(theta):
            # Theta-filter contract: every filter-hit of the shrunken
            # window is among W's stored candidates; refine exactly.
            for tid, region, payload in best.candidates:
                meter.record_exact_eval()
                if theta(query, region):
                    result.matches.append((tid, payload))
        else:
            # Exact-monotone operator: matches(W') is a subset of
            # matches(W); re-test each stored match against W'.
            for tid, payload in best.matches:
                meter.record_exact_eval()
                if theta(query, payload[column]):
                    result.matches.append((tid, payload))
        self._touch(best)
        self.stats.containment_hits += 1
        meter.record_cache_hit()
        self._count("cache.hits", tier="containment", kind="select")
        result.stats = meter.snapshot()
        return result

    @staticmethod
    def _refine_work(entry: _SelectEntry, theta: ThetaOperator) -> int:
        if entry.candidates is not None and window_monotone(theta):
            return len(entry.candidates)
        return len(entry.matches)

    def admit_select(
        self,
        relation: Relation,
        column: str,
        query: Any,
        theta: ThetaOperator,
        *,
        strategy: str,
        order: str,
        result: SelectResult,
        candidates: list[tuple[Any, Any, Any]] | None,
        measured_cost: float,
        predicted_cost: float | None = None,
        epoch: int | None = None,
    ) -> bool:
        """Consider caching a freshly executed selection.

        ``predicted_cost`` is the Section 4 model prediction when the
        caller planned the query; the metered actual of this execution
        is the fallback predictor.  ``epoch`` is the relation's
        modification count *pinned before execution*: when the relation
        mutated while the query ran (a concurrent writer), the result
        may mix states and is refused rather than cached.  Returns True
        when admitted.
        """
        with self._lock:
            self._purge_dead()
            if epoch is None:
                epoch = relation.modification_count
            elif epoch != relation.modification_count:
                # The operand moved mid-execution: this answer belongs
                # to no single epoch and must never be served.
                self.stats.rejections += 1
                return False
            cost = predicted_cost if predicted_cost is not None else measured_cost
            nbytes = estimate_select_bytes(
                len(result.matches),
                len(candidates) if candidates is not None else 0,
                relation.record_size,
            )
            if not self.policy.admits(cost, nbytes):
                self.stats.rejections += 1
                return False
            refinable = all(
                hasattr(payload, "__getitem__") for _tid, payload in result.matches
            )
            entry = _SelectEntry(
                relation_ref=self._track(relation),
                column=column,
                epoch=epoch,
                theta=theta,
                query=query,
                strategy=strategy,
                order=order,
                matches=list(result.matches),
                candidates=list(candidates) if candidates is not None else None,
                refinable_matches=refinable,
                predicted_cost=cost,
                nbytes=nbytes,
            )
            key = self._select_key(relation, column, theta, strategy, order, query)
            self._store(
                key, entry,
                self._select_group(relation, column, theta, strategy, order),
            )
            return True

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------

    def probe_join(
        self,
        rel_r: Relation,
        column_r: str,
        rel_s: Relation,
        column_s: str,
        theta: ThetaOperator,
        *,
        strategy: str,
        collect_tuples: bool,
        meter: CostMeter,
    ) -> tuple[str, JoinResult] | tuple[None, None]:
        """Look up a join result; joins have the exact tier only."""
        with self._lock:
            self._purge_dead()
            self.stats.probes += 1
            meter.record_cache_probe()
            key, swapped = self._join_key(
                rel_r, column_r, rel_s, column_s, theta, strategy
            )
            entry = self._entries.get(key)
            if entry is not None and not self._validate(key, entry):
                entry = None
            if (
                entry is None
                or not isinstance(entry, _JoinEntry)
                or (collect_tuples and entry.tuples is None)
            ):
                self.stats.misses += 1
                self._count("cache.misses", kind="join")
                return None, None
            self._touch(entry)
            self.stats.exact_hits += 1
            meter.record_cache_hit()
            self._count("cache.hits", tier="exact", kind="join")
            if swapped:
                pairs = [(b, a) for a, b in entry.pairs]
                tuples = (
                    [(b, a) for a, b in entry.tuples]
                    if collect_tuples and entry.tuples is not None
                    else []
                )
            else:
                pairs = list(entry.pairs)
                tuples = (
                    list(entry.tuples)
                    if collect_tuples and entry.tuples is not None
                    else []
                )
            result = JoinResult(strategy="cached-exact", pairs=pairs, tuples=tuples)
            result.stats = meter.snapshot()
            return "exact", result

    def admit_join(
        self,
        rel_r: Relation,
        column_r: str,
        rel_s: Relation,
        column_s: str,
        theta: ThetaOperator,
        *,
        strategy: str,
        result: JoinResult,
        collect_tuples: bool,
        measured_cost: float,
        predicted_cost: float | None = None,
        epoch_r: int | None = None,
        epoch_s: int | None = None,
    ) -> bool:
        """Consider caching a freshly executed join.

        ``epoch_r``/``epoch_s`` are the operands' modification counts
        pinned before execution; a result computed while either operand
        mutated is refused (see :meth:`admit_select`).
        """
        with self._lock:
            self._purge_dead()
            if epoch_r is None:
                epoch_r = rel_r.modification_count
            elif epoch_r != rel_r.modification_count:
                self.stats.rejections += 1
                return False
            if epoch_s is None:
                epoch_s = rel_s.modification_count
            elif epoch_s != rel_s.modification_count:
                self.stats.rejections += 1
                return False
            cost = predicted_cost if predicted_cost is not None else measured_cost
            nbytes = estimate_join_bytes(
                len(result.pairs),
                len(result.tuples) if collect_tuples else 0,
                rel_r.record_size,
                rel_s.record_size,
            )
            if not self.policy.admits(cost, nbytes):
                self.stats.rejections += 1
                return False
            key, swapped = self._join_key(
                rel_r, column_r, rel_s, column_s, theta, strategy
            )
            if swapped:
                pairs = [(b, a) for a, b in result.pairs]
                tuples = (
                    [(b, a) for a, b in result.tuples] if collect_tuples else None
                )
                first, second = rel_s, rel_r
                epoch_first, epoch_second = epoch_s, epoch_r
            else:
                pairs = list(result.pairs)
                tuples = list(result.tuples) if collect_tuples else None
                first, second = rel_r, rel_s
                epoch_first, epoch_second = epoch_r, epoch_s
            entry = _JoinEntry(
                rel_r_ref=self._track(first),
                rel_s_ref=self._track(second),
                epoch_r=epoch_first,
                epoch_s=epoch_second,
                theta=theta,
                pairs=pairs,
                tuples=tuples,
                predicted_cost=cost,
                nbytes=nbytes,
            )
            self._store(
                key, entry,
                self._join_group(rel_r, column_r, rel_s, column_s, theta),
            )
            return True

    def join_hit_probability(
        self,
        rel_r: Relation,
        column_r: str,
        rel_s: Relation,
        column_s: str,
        theta: ThetaOperator,
    ) -> float:
        """The optimizer's discount: how likely is this join cached?

        1.0 when a fresh entry exists for the join under *any* strategy
        (an exact hit is then certain); otherwise the cache's observed
        lifetime hit ratio -- the empirical base rate of the workload's
        repetitiveness.
        """
        with self._lock:
            self._purge_dead()
            group = self._groups.get(
                self._join_group(rel_r, column_r, rel_s, column_s, theta)
            )
            if group:
                for entry_key in sorted(group):
                    entry = self._entries.get(entry_key)
                    if entry is not None and self._validate(entry_key, entry):
                        return 1.0
            return self.stats.hit_ratio

    # ------------------------------------------------------------------
    # Invalidation, eviction, maintenance
    # ------------------------------------------------------------------

    def purge_stale(self) -> int:
        """Drop every entry whose relation epoch moved or died; returns count.

        Probes already invalidate lazily; this sweep exists for
        maintenance points (and for the stateful suite's invariant that
        no entry survives an epoch bump).
        """
        with self._lock:
            before = self.stats.invalidations
            self._purge_dead()
            stale = [k for k, e in self._entries.items() if not e.fresh()]
            for key in stale:
                self._drop(key)
                self.stats.invalidations += 1
                self._count("cache.invalidations")
            if stale:
                self._publish_gauges()
            return self.stats.invalidations - before

    def clear(self) -> int:
        """Drop everything (counts as evictions); returns entry count."""
        with self._lock:
            count = len(self._entries)
            for key in list(self._entries):
                self._drop(key)
                self.stats.evictions += 1
                self._count("cache.evictions")
            self._publish_gauges()
            return count

    def _validate(self, key: tuple, entry: _SelectEntry | _JoinEntry) -> bool:
        """Freshness check; stale entries are dropped, never served."""
        if entry.fresh():
            return True
        self._drop(key)
        self.stats.invalidations += 1
        self._count("cache.invalidations")
        self._publish_gauges()
        return False

    def _store(
        self, key: tuple, entry: _SelectEntry | _JoinEntry, group: tuple
    ) -> None:
        self._tick += 1
        entry.tick = self._tick
        self._entries[key] = entry
        self._groups.setdefault(group, set()).add(key)
        self._evict_over_budget(protect=key)
        self.stats.admissions += 1
        self._count("cache.admissions")
        self._publish_gauges()

    def _evict_over_budget(self, protect: tuple) -> None:
        """LRU-by-predicted-cost eviction down to the byte budget."""
        while self.total_bytes > self.policy.byte_budget and len(self._entries) > 1:
            lru = sorted(
                (k for k in self._entries if k != protect),
                key=lambda k: self._entries[k].tick,
            )[: self.policy.eviction_window]
            if not lru:
                break
            victim = min(
                lru,
                key=lambda k: (
                    self._entries[k].predicted_cost,
                    self._entries[k].tick,
                ),
            )
            self._drop(victim)
            self.stats.evictions += 1
            self._count("cache.evictions")

    def _drop(self, key: tuple) -> None:
        self._entries.pop(key, None)
        for members in self._groups.values():
            members.discard(key)

    def _touch(self, entry: _SelectEntry | _JoinEntry) -> None:
        self._tick += 1
        entry.tick = self._tick

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------

    @staticmethod
    def _select_key(
        relation: Relation,
        column: str,
        theta: ThetaOperator,
        strategy: str,
        order: str,
        query: Any,
    ) -> tuple:
        return (
            "select",
            relation.uid,
            column,
            theta_cache_key(theta),
            strategy,
            order,
            geometry_fingerprint(query),
        )

    @staticmethod
    def _select_group(
        relation: Relation,
        column: str,
        theta: ThetaOperator,
        strategy: str,
        order: str,
    ) -> tuple:
        return ("select", relation.uid, column, theta_cache_key(theta),
                strategy, order)

    @staticmethod
    def _join_orientation(
        rel_r: Relation,
        column_r: str,
        rel_s: Relation,
        column_s: str,
        theta: ThetaOperator,
    ) -> bool:
        """True when a symmetric join should be stored S-first."""
        return theta.symmetric and (rel_s.uid, column_s) < (rel_r.uid, column_r)

    @classmethod
    def _join_key(
        cls,
        rel_r: Relation,
        column_r: str,
        rel_s: Relation,
        column_s: str,
        theta: ThetaOperator,
        strategy: str,
    ) -> tuple[tuple, bool]:
        swapped = cls._join_orientation(rel_r, column_r, rel_s, column_s, theta)
        if swapped:
            rel_r, rel_s = rel_s, rel_r
            column_r, column_s = column_s, column_r
        key = (
            "join",
            rel_r.uid,
            column_r,
            rel_s.uid,
            column_s,
            theta_cache_key(theta),
            strategy,
        )
        return key, swapped

    @classmethod
    def _join_group(
        cls,
        rel_r: Relation,
        column_r: str,
        rel_s: Relation,
        column_s: str,
        theta: ThetaOperator,
    ) -> tuple:
        if cls._join_orientation(rel_r, column_r, rel_s, column_s, theta):
            rel_r, rel_s = rel_s, rel_r
            column_r, column_s = column_s, column_r
        return ("join", rel_r.uid, column_r, rel_s.uid, column_s,
                theta_cache_key(theta))

    # ------------------------------------------------------------------
    # Metrics plumbing
    # ------------------------------------------------------------------

    def _count(self, name: str, **labels: Any) -> None:
        if self._metrics is None:
            return
        registry, base = self._metrics
        registry.counter(name, **base, **labels).inc()

    def _publish_gauges(self) -> None:
        if self._metrics is None:
            return
        registry, base = self._metrics
        registry.gauge("cache.bytes", **base).set(self.total_bytes)
        registry.gauge("cache.entries", **base).set(len(self._entries))

    def describe(self) -> str:
        """One-line terminal summary."""
        s = self.stats
        return (
            f"cache: {len(self._entries)} entries, {self.total_bytes} bytes "
            f"(budget {self.policy.byte_budget}); probes={s.probes} "
            f"exact={s.exact_hits} containment={s.containment_hits} "
            f"misses={s.misses} evictions={s.evictions} "
            f"invalidations={s.invalidations}"
        )
