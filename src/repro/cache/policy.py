"""Admission and eviction policy for the query-result cache.

The cache is only worth its memory when the entries it holds would be
expensive to recompute.  Admission is therefore *cost-model aware*: an
entry is admitted only when its predicted re-execution cost -- the
Section 4 formula that priced the strategy when a plan is available,
else the metered actual of the miss execution (the best single-sample
predictor of the next run) -- exceeds a threshold, by default one page
I/O (``C_IO = 1000``, Table 3).  Anything cheaper than a single disk
access is recomputed faster than it is worth tracking.

Eviction is LRU-by-predicted-cost under a byte budget: when the cache
overflows, the victim is chosen among the least-recently-used entries
as the one whose re-execution would cost the least -- recency guards
the hot working set, predicted cost breaks ties in favour of keeping
expensive answers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import JoinError

#: Default byte budget: generous for the simulated engine's workloads,
#: small enough that soak tests actually exercise eviction.
DEFAULT_BYTE_BUDGET = 8 * 1024 * 1024

#: Default admission threshold in the paper's cost units: one C_IO.
DEFAULT_ADMISSION_THRESHOLD = 1000.0

#: Fixed per-entry bookkeeping estimate (keys, epochs, dataclass).
ENTRY_OVERHEAD_BYTES = 512

#: Estimated bytes per cached (tid, tid) pair / per tid reference.
PAIR_BYTES = 48

#: How many least-recently-used entries compete for eviction; the one
#: with the lowest predicted re-execution cost loses.
EVICTION_WINDOW = 8


@dataclass(frozen=True, slots=True)
class CachePolicy:
    """Admission threshold, byte budget and eviction window."""

    byte_budget: int = DEFAULT_BYTE_BUDGET
    admission_threshold: float = DEFAULT_ADMISSION_THRESHOLD
    eviction_window: int = EVICTION_WINDOW

    def __post_init__(self) -> None:
        if self.byte_budget <= 0:
            raise JoinError(
                f"cache byte budget must be positive, got {self.byte_budget}"
            )
        if self.admission_threshold < 0:
            raise JoinError(
                "cache admission threshold must be non-negative, "
                f"got {self.admission_threshold}"
            )
        if self.eviction_window < 1:
            raise JoinError(
                f"eviction window must be positive, got {self.eviction_window}"
            )

    def admits(self, predicted_cost: float, entry_bytes: int) -> bool:
        """Should an entry of this predicted value and size be cached?

        Entries larger than the whole budget are refused outright --
        admitting one would evict everything else for a single answer.
        """
        return (
            predicted_cost >= self.admission_threshold
            and entry_bytes <= self.byte_budget
        )


def estimate_select_bytes(
    match_count: int, candidate_count: int, record_size: int
) -> int:
    """Deterministic size estimate for a SELECT entry.

    Payload tuples are priced at the relation's declared record size
    (the model's ``v``) -- the same arithmetic the page layout uses, so
    the budget is consistent with the storage it shadows.
    """
    return (
        ENTRY_OVERHEAD_BYTES
        + match_count * (PAIR_BYTES + record_size)
        + candidate_count * (2 * PAIR_BYTES + record_size)
    )


def estimate_join_bytes(
    pair_count: int, tuple_count: int, record_size_r: int, record_size_s: int
) -> int:
    """Deterministic size estimate for a JOIN entry."""
    return (
        ENTRY_OVERHEAD_BYTES
        + pair_count * 2 * PAIR_BYTES
        + tuple_count * (record_size_r + record_size_s)
    )
