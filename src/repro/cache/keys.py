"""Cache keys: geometry fingerprints, predicate keys, monotonicity.

A cache entry must be found again by *value*, not by object identity --
two :class:`~repro.geometry.rect.Rect` instances with the same
coordinates describe the same query window.  The fingerprint of a
geometry is therefore a canonical tuple of its type tag and defining
coordinates: collision-free (equal fingerprints imply equal geometries),
hashable, and *translation-compatible* -- translating two geometries by
the same vector preserves fingerprint equality and inequality, so a
rigidly translated workload produces exactly the same hit/miss sequence
against a fresh cache (pinned by the metamorphic suite).

The module also classifies operators for the containment tier.  A
cached SELECT for window ``W`` can answer ``W' subset-of W`` only when
the Table 1 Theta-filter contract is monotone under window shrinkage:
``Theta-hits(W)`` must be a superset of ``Theta-hits(W')`` for every
``W' subset-of W``.  That holds for the MBR-intersection filter
(``overlaps``, ``includes``), the closest-point distance filter
(``within distance d``: shrinking the window can only *increase* the
closest-point distance to any object, so every filter-hit of ``W'`` was
already a filter-hit of ``W``) and the buffer filter (``reachable in x
minutes``, same argument).  It does *not* hold for directional
operators (the tangent quadrant moves with the window) or the distance
band (the lower bound breaks monotonicity), so those never take the
containment tier.
"""

from __future__ import annotations

from typing import Any

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.predicates.theta import (
    Includes,
    Overlaps,
    ReachableWithin,
    ThetaOperator,
    WithinDistance,
)

#: Operators whose Theta-filter hit set is monotone under window
#: shrinkage -- the containment tier may refine a cached candidate set.
WINDOW_MONOTONE_THETAS: tuple[type, ...] = (
    Overlaps,
    Includes,
    WithinDistance,
    ReachableWithin,
)

#: Operators whose *exact* predicate is itself monotone under window
#: shrinkage (``theta(W', t)`` implies ``theta(W, t)`` for ``W'`` inside
#: ``W``) -- the containment tier may refine straight from the cached
#: exact matches when no candidate set was stored.  ``within distance``
#: is deliberately absent: it compares *centerpoints*, and the center of
#: a shrunken window moves.
EXACT_MONOTONE_THETAS: tuple[type, ...] = (Overlaps, Includes, ReachableWithin)


def window_monotone(theta: ThetaOperator) -> bool:
    """True when the operator's Theta-filter honours the containment
    contract of Table 1 under window shrinkage."""
    return isinstance(theta, WINDOW_MONOTONE_THETAS)


def exact_monotone(theta: ThetaOperator) -> bool:
    """True when the exact predicate itself shrinks with the window."""
    return isinstance(theta, EXACT_MONOTONE_THETAS)


def geometry_fingerprint(obj: Any) -> tuple:
    """Canonical, hashable fingerprint of a spatial object.

    Equal geometries fingerprint equal; distinct geometries fingerprint
    distinct (the defining coordinates are embedded verbatim, no lossy
    hashing).  Unknown spatial types fall back to their type name plus
    ``repr`` -- still value-based for any reasonably implemented
    geometry.
    """
    if isinstance(obj, Rect):
        return ("rect", obj.xmin, obj.ymin, obj.xmax, obj.ymax)
    if isinstance(obj, Point):
        return ("point", obj.x, obj.y)
    points = getattr(obj, "points", None)
    if points is not None:
        return (
            type(obj).__name__.lower(),
            tuple((p.x, p.y) for p in points),
        )
    return (type(obj).__name__, repr(obj))


def theta_cache_key(theta: ThetaOperator) -> tuple[str, str]:
    """Value-based key for an operator: type plus parameterized name.

    ``theta.name`` embeds the operator's parameters (``within_distance
    (12.0)``, ``direction_of(nw)``), so two instances with the same
    parameters share entries while differently parameterized ones never
    collide.
    """
    return (type(theta).__name__, theta.name)
