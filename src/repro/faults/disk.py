"""A :class:`SimulatedDisk` that fails on schedule.

``FaultyDisk`` *is* a ``SimulatedDisk`` (drop-in for every pool, file
and relation) whose page accesses consult a :class:`FaultPlan`:

* transient read/write faults raise :class:`TransientStorageError` for
  exactly one attempt -- the buffer pool's retry loop absorbs them;
* permanently lost pages raise :class:`PermanentStorageError` on every
  read, forever;
* torn writes return success but record a checksum that does not match
  the page content; the mismatch is detected on the next read, which
  raises :class:`TornPageError` once and then repairs the page (the
  simulation's stand-in for restoring from a replica or journal).

Checksums are kept per page and verified only for pages flagged torn:
pages in this simulation are shared in-memory objects that may be
legitimately mutated between a write-back and a later read (another pool
holding the same page dirty), so verifying every read would flag honest
mutations as corruption.

The disk also counts successful and failed physical attempts
(``ok_reads`` / ``ok_writes`` / ``failed_attempts``) so tests can pin
the meter's no-double-charge invariant directly against ground truth.
"""

from __future__ import annotations

import zlib

from repro.errors import PermanentStorageError, TornPageError, TransientStorageError
from repro.faults.plan import FaultKind, FaultPlan
from repro.storage.disk import SimulatedDisk
from repro.storage.page import PAGE_SIZE, Page


def page_checksum(page: Page) -> int:
    """CRC32 over the page's observable content.

    Declared sizes and the repr of every slot participate, so any record
    mutation changes the sum.
    """
    payload = repr((page.page_id, page.used_bytes, page.slot_sizes, page.slots))
    return zlib.crc32(payload.encode("utf-8", errors="replace"))


class FaultyDisk(SimulatedDisk):
    """Simulated disk with deterministic, plan-driven fault injection."""

    def __init__(self, plan: FaultPlan, page_size: int = PAGE_SIZE) -> None:
        super().__init__(page_size)
        self.plan = plan
        self._checksums: dict[int, int] = {}
        self._torn: set[int] = set()
        self.ok_reads = 0
        self.ok_writes = 0
        self.failed_attempts = 0

    # ------------------------------------------------------------------
    # SimulatedDisk protocol
    # ------------------------------------------------------------------

    def allocate_page(self) -> Page:
        page = super().allocate_page()
        self._checksums[page.page_id] = page_checksum(page)
        return page

    def read_page(self, page_id: int) -> Page:
        if self.plan.is_lost(page_id):
            self.failed_attempts += 1
            raise PermanentStorageError(f"page {page_id} is permanently lost")
        if self.plan.draw_read_fault(page_id) is not None:
            self.failed_attempts += 1
            raise TransientStorageError(f"transient read failure on page {page_id}")
        page = super().read_page(page_id)
        if page_id in self._torn:
            recorded = self._checksums.get(page_id)
            if recorded != page_checksum(page):
                # Detected: repair (restore the honest checksum) so the
                # retry models a successful read from the replica.
                self._torn.discard(page_id)
                self._checksums[page_id] = page_checksum(page)
                self.failed_attempts += 1
                raise TornPageError(
                    f"checksum mismatch on page {page_id}: torn write detected"
                )
            self._torn.discard(page_id)
        self.ok_reads += 1
        self.plan.note_success("read", page_id)
        return page

    def write_page(self, page: Page) -> None:
        ev = self.plan.draw_write_fault(page.page_id)
        if ev is not None and ev.kind is FaultKind.TRANSIENT_WRITE:
            self.failed_attempts += 1
            raise TransientStorageError(
                f"transient write failure on page {page.page_id}"
            )
        super().write_page(page)
        if ev is not None and ev.kind is FaultKind.TORN_WRITE:
            # The device acks the write (it counts as a successful
            # attempt), but the recorded checksum is off by construction
            # -- the next read trips over it.
            self.ok_writes += 1
            self._torn.add(page.page_id)
            self._checksums[page.page_id] = page_checksum(page) ^ 0xDEADBEEF
            return
        self._checksums[page.page_id] = page_checksum(page)
        self.ok_writes += 1
        self.plan.note_success("write", page.page_id)

    # ------------------------------------------------------------------
    # Test / report helpers
    # ------------------------------------------------------------------

    def lose_page(self, page_id: int) -> None:
        """Mark a page permanently unreadable from now on."""
        self.plan.lost_pages.add(page_id)

    @property
    def torn_pages(self) -> frozenset[int]:
        return frozenset(self._torn)
