"""A :class:`SimulatedDisk` that fails on schedule.

``FaultyDisk`` *is* a ``SimulatedDisk`` (drop-in for every pool, file
and relation) whose page accesses consult a :class:`FaultPlan`:

* transient read/write faults raise :class:`TransientStorageError` for
  exactly one attempt -- the buffer pool's retry loop absorbs them;
* permanently lost pages raise :class:`PermanentStorageError` on every
  read, forever;
* torn writes return success but record a checksum that does not match
  the page content; the mismatch is detected on the next read, which
  raises :class:`TornPageError` once and then repairs the page (the
  simulation's stand-in for restoring from a replica or journal).

Checksums are kept per page and verified only for pages flagged torn:
pages in this simulation are shared in-memory objects that may be
legitimately mutated between a write-back and a later read (another pool
holding the same page dirty), so verifying every read would flag honest
mutations as corruption.

The disk also counts successful and failed physical attempts
(``ok_reads`` / ``ok_writes`` / ``failed_attempts``) so tests can pin
the meter's no-double-charge invariant directly against ground truth.
"""

from __future__ import annotations

import copy
import zlib

from repro.errors import (
    CrashError,
    PermanentStorageError,
    TornPageError,
    TransientStorageError,
)
from repro.faults.plan import FaultKind, FaultPlan
from repro.storage.disk import SimulatedDisk
from repro.storage.page import PAGE_SIZE, Page

#: Sentinel that replaces the last slot of a page whose in-flight write
#: landed torn at the crash point.  Deliberately *not* a valid WAL frame
#: (no dict shape, no CRC): recovery must detect it as garbage.
TORN_SLOT = "<torn write: partial frame>"


def page_checksum(page: Page) -> int:
    """CRC32 over the page's observable content.

    Declared sizes and the repr of every slot participate, so any record
    mutation changes the sum.
    """
    payload = repr((page.page_id, page.used_bytes, page.slot_sizes, page.slots))
    return zlib.crc32(payload.encode("utf-8", errors="replace"))


class FaultyDisk(SimulatedDisk):
    """Simulated disk with deterministic, plan-driven fault injection."""

    def __init__(self, plan: FaultPlan, page_size: int = PAGE_SIZE) -> None:
        super().__init__(page_size)
        self.plan = plan
        self._checksums: dict[int, int] = {}
        self._torn: set[int] = set()
        self.ok_reads = 0
        self.ok_writes = 0
        self.failed_attempts = 0
        #: Successful physical writes so far -- the clock ``crash_at_write``
        #: is scheduled against.
        self.physical_writes = 0
        self.crashed = False
        # Durable shadow copies, maintained only while a crash is
        # scheduled: a page's shadow reflects exactly what has been
        # physically *written* (plus empty images for allocations), never
        # in-buffer mutations that were not flushed.  Pages in this
        # simulation are shared in-memory objects, so without the shadow a
        # crash image could not distinguish flushed from unflushed state.
        self._durable: dict[int, Page] = {}

    # ------------------------------------------------------------------
    # SimulatedDisk protocol
    # ------------------------------------------------------------------

    def allocate_page(self) -> Page:
        self._check_crashed()
        page = super().allocate_page()
        self._checksums[page.page_id] = page_checksum(page)
        if self._tracking_durability():
            # Allocation is a (durable) metadata operation; the page's
            # durable image starts empty until it is physically written.
            self._durable[page.page_id] = copy.deepcopy(page)
        return page

    def read_page(self, page_id: int) -> Page:
        self._check_crashed()
        if self.plan.is_lost(page_id):
            self.failed_attempts += 1
            raise PermanentStorageError(f"page {page_id} is permanently lost")
        if self.plan.draw_read_fault(page_id) is not None:
            self.failed_attempts += 1
            raise TransientStorageError(f"transient read failure on page {page_id}")
        page = super().read_page(page_id)
        if page_id in self._torn:
            recorded = self._checksums.get(page_id)
            if recorded != page_checksum(page):
                # Detected: repair (restore the honest checksum) so the
                # retry models a successful read from the replica.
                self._torn.discard(page_id)
                self._checksums[page_id] = page_checksum(page)
                self.failed_attempts += 1
                raise TornPageError(
                    f"checksum mismatch on page {page_id}: torn write detected"
                )
            self._torn.discard(page_id)
        self.ok_reads += 1
        self.plan.note_success("read", page_id)
        return page

    def write_page(self, page: Page) -> None:
        self._check_crashed()
        if self.plan.should_crash_at(self.physical_writes):
            self._trigger_crash(page)
        ev = self.plan.draw_write_fault(page.page_id)
        if ev is not None and ev.kind is FaultKind.TRANSIENT_WRITE:
            self.failed_attempts += 1
            raise TransientStorageError(
                f"transient write failure on page {page.page_id}"
            )
        super().write_page(page)
        if ev is not None and ev.kind is FaultKind.TORN_WRITE:
            # The device acks the write (it counts as a successful
            # attempt), but the recorded checksum is off by construction
            # -- the next read trips over it.
            self.ok_writes += 1
            self._note_physical_write(page)
            self._torn.add(page.page_id)
            self._checksums[page.page_id] = page_checksum(page) ^ 0xDEADBEEF
            return
        self._checksums[page.page_id] = page_checksum(page)
        self.ok_writes += 1
        self._note_physical_write(page)
        self.plan.note_success("write", page.page_id)

    # ------------------------------------------------------------------
    # Crash machinery
    # ------------------------------------------------------------------

    def _tracking_durability(self) -> bool:
        return self.plan.crash_at_write is not None

    def _check_crashed(self) -> None:
        if self.crashed:
            raise CrashError(
                f"disk crashed at physical write {self.plan.crash_at_write}; "
                "no further access is possible -- recover from crash_image()"
            )

    def _note_physical_write(self, page: Page) -> None:
        """A write reached the platter: advance the clock, update shadows."""
        self.physical_writes += 1
        if self._tracking_durability():
            self._durable[page.page_id] = copy.deepcopy(page)

    def _trigger_crash(self, in_flight: Page) -> None:
        """Freeze the durable image and die.

        The in-flight write does not land -- unless ``crash_torn_tail`` is
        set, in which case a *mangled* copy lands: its last slot is
        replaced with garbage, modelling a frame that was only partially
        persisted.  Recovery must detect it via the frame CRC.
        """
        self.crashed = True
        self.plan.note_crash(self.physical_writes)
        if self.plan.crash_torn_tail:
            torn = copy.deepcopy(in_flight)
            if torn.slots:
                torn.slots[-1] = TORN_SLOT
            self._durable[in_flight.page_id] = torn
        self.failed_attempts += 1
        raise CrashError(
            f"disk crashed at physical write {self.physical_writes}"
            + (" (in-flight write landed torn)" if self.plan.crash_torn_tail else "")
        )

    def crash_image(self) -> SimulatedDisk:
        """The frozen durable image as a plain, healthy ``SimulatedDisk``.

        Only callable after the scheduled crash fired.  The image contains
        every allocated page in its last physically-written state --
        in-buffer mutations that were never flushed are absent, exactly as
        they would be after a real power cut.
        """
        if not self.crashed:
            raise CrashError("crash_image() requires a crashed disk")
        image = SimulatedDisk(self.page_size)
        for page_id in range(len(self._pages)):
            shadow = self._durable.get(page_id)
            if shadow is None:  # pragma: no cover - shadows track allocations
                shadow = Page(page_id=page_id, capacity=self.page_size)
            image._pages.append(copy.deepcopy(shadow))
        return image

    # ------------------------------------------------------------------
    # Test / report helpers
    # ------------------------------------------------------------------

    def lose_page(self, page_id: int) -> None:
        """Mark a page permanently unreadable from now on."""
        self.plan.lost_pages.add(page_id)

    @property
    def torn_pages(self) -> frozenset[int]:
        return frozenset(self._torn)
