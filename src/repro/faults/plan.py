"""Deterministic fault plans: *what* fails, *when*, reproducibly.

A :class:`FaultPlan` is the single source of truth for injected storage
and worker failures.  It is seeded, so two runs with the same seed and
the same access sequence inject the identical fault sequence -- the
property every "survives faults" test relies on.

The plan also keeps the books: every injected fault is logged as a
:class:`FaultEvent`, and the event is marked *consumed* once a retry or
a recovery path got past it.  An execution that claims to have survived
a fault run can therefore be audited: ``injected == consumed`` (for
transient faults) means no fault was silently dropped.

Two knobs bound the adversary so bounded-retry recovery is guaranteed to
terminate:

* ``max_burst`` caps *consecutive* transient failures per page and
  operation -- after ``max_burst`` failures in a row the next attempt is
  forced to succeed, so any retry budget larger than ``max_burst`` wins;
* ``read_outages`` schedules an exact number of failures for a specific
  page, for tests that need a strategy to fail deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum


class FaultKind(str, Enum):
    """What kind of failure was injected."""

    TRANSIENT_READ = "transient-read"
    TRANSIENT_WRITE = "transient-write"
    TORN_WRITE = "torn-write"
    PERMANENT_READ = "permanent-read"
    WORKER_CRASH = "worker-crash"
    CRASH = "crash"
    NET_DROP = "net-drop"
    NET_STALL = "net-stall"
    NET_GARBLE = "net-garble"
    NET_PARTIAL = "net-partial"
    SHARD_KILL = "shard-kill"
    HEARTBEAT_DROP = "heartbeat-drop"


#: Fault kinds injected on the wire (by :class:`~repro.faults.net.ChaosProxy`)
#: rather than on the simulated disk.
NET_FAULT_KINDS = frozenset({
    FaultKind.NET_DROP,
    FaultKind.NET_STALL,
    FaultKind.NET_GARBLE,
    FaultKind.NET_PARTIAL,
})


@dataclass(slots=True)
class FaultEvent:
    """One injected fault: its kind, its target, and whether recovery
    got past it (``consumed``)."""

    kind: FaultKind
    target: int
    op_index: int
    consumed: bool = False

    def describe(self) -> str:
        state = "consumed" if self.consumed else "outstanding"
        if self.kind is FaultKind.WORKER_CRASH:
            noun = "chunk"
        elif self.kind is FaultKind.CRASH:
            noun = "physical write"
        elif self.kind in NET_FAULT_KINDS:
            noun = "connection"
        elif self.kind in (FaultKind.SHARD_KILL, FaultKind.HEARTBEAT_DROP):
            noun = "shard"
        else:
            noun = "page"
        return f"{self.kind.value} on {noun} {self.target} ({state})"


class FaultPlan:
    """Seeded schedule of storage and worker faults.

    ``read_rate`` / ``write_rate`` / ``torn_rate`` are per-access
    Bernoulli probabilities for transient read failures, transient write
    failures and torn writes.  ``lost_pages`` are permanently
    unreadable.  ``read_outages`` maps a page id to an exact count of
    forced transient read failures (consumed first, before any random
    draw).  ``worker_crashes`` names parallel chunk indices whose worker
    dies on first execution.  ``crash_at_write`` schedules a whole-process
    crash at an exact physical-write index (``crash_torn_tail`` lands the
    in-flight write torn), freezing the disk's durable image for
    crash-recovery testing.

    The ``net_*`` knobs drive the network side
    (:class:`~repro.faults.net.ChaosProxy`): per-line Bernoulli rates for
    connection drops, read/write stalls of ``net_stall_seconds``, garbled
    reply bytes and partially-written lines.  Network draws come from a
    *separate* rng stream (derived from the same seed), so enabling wire
    chaos does not perturb the disk fault schedule -- a test can hold its
    storage faults fixed while dialing network chaos up and down.  Net
    faults share ``max_burst``: after ``max_burst`` consecutive faults in
    one direction the next line is forced through, so a retry budget
    larger than ``max_burst`` always wins.

    The shard knobs drive the supervised shard runtime
    (:mod:`repro.shard`): ``kill_shard_at`` schedules process kills at
    exact global dispatch indices (shard id ``-1`` = whichever shard the
    dispatch targets), each consumed exactly once, and
    ``heartbeat_drop_rate`` loses supervisor heartbeat probes with a
    per-shard ``max_burst`` cap.  Shard draws come from their own rng
    stream, independent of both the disk and the net streams.

    ``enabled`` gates all injection; flip it off to verify state without
    interference (tests do this after a faulted workload).
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        read_rate: float = 0.0,
        write_rate: float = 0.0,
        torn_rate: float = 0.0,
        lost_pages: frozenset[int] | set[int] = frozenset(),
        read_outages: dict[int, int] | None = None,
        worker_crashes: frozenset[int] | set[int] = frozenset(),
        max_burst: int = 3,
        crash_at_write: int | None = None,
        crash_torn_tail: bool = False,
        net_drop_rate: float = 0.0,
        net_stall_rate: float = 0.0,
        net_garble_rate: float = 0.0,
        net_partial_rate: float = 0.0,
        net_stall_seconds: float = 0.05,
        kill_shard_at: dict[int, int] | None = None,
        heartbeat_drop_rate: float = 0.0,
    ) -> None:
        for name, rate in (("read_rate", read_rate), ("write_rate", write_rate),
                           ("torn_rate", torn_rate),
                           ("net_drop_rate", net_drop_rate),
                           ("net_stall_rate", net_stall_rate),
                           ("net_garble_rate", net_garble_rate),
                           ("net_partial_rate", net_partial_rate),
                           ("heartbeat_drop_rate", heartbeat_drop_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if net_stall_seconds < 0:
            raise ValueError(
                f"net_stall_seconds must be >= 0, got {net_stall_seconds}"
            )
        if max_burst < 1:
            raise ValueError(f"max_burst must be positive, got {max_burst}")
        if crash_at_write is not None and crash_at_write < 0:
            raise ValueError(f"crash_at_write must be >= 0, got {crash_at_write}")
        self.seed = seed
        self.read_rate = read_rate
        self.write_rate = write_rate
        self.torn_rate = torn_rate
        self.lost_pages = set(lost_pages)
        self.read_outages = dict(read_outages or {})
        self.worker_crashes = set(worker_crashes)
        self.max_burst = max_burst
        #: Physical-write index (successful writes so far) at which the
        #: disk crashes: the scheduled write does not complete and the
        #: durable image freezes.  ``None`` disables crash scheduling.
        self.crash_at_write = crash_at_write
        #: With ``crash_torn_tail=True`` the in-flight write lands *torn*
        #: in the frozen image (its last frame is garbage) instead of not
        #: landing at all -- the classic torn log tail.
        self.crash_torn_tail = crash_torn_tail
        self.net_drop_rate = net_drop_rate
        self.net_stall_rate = net_stall_rate
        self.net_garble_rate = net_garble_rate
        self.net_partial_rate = net_partial_rate
        self.net_stall_seconds = net_stall_seconds
        #: Shard-kill schedule: global dispatch index -> shard id to kill
        #: *before* that dispatch goes out.  Shard id ``-1`` means "the
        #: shard currently being dispatched to" -- the exhaustive oracle
        #: uses it to kill at every boundary without knowing routing.
        self.kill_shard_at = dict(kill_shard_at or {})
        for idx in self.kill_shard_at:
            if idx < 0:
                raise ValueError(
                    f"kill_shard_at indices must be >= 0, got {idx}"
                )
        self.heartbeat_drop_rate = heartbeat_drop_rate
        self.enabled = True
        self.events: list[FaultEvent] = []
        self._rng = random.Random(seed)
        # Independent stream for wire faults so the disk schedule is
        # identical with or without network chaos under the same seed.
        self._net_rng = random.Random(f"net:{seed}")
        # Independent stream for shard faults, for the same reason.
        self._shard_rng = random.Random(f"shard:{seed}")
        self._shard_kills_taken: set[int] = set()
        self._op_index = 0
        # Consecutive-failure counters per (op, page), reset on success.
        self._bursts: dict[tuple[str, int], int] = {}
        # Injected-but-not-yet-consumed events per (op, page).
        self._pending: dict[tuple[str, int], list[FaultEvent]] = {}

    # ------------------------------------------------------------------
    # Decision points (called by FaultyDisk / the worker pool)
    # ------------------------------------------------------------------

    def is_lost(self, page_id: int) -> bool:
        """True when the page is permanently unreadable; logs one event
        per distinct lost page actually hit."""
        if not self.enabled or page_id not in self.lost_pages:
            return False
        if not any(
            e.kind is FaultKind.PERMANENT_READ and e.target == page_id
            for e in self.events
        ):
            self._log(FaultKind.PERMANENT_READ, page_id, pending=False)
        return True

    def draw_read_fault(self, page_id: int) -> FaultEvent | None:
        """Decide whether *this* read attempt of ``page_id`` fails."""
        if not self.enabled:
            return None
        outage = self.read_outages.get(page_id, 0)
        if outage > 0:
            self.read_outages[page_id] = outage - 1
            return self._log(FaultKind.TRANSIENT_READ, page_id)
        return self._draw("read", page_id, self.read_rate, FaultKind.TRANSIENT_READ)

    def draw_write_fault(self, page_id: int) -> FaultEvent | None:
        """Decide whether this write attempt fails (or lands torn).

        Transient write failures take priority; a write that does go
        through may independently land torn.
        """
        if not self.enabled:
            return None
        ev = self._draw("write", page_id, self.write_rate, FaultKind.TRANSIENT_WRITE)
        if ev is not None:
            return ev
        return self._draw("torn", page_id, self.torn_rate, FaultKind.TORN_WRITE)

    def should_crash_at(self, write_index: int) -> bool:
        """Pure decision: does the disk crash *instead of* completing the
        physical write with this index (successful writes so far)?"""
        return (
            self.enabled
            and self.crash_at_write is not None
            and write_index == self.crash_at_write
        )

    def draw_net_fault(self, conn_id: int, direction: str) -> FaultEvent | None:
        """Decide whether the next wire line on ``conn_id`` is faulted.

        ``direction`` is ``"c2s"`` (client requests) or ``"s2c"`` (server
        replies).  Drops and stalls may hit either direction; garbled and
        partially-written lines are injected only server-to-client --
        corrupting a *request* could mutate it into a different but valid
        request, which no client-side recovery can detect.  Consecutive
        faults per direction are capped at ``max_burst`` (shared across
        reconnections), so a bounded retry loop always terminates.
        """
        if not self.enabled:
            return None
        if direction not in ("c2s", "s2c"):
            raise ValueError(
                f"direction must be 'c2s' or 's2c', got {direction!r}"
            )
        op = f"net-{direction}"
        kinds = [
            (self.net_drop_rate, FaultKind.NET_DROP),
            (self.net_stall_rate, FaultKind.NET_STALL),
        ]
        if direction == "s2c":
            kinds += [
                (self.net_partial_rate, FaultKind.NET_PARTIAL),
                (self.net_garble_rate, FaultKind.NET_GARBLE),
            ]
        if all(rate <= 0.0 for rate, _ in kinds):
            return None
        # The burst key is the *direction*, not the connection: a drop
        # kills the connection, so per-connection counters would never
        # cap a drop storm across reconnect attempts.
        if self._bursts.get((op, 0), 0) >= self.max_burst:
            return None
        for rate, kind in kinds:
            if rate > 0.0 and self._net_rng.random() < rate:
                self._bursts[(op, 0)] = self._bursts.get((op, 0), 0) + 1
                return self._log(kind, conn_id, op=op)
        return None

    def note_net_success(self, direction: str) -> None:
        """A line was forwarded cleanly: the direction's pending net
        faults were survived (reconnected / retried past); consume them
        and reset the burst counter."""
        op = f"net-{direction}"
        self._bursts.pop((op, 0), None)
        for key in [k for k in self._pending if k[0] == op]:
            for ev in self._pending.pop(key):
                ev.consumed = True

    def take_shard_kill(
        self, dispatch_index: int, current_shard: int
    ) -> int | None:
        """Shard id to kill before dispatch ``dispatch_index``, or None.

        Each scheduled kill fires exactly once (the dispatch counter is
        global and monotonic, so re-dispatches after failover get fresh
        indices and do not re-trigger a consumed kill).  A scheduled
        shard id of ``-1`` resolves to ``current_shard``.  The event is
        logged pending; the supervisor consumes it via
        :meth:`note_shard_restart` once recovery brought the shard back.
        """
        if not self.enabled or dispatch_index in self._shard_kills_taken:
            return None
        target = self.kill_shard_at.get(dispatch_index)
        if target is None:
            return None
        self._shard_kills_taken.add(dispatch_index)
        shard_id = current_shard if target == -1 else target
        self._log(FaultKind.SHARD_KILL, shard_id, op="shard")
        return shard_id

    def note_shard_restart(self, shard_id: int) -> None:
        """The supervisor restarted ``shard_id``: consume its pending
        kill events and reset its heartbeat burst counter."""
        self.note_success("shard", shard_id)
        self._bursts.pop(("heartbeat", shard_id), None)

    def draw_heartbeat_drop(self, shard_id: int) -> FaultEvent | None:
        """Decide whether this heartbeat probe of ``shard_id`` is lost.

        Burst-capped per shard at ``max_burst`` so a supervisor whose
        miss threshold exceeds the cap never declares a healthy shard
        dead from drops alone.  Consumed via :meth:`note_heartbeat_ok`
        when a later probe of the same shard gets through.
        """
        if not self.enabled or self.heartbeat_drop_rate <= 0.0:
            return None
        key = ("heartbeat", shard_id)
        if self._bursts.get(key, 0) >= self.max_burst:
            return None
        if self._shard_rng.random() >= self.heartbeat_drop_rate:
            return None
        self._bursts[key] = self._bursts.get(key, 0) + 1
        return self._log(FaultKind.HEARTBEAT_DROP, shard_id, op="heartbeat")

    def note_heartbeat_ok(self, shard_id: int) -> None:
        """A heartbeat of ``shard_id`` succeeded: its earlier drops were
        survived; consume them and reset the burst counter."""
        self.note_success("heartbeat", shard_id)

    def should_crash_chunk(self, chunk_index: int) -> bool:
        """Pure decision: does this parallel chunk's worker die?

        No event is logged here -- the decision may be evaluated inside a
        forked worker whose plan copy is discarded.  The parent logs the
        crash via :meth:`note_worker_crash` when it observes the failure.
        """
        return self.enabled and chunk_index in self.worker_crashes

    # ------------------------------------------------------------------
    # Outcome notifications
    # ------------------------------------------------------------------

    def note_success(self, op: str, page_id: int) -> None:
        """A retried access went through: consume its pending faults."""
        self._bursts.pop((op, page_id), None)
        if op == "write":
            # A clean write also ends any torn-write burst on the page.
            self._bursts.pop(("torn", page_id), None)
        for ev in self._pending.pop((op, page_id), []):
            ev.consumed = True

    def note_worker_crash(self, chunk_index: int, recovered: bool) -> FaultEvent:
        """Log an observed worker crash; ``recovered`` marks it consumed."""
        ev = self._log(FaultKind.WORKER_CRASH, chunk_index, pending=False)
        ev.consumed = recovered
        return ev

    def note_crash(self, write_index: int) -> FaultEvent:
        """Log the disk crash itself (once, by the disk that froze).

        The event starts outstanding; :meth:`mark_crash_recovered` flips
        it to consumed once :func:`repro.wal.recover` replays the image.
        """
        return self._log(FaultKind.CRASH, write_index, pending=False)

    def mark_crash_recovered(self) -> None:
        """Recovery replayed the frozen image: consume the crash event."""
        for ev in self.events:
            if ev.kind is FaultKind.CRASH:
                ev.consumed = True

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    @property
    def injected(self) -> int:
        return len(self.events)

    @property
    def consumed(self) -> int:
        return sum(1 for e in self.events if e.consumed)

    @property
    def outstanding(self) -> int:
        return self.injected - self.consumed

    def summary(self) -> dict[str, int]:
        """Counter triple for reports: injected / consumed / outstanding."""
        return {
            "injected": self.injected,
            "consumed": self.consumed,
            "outstanding": self.outstanding,
        }

    def describe_events(self) -> list[str]:
        return [e.describe() for e in self.events]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _draw(
        self, op: str, page_id: int, rate: float, kind: FaultKind
    ) -> FaultEvent | None:
        if rate <= 0.0:
            return None
        key = (op, page_id)
        if self._bursts.get(key, 0) >= self.max_burst:
            # Burst cap reached: force success so bounded retries always
            # terminate.  The counter resets via note_success.
            return None
        if self._rng.random() >= rate:
            return None
        self._bursts[key] = self._bursts.get(key, 0) + 1
        return self._log(kind, page_id)

    def _log(
        self, kind: FaultKind, target: int, *, pending: bool = True,
        op: str | None = None,
    ) -> FaultEvent:
        ev = FaultEvent(kind=kind, target=target, op_index=self._op_index)
        self._op_index += 1
        self.events.append(ev)
        if pending:
            if op is None:
                op = {
                    FaultKind.TRANSIENT_READ: "read",
                    FaultKind.TRANSIENT_WRITE: "write",
                    # A torn write is detected (and survived) on a *read*.
                    FaultKind.TORN_WRITE: "read",
                }[kind]
            self._pending.setdefault((op, target), []).append(ev)
        return ev
