"""Seeded network chaos: a fault-injecting TCP proxy for the query wire.

:class:`ChaosProxy` sits between a :class:`~repro.server.net.QueryClient`
and a :class:`~repro.server.net.QueryServer` and executes the network
side of a :class:`~repro.faults.plan.FaultPlan`, the same way
:class:`~repro.faults.disk.FaultyDisk` executes its storage side.  It is
line-oriented -- it forwards whole protocol lines, consulting the plan
before each one -- so injected faults land at realistic protocol
boundaries:

* **drop** (``net_drop_rate``): both sides of the connection are closed;
  the client sees EOF mid-conversation and must reconnect;
* **stall** (``net_stall_rate``): the line is delivered late, after
  ``net_stall_seconds`` -- exercises client timeouts without killing the
  connection;
* **partial** (``net_partial_rate``, server->client only): a prefix of
  the reply line is written, then the connection dies -- the classic
  half-written reply whose outcome the client cannot know;
* **garble** (``net_garble_rate``, server->client only): the reply's
  payload bytes are XOR-scrambled (the newline survives, so framing does
  not desynchronize); the client sees a malformed reply and must treat
  the connection as broken.

Garble and partial faults target only the server->client direction by
design: corrupting a *request* could turn it into a different but still
valid request, a failure mode no client-side recovery can even detect.
Requests either arrive intact or not at all.

Determinism: the proxy serializes all plan consultations behind one
lock, and the plan draws network faults from an rng stream independent
of the disk stream.  The schedule depends on the seed, the rates, and
the interleaving of lines -- so multi-client runs are statistically
reproducible (same fault mix) rather than byte-identical, which is what
the chaos soak asserts over.
"""

from __future__ import annotations

import socket
import threading
from typing import Any

from repro.faults.plan import FaultKind, FaultPlan

#: XOR mask applied to garbled payload bytes.  ASCII protocol bytes
#: (0x20..0x7e) map into 0x85..0xfb -- never ``\n`` (0x0a), so a garbled
#: line cannot split into two lines or swallow the next one.
GARBLE_MASK = 0xA5


def garble_line(line: bytes) -> bytes:
    """Scramble a protocol line's payload, preserving the terminator."""
    body = line[:-1] if line.endswith(b"\n") else line
    scrambled = bytes(b ^ GARBLE_MASK for b in body)
    return scrambled + b"\n" if line.endswith(b"\n") else scrambled


class ChaosProxy:
    """Fault-injecting line proxy in front of a query server.

    Point a client at ``proxy.address`` instead of the server's; every
    line in either direction is subject to the plan's ``net_*`` knobs.
    One pump thread per direction per connection; ``stop`` closes
    everything and joins the pumps.
    """

    def __init__(self, plan: FaultPlan, upstream: tuple[str, int],
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.plan = plan
        self.upstream = upstream
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._threads: list[threading.Thread] = []
        self._conns: dict[int, tuple[socket.socket, socket.socket]] = {}
        self._conn_ids = 0
        self._lock = threading.Lock()
        # FaultPlan is not thread-safe; pumps serialize their draws here.
        self._plan_lock = threading.Lock()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "ChaosProxy":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        self._listener.close()
        with self._lock:
            pairs = list(self._conns.values())
            threads = list(self._threads)
        for pair in pairs:
            for sock in pair:
                _close(sock)
        for t in threads:
            t.join(timeout=5.0)
        with self._lock:
            self._threads = [t for t in self._threads if t.is_alive()]

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    @property
    def live_connections(self) -> int:
        with self._lock:
            return len(self._conns)

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                self._threads = [t for t in self._threads if t.is_alive()]
            try:
                client_sock, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            try:
                server_sock = socket.create_connection(self.upstream,
                                                       timeout=5.0)
            except OSError:
                _close(client_sock)
                continue
            with self._lock:
                self._conn_ids += 1
                conn_id = self._conn_ids
                self._conns[conn_id] = (client_sock, server_sock)
            for src, dst, direction in (
                (client_sock, server_sock, "c2s"),
                (server_sock, client_sock, "s2c"),
            ):
                t = threading.Thread(
                    target=self._pump, args=(conn_id, src, dst, direction),
                    name=f"chaos-pump-{conn_id}-{direction}", daemon=True,
                )
                with self._lock:
                    self._threads.append(t)
                t.start()

    def _pump(self, conn_id: int, src: socket.socket, dst: socket.socket,
              direction: str) -> None:
        try:
            with src.makefile("rb") as reader:
                for line in reader:
                    with self._plan_lock:
                        event = self.plan.draw_net_fault(conn_id, direction)
                    kind = event.kind if event is not None else None
                    if kind is FaultKind.NET_DROP:
                        return
                    if kind is FaultKind.NET_PARTIAL:
                        dst.sendall(line[: max(1, len(line) // 2)])
                        return
                    if kind is FaultKind.NET_STALL:
                        # Bounded wait, abandoned on stop() so shutdown
                        # is never held hostage by a scheduled stall.
                        if self._stop.wait(self.plan.net_stall_seconds):
                            return
                    elif kind is FaultKind.NET_GARBLE:
                        dst.sendall(garble_line(line))
                        continue
                    dst.sendall(line)
                    with self._plan_lock:
                        self.plan.note_net_success(direction)
        except OSError:
            pass  # the paired pump (or stop()) tore the connection down
        finally:
            # First pump to exit kills both sockets, which unblocks the
            # paired pump; the second exit's close is a no-op.
            with self._lock:
                pair = self._conns.pop(conn_id, None)
            if pair is not None:
                for sock in pair:
                    _close(sock)


def _close(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
