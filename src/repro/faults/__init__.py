"""Deterministic fault injection for the simulated storage stack.

The paper's cost model prices strategies assuming I/O always succeeds;
production storage does not.  This subpackage makes failure a
first-class, *reproducible* input:

* :class:`~repro.faults.plan.FaultPlan` -- a seeded schedule of
  transient read/write failures, torn writes, permanent page losses and
  parallel-worker crashes, with an audit log of every injected fault and
  whether recovery consumed it;
* :class:`~repro.faults.disk.FaultyDisk` -- a drop-in
  :class:`~repro.storage.disk.SimulatedDisk` that executes the plan and
  detects torn writes via per-page checksums;
* :class:`~repro.faults.net.ChaosProxy` -- a line-oriented TCP proxy
  that executes the plan's *network* side (connection drops, stalls,
  garbled and partial reply lines) between a query client and server.

Recovery lives in the layers above: the buffer pool retries transient
faults with bounded virtual-clock backoff, the worker pool re-executes
crashed chunks sequentially, and the executor falls back across join
strategies -- each step recorded in an
:class:`~repro.core.report.ExecutionReport`.
"""

from repro.faults.disk import FaultyDisk, page_checksum
from repro.faults.net import ChaosProxy, garble_line
from repro.faults.plan import NET_FAULT_KINDS, FaultEvent, FaultKind, FaultPlan

__all__ = [
    "ChaosProxy",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultyDisk",
    "NET_FAULT_KINDS",
    "garble_line",
    "page_checksum",
]
