"""Cooperative cancellation: one token per query, checked at boundaries.

A :class:`CancellationToken` is created per request (optionally carrying
a deadline) and threaded through
:class:`~repro.core.executor.SpatialQueryExecutor` into the long-running
kernels.  Cancellation is *cooperative*: nothing is interrupted
asynchronously; instead the executor calls :meth:`CancellationToken.check`
at well-defined boundaries --

* before every strategy attempt of the fallback chain,
* before every partition-parallel worker chunk,
* at every tree level of Algorithm SELECT / Algorithm JOIN (and per
  node pop on the DFS path),
* once more after a strategy returns, before its result may be admitted
  to the query cache (a result that finished past its deadline belongs
  to nobody and must not poison the cache).

``check`` raises :class:`~repro.errors.DeadlineExceeded` when the
token's own deadline has passed and :class:`~repro.errors.QueryCancelled`
when :meth:`cancel` was called (drain, client abort, watchdog).  Both
are ``retryable=False`` and deliberately *not* storage/worker errors, so
they unwind straight through the executor's fallback chain instead of
triggering another (equally doomed) strategy.

Tokens transition exactly once.  ``on_cancel`` observes that single
transition regardless of who noticed first -- the service watchdog or
the query's own boundary check -- which is what lets the service meter
``server.deadline_exceeded`` without double counting.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import DeadlineExceeded, QueryCancelled

Clock = Callable[[], float]


class CancellationToken:
    """One query's cancellation flag, with an optional deadline.

    ``deadline`` is an absolute timestamp on ``clock`` (defaults to
    :func:`time.monotonic`); prefer :meth:`with_timeout` to build one
    from a relative budget.  The fast path of :meth:`check` is a flag
    read plus (only when a deadline exists) one clock call -- cheap
    enough for per-tree-level use.
    """

    __slots__ = ("deadline", "_clock", "_error", "_lock", "_on_cancel")

    def __init__(
        self,
        *,
        deadline: float | None = None,
        clock: Clock = time.monotonic,
        on_cancel: Callable[[QueryCancelled], None] | None = None,
    ) -> None:
        self.deadline = deadline
        self._clock = clock
        self._error: QueryCancelled | None = None
        self._lock = threading.Lock()
        self._on_cancel = on_cancel

    @classmethod
    def with_timeout(
        cls,
        seconds: float,
        *,
        clock: Clock = time.monotonic,
        on_cancel: Callable[[QueryCancelled], None] | None = None,
    ) -> "CancellationToken":
        """A token whose deadline is ``seconds`` from now."""
        return cls(deadline=clock() + seconds, clock=clock, on_cancel=on_cancel)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def cancelled(self) -> bool:
        """True once the token fired (explicitly or via its deadline)."""
        return self._error is not None

    @property
    def error(self) -> QueryCancelled | None:
        """The exception :meth:`check` raises, once cancelled."""
        return self._error

    def expired(self) -> bool:
        """Has the deadline passed?  (Does not transition the token.)"""
        return self.deadline is not None and self._clock() >= self.deadline

    def remaining(self) -> float | None:
        """Seconds until the deadline, or None when unbounded."""
        if self.deadline is None:
            return None
        return self.deadline - self._clock()

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def cancel(self, error: QueryCancelled | str | None = None) -> bool:
        """Fire the token; returns True if this call made the transition.

        ``error`` customizes what :meth:`check` raises (an exception
        instance, or a message for a plain :class:`QueryCancelled`).
        Later calls are no-ops: the first cause wins.
        """
        if isinstance(error, str):
            error = QueryCancelled(error)
        elif error is None:
            error = QueryCancelled("query cancelled")
        return self._fire(error)

    def _fire(self, error: QueryCancelled) -> bool:
        with self._lock:
            if self._error is not None:
                return False
            self._error = error
        if self._on_cancel is not None:
            self._on_cancel(error)
        return True

    # ------------------------------------------------------------------
    # The boundary check
    # ------------------------------------------------------------------

    def check(self) -> None:
        """Raise if cancelled, or transition-and-raise if past deadline."""
        error = self._error
        if error is None:
            if self.deadline is None or self._clock() < self.deadline:
                return
            self._fire(DeadlineExceeded(
                f"query exceeded its deadline "
                f"({(self._clock() - self.deadline) * 1000.0:.1f} ms over)"
            ))
            error = self._error
        raise error


def check_cancel(token: "CancellationToken | None") -> None:
    """``token.check()`` tolerant of the common ``None`` (no token) case."""
    if token is not None:
        token.check()
