"""The spatial query executor: one entry point, every strategy.

Strategy names follow the paper's numbering:

========== =====================================================
``scan``        strategy I (nested loop / exhaustive search)
``tree``        strategy II (Algorithm SELECT / Algorithm JOIN)
``join-index``  strategy III (precomputed Valduriez index)
``index-nl``    index-supported join (scan S, probe R's tree)
``zorder``      Orenstein sort-merge (``overlaps`` joins only)
``partition``   partition-parallel grid + plane sweep (``overlaps``)
``auto``        pick by what is available and a selectivity guess
========== =====================================================
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from typing import Any

from repro.core.cancel import CancellationToken, check_cancel
from repro.core.report import AttemptRecord, ExecutionReport
from repro.errors import ExecutionError, JoinError, StorageError, WorkerError
from repro.join.accessor import RelationAccessor
from repro.join.index_join import (
    index_nested_loop_join,
    index_nested_loop_join_swapped,
)
from repro.join.join_index import JoinIndex
from repro.join.nested_loop import RESERVED_PAGES, nested_loop_join, nested_loop_select
from repro.join.result import JoinResult, SelectResult
from repro.join.select import spatial_select
from repro.join.tree_join import tree_join
from repro.join.zorder_merge import zorder_merge_join
from repro.obs.trace import coalesce
from repro.parallel.join import partition_join
from repro.predicates.dispatch import SpatialObject
from repro.predicates.theta import Overlaps, ThetaOperator
from repro.relational.relation import Relation
from repro.storage.costs import CostMeter


@dataclass(slots=True)
class _RegisteredIndex:
    """A join index plus the snapshot it was computed from.

    The relation references keep the operands alive and the captured
    modification counts detect staleness: a mutated base relation
    invalidates the entry.
    """

    rel_r: Relation
    rel_s: Relation
    mod_r: int
    mod_s: int
    index: JoinIndex

    def is_stale(self) -> bool:
        return (
            self.rel_r.modification_count != self.mod_r
            or self.rel_s.modification_count != self.mod_s
        )


#: Order in which :meth:`SpatialQueryExecutor.execute_join` falls back
#: when a strategy dies on a storage or worker failure: the partition
#: sweep first (fastest when applicable), then the synchronized tree
#: join, the z-order merge, and finally the always-applicable nested
#: loop.
FALLBACK_CHAIN: tuple[str, ...] = ("partition", "tree", "zorder", "scan")

#: Executor strategies that can thread the raster-interval refiner
#: between their Theta-filter and exact refinement.
INTERVAL_STRATEGIES: tuple[str, ...] = ("tree", "zorder", "partition")


class SpatialQueryExecutor:
    """Executes spatial selections and joins with pluggable strategies.

    ``workers`` sets the default degree of parallelism for the
    ``partition`` strategy (1 = fully in-process); per-join overrides go
    through :meth:`join`.  ``chunk_timeout`` bounds each parallel worker
    chunk in wall-clock seconds (``None`` = unbounded); a chunk that
    exceeds it is re-executed sequentially.

    ``tracer`` (a :class:`~repro.obs.trace.Tracer`) makes every
    select/join emit a strategy-level span with per-phase and per-level
    children; ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`)
    collects buffer-pool hit ratios, Theta prune rates, QualPairs
    lengths and parallel chunk timings from the layers underneath.  Both
    default to off and cost nothing when off.

    ``cache`` (a :class:`~repro.cache.QueryCache`) short-circuits
    repeated selections and joins: an exact repeat is served at zero
    page reads, a SELECT window nested inside a cached one is refined
    from the stored Theta-candidate set, and misses are admitted under
    the cache's cost-aware policy.  Entries are invalidated by the
    operand relations' modification epochs, so a cached executor never
    serves stale answers.  Default off; with no cache the dispatch path
    is byte-identical to previous behavior.

    ``interval`` enables the raster-interval second tier for joins
    (``Theta -> interval -> exact``, see :mod:`repro.intermediate`):
    ``True`` rasterizes on a data-fitted default grid, an
    :class:`~repro.intermediate.filter.IntervalSpec` fixes the grid,
    ``None``/``False`` keeps the historical exact refinement.  The tier
    applies to the ``tree``, ``zorder`` and ``partition`` strategies
    under the ``overlaps`` operator; every other strategy/operator pair
    ignores it.  Per-object approximations are cached in epoch-pinned
    per-grid stores shared across queries, so a mutated relation is
    re-rasterized and never filtered through stale intervals.

    The executor is *reentrant*: :meth:`select`, :meth:`join` and
    :meth:`execute_join` accept per-call ``tracer``/``metrics``/``cache``
    overrides (falling back to the instance-level handles), keep no
    per-query mutable state on ``self``, and guard the join-index
    registry with a lock -- one executor instance can serve many
    concurrent sessions, each tracing into its own tracer while sharing
    one cache and one metrics registry (see :mod:`repro.server`).
    """

    def __init__(
        self,
        memory_pages: int = 4000,
        workers: int = 1,
        *,
        chunk_timeout: float | None = None,
        tracer=None,
        metrics=None,
        cache=None,
        interval=None,
    ) -> None:
        if memory_pages <= 10:
            raise JoinError(f"memory_pages must exceed 10, got {memory_pages}")
        if workers < 1:
            raise JoinError(f"workers must be positive, got {workers}")
        self.memory_pages = memory_pages
        self.workers = workers
        self.chunk_timeout = chunk_timeout
        self.tracer = coalesce(tracer)
        self.metrics = metrics
        self.cache = cache
        self.interval = interval
        if cache is not None and metrics is not None:
            cache.attach_metrics(metrics)
        self._join_indices: dict[
            tuple[int, int, str, str, str], _RegisteredIndex
        ] = {}
        self._registry_lock = threading.Lock()
        #: Per-grid approximation stores (IntervalSpec -> store), shared
        #: across queries so relation rasterization happens once per
        #: epoch, guarded like the join-index registry.
        self._interval_stores: dict[Any, Any] = {}
        self._interval_lock = threading.Lock()

    def _handles(self, tracer, metrics, cache):
        """Resolve per-call observability/cache overrides (None = default)."""
        return (
            self.tracer if tracer is None else coalesce(tracer),
            self.metrics if metrics is None else metrics,
            self.cache if cache is None else cache,
        )

    # ------------------------------------------------------------------
    # Join-index registry
    # ------------------------------------------------------------------

    def precompute_join_index(
        self,
        rel_r: Relation,
        rel_s: Relation,
        column_r: str,
        column_s: str,
        theta: ThetaOperator,
    ) -> JoinIndex:
        """Build and register a join index for later ``join-index`` runs."""
        ji = JoinIndex.precompute(rel_r, rel_s, column_r, column_s, theta)
        with self._registry_lock:
            self._join_indices[
                self._key(rel_r, rel_s, column_r, column_s, theta)
            ] = _RegisteredIndex(
                rel_r, rel_s,
                rel_r.modification_count, rel_s.modification_count, ji,
            )
        return ji

    def join_index_for(
        self,
        rel_r: Relation,
        rel_s: Relation,
        column_r: str,
        column_s: str,
        theta: ThetaOperator,
    ) -> JoinIndex | None:
        """The registered, still-fresh index for this join, or None.

        Entries whose base relations mutated since precomputation are
        dropped on lookup -- a stale join index silently returns wrong
        answers, which is worse than recomputing.
        """
        key = self._key(rel_r, rel_s, column_r, column_s, theta)
        with self._registry_lock:
            entry = self._join_indices.get(key)
            if entry is None:
                return None
            if entry.is_stale():
                del self._join_indices[key]
                return None
            return entry.index

    @staticmethod
    def _key(rel_r: Relation, rel_s: Relation, column_r: str, column_s: str,
             theta: ThetaOperator) -> tuple[int, int, str, str, str]:
        # Relation *identity*, not name: two distinct relations may share
        # a name, and a registry keyed by name would serve one relation's
        # index for the other's join.  The never-recycled ``uid`` (not
        # ``id()``) keeps the key unambiguous for the process lifetime.
        return (rel_r.uid, rel_s.uid, column_r, column_s, theta.name)

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def select(
        self,
        relation: Relation,
        column: str,
        query: SpatialObject,
        theta: ThetaOperator,
        *,
        strategy: str = "auto",
        order: str = "bfs",
        meter: CostMeter | None = None,
        tracer=None,
        metrics=None,
        cache=None,
        cancel: CancellationToken | None = None,
    ) -> SelectResult:
        """Spatial selection ``{t in relation : query theta t.column}``.

        With a cache attached, an exact or containment hit is served
        inside the ``executor.select`` span (tagged ``cache=exact`` /
        ``cache=containment``) without touching storage; misses execute
        normally, collect the Theta-candidate set as a free byproduct
        of tree traversals, and are offered to the admission policy.
        Admission pins the relation's epoch before dispatch and refuses
        the result if the epoch moved while the query ran -- a torn
        answer computed under a concurrent writer belongs to no epoch.

        ``tracer``/``metrics``/``cache`` override the instance handles
        for this call (per-session tracing over shared state).
        ``cancel`` (a :class:`~repro.core.cancel.CancellationToken`) is
        checked on entry, at every tree level of the traversal, and
        once more before admission -- a result that finished past its
        deadline is discarded, never cached.
        """
        from repro.gridfile.gridfile import GridFile

        check_cancel(cancel)
        tracer, metrics, cache = self._handles(tracer, metrics, cache)
        if meter is None:
            meter = CostMeter()
        if strategy == "auto":
            if relation.has_index_on(column):
                index = relation.index_on(column)
                strategy = "grid" if isinstance(index, GridFile) else "tree"
            else:
                strategy = "scan"
        with tracer.span(
            "executor.select", meter=meter, strategy=strategy
        ) as span:
            if cache is not None:
                with tracer.span("cache.probe", meter=meter) as probe:
                    tier, served = cache.probe_select(
                        relation, column, query, theta,
                        strategy=strategy, order=order, meter=meter,
                    )
                    probe.set_tag("tier", tier or "miss")
                if served is not None:
                    span.set_tag("cache", tier)
                    return served
                span.set_tag("cache", "miss")
            candidates: list | None = None
            if cache is not None and strategy == "tree":
                from repro.cache.keys import window_monotone

                if window_monotone(theta):
                    candidates = []
            epoch = relation.modification_count
            cost_before = meter.total()
            result = self._dispatch_select(
                relation, column, query, theta,
                strategy=strategy, order=order, meter=meter,
                candidates_out=candidates, tracer=tracer, metrics=metrics,
                cancel=cancel,
            )
            check_cancel(cancel)  # a post-deadline result must not be cached
            if cache is not None:
                cache.admit_select(
                    relation, column, query, theta,
                    strategy=strategy, order=order, result=result,
                    candidates=candidates,
                    measured_cost=meter.total() - cost_before,
                    epoch=epoch,
                )
            return result

    def _dispatch_select(
        self,
        relation: Relation,
        column: str,
        query: SpatialObject,
        theta: ThetaOperator,
        *,
        strategy: str,
        order: str,
        meter: CostMeter,
        candidates_out: list | None = None,
        tracer=None,
        metrics=None,
        cancel: CancellationToken | None = None,
    ) -> SelectResult:
        from repro.gridfile.gridfile import GridFile

        tracer = self.tracer if tracer is None else tracer
        metrics = self.metrics if metrics is None else metrics
        if strategy == "scan":
            return nested_loop_select(
                relation, column, query, theta,
                meter=meter, memory_pages=self.memory_pages,
            )
        if strategy == "tree":
            tree = relation.index_on(column)
            return spatial_select(
                tree, query, theta,
                accessor=self._cold_accessor(relation, meter, metrics),
                meter=meter, order=order,
                tracer=tracer, metrics=metrics,
                candidates_out=candidates_out,
                cancel=cancel,
            )
        if strategy == "grid":
            from repro.gridfile.join import grid_select

            grid = relation.index_on(column)
            if not isinstance(grid, GridFile):
                raise JoinError(
                    f"index on {relation.name}.{column} is not a grid file"
                )
            return grid_select(grid, query, theta, meter=meter)
        raise JoinError(f"unknown selection strategy {strategy!r}")

    def _cold_accessor(
        self, relation: Relation, meter: CostMeter, metrics=None
    ) -> RelationAccessor:
        """A relation accessor over a fresh pool charging to ``meter``."""
        from repro.storage.buffer import BufferPool

        pool = BufferPool(relation.buffer_pool.disk, self.memory_pages, meter)
        if metrics is not None:
            pool.attach_metrics(metrics, pool=relation.name)
        return RelationAccessor(relation, pool)

    # ------------------------------------------------------------------
    # Join
    # ------------------------------------------------------------------

    def join(
        self,
        rel_r: Relation,
        column_r: str,
        rel_s: Relation,
        column_s: str,
        theta: ThetaOperator,
        *,
        strategy: str = "auto",
        meter: CostMeter | None = None,
        collect_tuples: bool = False,
        order: str = "bfs",
        workers: int | None = None,
        predicted_cost: float | None = None,
        tracer=None,
        metrics=None,
        cache=None,
        cancel: CancellationToken | None = None,
        interval=None,
    ) -> JoinResult:
        """Spatial join ``rel_r join_theta rel_s`` on the given columns.

        ``workers`` overrides the executor-wide worker count for the
        ``partition`` strategy; other strategies ignore it.

        ``interval`` overrides the executor-wide second-tier setting for
        this call (``None`` = instance default, ``False`` = force exact,
        ``True`` = data-fitted grid, an ``IntervalSpec`` = that grid).
        The filter changes which pairs reach the exact predicate, never
        which pairs are reported -- strategy labels and cache keys are
        identical with and without it.

        With a cache attached, an exact repeat of a join (same operand
        identities and epochs, same predicate, same strategy) is served
        from the stored pair list at zero page reads; symmetric
        operators share one entry across both operand orders.  Misses
        execute normally and are offered to the admission policy, which
        records the strategy this call actually dispatched (callers in
        the fallback chain pass the strategy that *ran*, never the one
        originally requested) alongside ``predicted_cost`` -- the model
        price of that same strategy, when the caller planned one.
        Admission pins both operand epochs before dispatch; results
        computed while either operand mutated are refused.

        ``tracer``/``metrics``/``cache`` override the instance handles
        for this call (per-session tracing over shared state).
        ``cancel`` is checked on entry, at tree-level and
        partition-chunk boundaries inside the strategies, and once more
        before admission (no post-deadline cache fills).
        """
        check_cancel(cancel)
        tracer, metrics, cache = self._handles(tracer, metrics, cache)
        if meter is None:
            meter = CostMeter()
        if workers is None:
            workers = self.workers
        if interval is None:
            interval = self.interval
        if strategy == "auto":
            strategy = self._pick_join_strategy(rel_r, column_r, rel_s, column_s, theta)

        with tracer.span(
            "executor.join", meter=meter, strategy=strategy
        ) as span:
            if cache is not None:
                with tracer.span("cache.probe", meter=meter) as probe:
                    tier, served = cache.probe_join(
                        rel_r, column_r, rel_s, column_s, theta,
                        strategy=strategy, collect_tuples=collect_tuples,
                        meter=meter,
                    )
                    probe.set_tag("tier", tier or "miss")
                if served is not None:
                    span.set_tag("cache", tier)
                    return served
                span.set_tag("cache", "miss")
            interval_filter = self._resolve_interval(
                interval, strategy, rel_r, column_r, rel_s, column_s, theta
            )
            if interval_filter is not None:
                span.set_tag("interval", interval_filter.spec.level)
            epoch_r = rel_r.modification_count
            epoch_s = rel_s.modification_count
            cost_before = meter.total()
            result = self._dispatch_join(
                rel_r, column_r, rel_s, column_s, theta,
                strategy=strategy, meter=meter,
                collect_tuples=collect_tuples, order=order, workers=workers,
                tracer=tracer, metrics=metrics, cancel=cancel,
                interval_filter=interval_filter,
            )
            check_cancel(cancel)  # a post-deadline result must not be cached
            if cache is not None:
                cache.admit_join(
                    rel_r, column_r, rel_s, column_s, theta,
                    strategy=strategy, result=result,
                    collect_tuples=collect_tuples,
                    measured_cost=meter.total() - cost_before,
                    predicted_cost=predicted_cost,
                    epoch_r=epoch_r, epoch_s=epoch_s,
                )
            return result

    def _dispatch_join(
        self,
        rel_r: Relation,
        column_r: str,
        rel_s: Relation,
        column_s: str,
        theta: ThetaOperator,
        *,
        strategy: str,
        meter: CostMeter,
        collect_tuples: bool,
        order: str,
        workers: int,
        tracer=None,
        metrics=None,
        cancel: CancellationToken | None = None,
        interval_filter=None,
    ) -> JoinResult:
        tracer = self.tracer if tracer is None else tracer
        metrics = self.metrics if metrics is None else metrics
        if strategy == "scan":
            return nested_loop_join(
                rel_r, rel_s, column_r, column_s, theta,
                memory_pages=self.memory_pages, meter=meter,
                collect_tuples=collect_tuples,
            )
        if strategy == "tree":
            tree_r = rel_r.index_on(column_r)
            tree_s = rel_s.index_on(column_s)
            return tree_join(
                tree_r, tree_s, theta,
                accessor_r=self._cold_accessor(rel_r, meter, metrics),
                accessor_s=self._cold_accessor(rel_s, meter, metrics),
                meter=meter, order=order, collect_tuples=collect_tuples,
                tracer=tracer, metrics=metrics, cancel=cancel,
                refiner=interval_filter,
            )
        if strategy == "index-nl":
            tree_r = rel_r.index_on(column_r)
            return index_nested_loop_join(
                rel_s, column_s, tree_r, theta,
                accessor_r=self._cold_accessor(rel_r, meter, metrics),
                meter=meter, memory_pages=self.memory_pages, order=order,
            )
        if strategy == "index-nl-swapped":
            tree_s = rel_s.index_on(column_s)
            return index_nested_loop_join_swapped(
                rel_r, column_r, tree_s, theta,
                accessor_s=self._cold_accessor(rel_s, meter, metrics),
                meter=meter, memory_pages=self.memory_pages, order=order,
            )
        if strategy == "join-index":
            ji = self.join_index_for(rel_r, rel_s, column_r, column_s, theta)
            if ji is None:
                raise JoinError(
                    "no join index registered for this join; call "
                    "precompute_join_index first"
                )
            return ji.join(
                meter=meter, memory_pages=self.memory_pages,
                collect_tuples=collect_tuples,
            )
        if strategy == "grid":
            from repro.gridfile.gridfile import GridFile
            from repro.gridfile.join import grid_join

            grid_r = rel_r.index_on(column_r)
            grid_s = rel_s.index_on(column_s)
            if not isinstance(grid_r, GridFile) or not isinstance(grid_s, GridFile):
                raise JoinError("grid join requires grid-file indices on both sides")
            return grid_join(grid_r, grid_s, theta, meter=meter)
        if strategy == "zorder":
            if not isinstance(theta, Overlaps):
                raise JoinError(
                    "the z-order sort-merge strategy applies to the "
                    "'overlaps' operator only (Section 2.2)"
                )
            universe = self._common_universe(rel_r, column_r, rel_s, column_s)
            return zorder_merge_join(
                rel_r, rel_s, column_r, column_s,
                universe=universe, meter=meter, memory_pages=self.memory_pages,
                tracer=tracer, refiner=interval_filter,
            )
        if strategy == "partition":
            if not isinstance(theta, Overlaps):
                raise JoinError(
                    "the partition-parallel strategy applies to the "
                    "'overlaps' operator only (its plane-sweep filter is "
                    "MBR intersection)"
                )
            return partition_join(
                rel_r, rel_s, column_r, column_s, theta,
                workers=workers, meter=meter, memory_pages=self.memory_pages,
                collect_tuples=collect_tuples,
                fault_plan=self._fault_plan_for(rel_r, rel_s),
                chunk_timeout=self.chunk_timeout,
                tracer=tracer, metrics=metrics, cancel=cancel,
                refiner=interval_filter,
            )
        raise JoinError(f"unknown join strategy {strategy!r}")

    # ------------------------------------------------------------------
    # Resilient execution
    # ------------------------------------------------------------------

    def execute_join(
        self,
        rel_r: Relation,
        column_r: str,
        rel_s: Relation,
        column_s: str,
        theta: ThetaOperator,
        *,
        strategy: str = "auto",
        meter: CostMeter | None = None,
        collect_tuples: bool = False,
        order: str = "bfs",
        workers: int | None = None,
        plan=None,
        tracer=None,
        metrics=None,
        cache=None,
        cancel: CancellationToken | None = None,
        interval=None,
    ) -> tuple[JoinResult, ExecutionReport]:
        """Join with a strategy-fallback chain and a full execution report.

        The requested (or auto-picked) strategy runs first; if it dies on
        a storage or worker failure -- a transient fault that outlasted
        the buffer pool's retry budget, a permanently lost page, a worker
        crash that sequential re-execution could not absorb -- the next
        applicable strategy of :data:`FALLBACK_CHAIN` is tried, until one
        succeeds or the chain is exhausted (:class:`ExecutionError`).

        Every attempt is recorded in the returned
        :class:`~repro.core.report.ExecutionReport`: strategy, outcome,
        failure cause, per-attempt I/O retries and backoff.  When the
        operands live on a :class:`~repro.faults.disk.FaultyDisk`, the
        report also enumerates the faults injected during this execution
        and whether each was consumed by a retry or recovery.  ``meter``
        accumulates the cost of *all* attempts, failed ones included --
        failed work is work.

        On a clean run this is exactly :meth:`join` plus a one-attempt
        report with zero retries and zero fallbacks.

        ``plan`` (a :class:`~repro.core.optimizer.JoinPlan`) enables
        model-vs-measured drift detection: the winning attempt's metered
        total is compared against the cost formula that prices the
        strategy which actually ran, and the resulting
        :class:`~repro.obs.drift.DriftReport` is attached to the
        execution report (``report.drift``).

        With a cache attached, each attempt is admitted under the
        strategy it actually ran (the attempt's own), priced by the
        plan's prediction *for that strategy* -- a fallback's entry
        never carries the requested strategy's label or cost.

        ``cancel`` is re-checked before every attempt of the chain, and
        :class:`~repro.errors.QueryCancelled` /
        :class:`~repro.errors.DeadlineExceeded` raised inside an attempt
        are *not* fallback triggers: a cancelled partition join must not
        burn the remaining deadline on a doomed tree join.  They unwind
        straight out of the chain.

        ``interval`` forwards the second-tier setting to every attempt
        (see :meth:`join`).  When the winning attempt actually ran the
        filter, drift detection and admission pricing look up the plan's
        ``<model>+INT`` prediction -- the model is held to the cost of
        the path that executed, not the unfiltered one.
        """
        tracer, metrics, cache = self._handles(tracer, metrics, cache)
        if meter is None:
            meter = CostMeter()
        if interval is None:
            interval = self.interval
        first = strategy
        if first == "auto":
            first = self._pick_join_strategy(rel_r, column_r, rel_s, column_s, theta)
        chain = [first] + [
            s for s in FALLBACK_CHAIN
            if s != first
            and self._strategy_applicable(s, rel_r, column_r, rel_s, column_s, theta)
        ]

        fault_plan = self._fault_plan_for(rel_r, rel_s)
        events_before = len(fault_plan.events) if fault_plan is not None else 0

        report = ExecutionReport(
            query=(
                f"JOIN {rel_r.name}.{column_r} {theta.name} "
                f"{rel_s.name}.{column_s}"
            ),
            requested_strategy=strategy,
        )
        result: JoinResult | None = None
        for strat in chain:
            check_cancel(cancel)
            attempt_meter = CostMeter(charges=meter.charges)
            attempt_label = (
                strat + "+interval"
                if self._interval_active(interval, strat, theta) else strat
            )
            try:
                result = self.join(
                    rel_r, column_r, rel_s, column_s, theta,
                    strategy=strat, meter=attempt_meter,
                    collect_tuples=collect_tuples, order=order, workers=workers,
                    predicted_cost=self._planned_cost(plan, attempt_label),
                    tracer=tracer, metrics=metrics, cache=cache,
                    cancel=cancel, interval=interval,
                )
            except (StorageError, WorkerError) as exc:
                meter.absorb(attempt_meter)
                report.attempts.append(AttemptRecord(
                    strategy=strat, ok=False,
                    error_type=type(exc).__name__, error=str(exc),
                    io_retries=attempt_meter.io_retries,
                    backoff_steps=attempt_meter.backoff_steps,
                    stats=attempt_meter.snapshot(),
                ))
                continue
            meter.absorb(attempt_meter)
            report.attempts.append(AttemptRecord(
                strategy=strat, ok=True,
                io_retries=attempt_meter.io_retries,
                backoff_steps=attempt_meter.backoff_steps,
                stats=attempt_meter.snapshot(),
            ))
            if result.strategy.startswith("cached-"):
                # Served by the query cache inside :meth:`join`: record
                # the tier so reports and the CLI can show it.
                report.cached = result.strategy[len("cached-"):]
            break

        if fault_plan is not None:
            new_events = fault_plan.events[events_before:]
            report.fault_events = [e.describe() for e in new_events]
            report.fault_summary = {
                "injected": len(new_events),
                "consumed": sum(1 for e in new_events if e.consumed),
                "outstanding": sum(1 for e in new_events if not e.consumed),
            }

        if result is None:
            raise ExecutionError(
                "every join strategy failed: "
                + "; ".join(a.describe() for a in report.attempts),
                report,
            )

        if plan is not None and report.cached is None:
            # Drift compares the model against a *measured execution*;
            # a cache hit measured ~zero by design, which is savings,
            # not model drift -- cached runs are skipped.
            from repro.obs.drift import drift_from_plan

            winner = next(a for a in report.attempts if a.ok)
            winner_label = (
                winner.strategy + "+interval"
                if self._interval_active(interval, winner.strategy, theta)
                else winner.strategy
            )
            report.drift = drift_from_plan(
                plan, winner_label, winner.stats.get("total", 0.0),
                query=report.query,
            )
        if metrics is not None:
            metrics.absorb_meter(meter, strategy=report.strategy)
        return result, report

    @staticmethod
    def _planned_cost(plan, strategy: str) -> float | None:
        """The plan's predicted cost for the strategy this attempt runs.

        A plan prices every applicable model; the fallback chain may
        execute a different strategy than the plan chose, so the price
        is looked up per attempt -- admission must never see strategy A
        labelled with strategy B's cost.
        """
        if plan is None:
            return None
        from repro.obs.drift import model_for_strategy

        model = model_for_strategy(strategy, plan.predicted_costs)
        if model is None:
            return None
        return plan.predicted_costs[model]

    def plan_and_execute_join(
        self,
        rel_r: Relation,
        column_r: str,
        rel_s: Relation,
        column_s: str,
        theta: ThetaOperator,
        **kwargs: Any,
    ) -> tuple[JoinResult, ExecutionReport]:
        """Optimize with the Section 4 formulas, execute, check for drift.

        Convenience wrapper: runs :func:`~repro.core.optimizer.plan_join`
        (telling it whether a fresh join index is registered), executes
        the plan's strategy through :meth:`execute_join`, and returns the
        result with a drift-annotated report.  Extra keyword arguments
        are forwarded to :meth:`execute_join`.

        When the executor (or the call) enables the interval tier, the
        planner weighs its probe/build/save delta per query
        (``interval=...`` to :func:`~repro.core.optimizer.plan_join`) and
        the *plan's* verdict decides whether the filter actually runs --
        ``plan.use_interval`` wins over the blanket setting.
        """
        from repro.core.optimizer import executable_strategy, plan_join

        ji = self.join_index_for(rel_r, rel_s, column_r, column_s, theta)
        cache = kwargs.get("cache") or self.cache
        interval = kwargs.pop("interval", None)
        if interval is None:
            interval = self.interval
        plan = plan_join(
            rel_r, column_r, rel_s, column_s, theta,
            join_index_available=ji is not None,
            memory_pages=self.memory_pages,
            workers=self.workers,
            cache=cache,
            interval=interval or None,
        )
        if interval:
            kwargs["interval"] = plan.interval_spec if plan.use_interval else False
        return self.execute_join(
            rel_r, column_r, rel_s, column_s, theta,
            strategy=executable_strategy(plan), plan=plan, **kwargs,
        )

    def _strategy_applicable(
        self,
        strategy: str,
        rel_r: Relation,
        column_r: str,
        rel_s: Relation,
        column_s: str,
        theta: ThetaOperator,
    ) -> bool:
        """Can this fallback strategy run at all on these operands?"""
        if strategy in ("partition", "zorder"):
            return isinstance(theta, Overlaps)
        if strategy == "tree":
            return rel_r.has_index_on(column_r) and rel_s.has_index_on(column_s)
        return strategy == "scan"

    @staticmethod
    def _fault_plan_for(rel_r: Relation, rel_s: Relation):
        """The operands' fault plan, when they live on a FaultyDisk."""
        for rel in (rel_r, rel_s):
            plan = getattr(rel.buffer_pool.disk, "plan", None)
            if plan is not None:
                return plan
        return None

    # ------------------------------------------------------------------
    # Nearest-neighbor queries
    # ------------------------------------------------------------------

    def nearest(
        self,
        relation: Relation,
        column: str,
        query: Any,
        k: int = 1,
        *,
        meter: CostMeter | None = None,
    ) -> list[tuple[float, Any]]:
        """The ``k`` tuples whose spatial column is closest to ``query``.

        Requires an R-tree index on the column (branch-and-bound needs
        the hierarchy).  Returns ``(distance, tuple)`` pairs, nearest
        first.
        """
        from repro.trees.knn import nearest_neighbors
        from repro.trees.rtree import RTree

        if meter is None:
            meter = CostMeter()
        index = relation.index_on(column)
        if not isinstance(index, RTree):
            raise JoinError(
                f"nearest-neighbor search needs an R-tree index on "
                f"{relation.name}.{column}"
            )
        accessor = self._cold_accessor(relation, meter, self.metrics)
        found = nearest_neighbors(index, query, k=k, meter=meter)
        return [(dist, accessor.visit(tid, None)) for dist, tid in found]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _pick_join_strategy(
        self,
        rel_r: Relation,
        column_r: str,
        rel_s: Relation,
        column_s: str,
        theta: ThetaOperator,
    ) -> str:
        """Availability-driven pick, mirroring the paper's conclusions.

        A registered join index wins outright (lookup is cheapest when it
        exists and the study shows it superior at low selectivity, the
        regime precomputation targets).  Overlap joins whose operands fit
        in memory go to the partition-parallel plane sweep -- it needs no
        index, emits no duplicates, and dominates tree joins on in-memory
        workloads (Tsitsigkos & Mamoulis et al., 2019).  Otherwise two
        trees enable the generalization-tree join, one tree the
        index-supported join, and the nested loop remains the fallback.
        """
        if self.join_index_for(rel_r, rel_s, column_r, column_s, theta) is not None:
            return "join-index"
        if isinstance(theta, Overlaps) and self._fits_in_memory(rel_r, rel_s):
            return "partition"
        has_r = rel_r.has_index_on(column_r)
        has_s = rel_s.has_index_on(column_s)
        if has_r and has_s:
            return "tree"
        if has_r:
            return "index-nl"
        if has_s:
            # Probe S's tree while scanning R: same strategy, swapped roles.
            return "index-nl-swapped"
        return "scan"

    def _fits_in_memory(self, rel_r: Relation, rel_s: Relation) -> bool:
        """True when both operands fit the usable ``M - 10`` page budget."""
        return rel_r.num_pages + rel_s.num_pages <= self.memory_pages - RESERVED_PAGES

    @staticmethod
    def _interval_active(interval, strategy: str, theta: ThetaOperator) -> bool:
        """Would the second tier run for this (setting, strategy, theta)?"""
        return (
            bool(interval)
            and strategy in INTERVAL_STRATEGIES
            and isinstance(theta, Overlaps)
        )

    def _resolve_interval(
        self,
        interval,
        strategy: str,
        rel_r: Relation,
        column_r: str,
        rel_s: Relation,
        column_s: str,
        theta: ThetaOperator,
    ):
        """The :class:`~repro.intermediate.filter.IntervalFilter` for this
        call, or ``None`` for the exact path.

        The filter's memo is seeded from the executor's per-grid
        :class:`~repro.intermediate.store.ApproximationStore`, which pins
        each relation's ``modification_count`` at build time -- a mutated
        operand re-rasterizes instead of reusing stale intervals.  The
        filter itself is a throwaway per-call object (its on-demand memo
        may absorb tree node regions that the shared store must not
        retain across epochs).
        """
        if not self._interval_active(interval, strategy, theta):
            return None
        from repro.intermediate import (
            ApproximationStore,
            IntervalFilter,
            IntervalSpec,
        )

        if isinstance(interval, IntervalSpec):
            spec = interval
        else:
            spec = IntervalSpec(
                universe=self._common_universe(rel_r, column_r, rel_s, column_s)
            )
        with self._interval_lock:
            store = self._interval_stores.get(spec)
            if store is None:
                store = ApproximationStore(spec)
                self._interval_stores[spec] = store
            tables = dict(store.table_for(rel_r, column_r))
            tables.update(store.table_for(rel_s, column_s))
        return IntervalFilter(theta, spec, tables)

    def _common_universe(self, rel_r: Relation, column_r: str,
                         rel_s: Relation, column_s: str):
        from repro.geometry.rect import Rect

        mbrs = [t[column_r].mbr() for t in rel_r.scan()]
        mbrs += [t[column_s].mbr() for t in rel_s.scan()]
        if not mbrs:
            return Rect(0.0, 0.0, 1.0, 1.0)
        u = Rect.union_of(mbrs)
        # Grow degenerate extents so the z-grid has positive area.
        pad_x = 1.0 if u.width == 0 else 0.0
        pad_y = 1.0 if u.height == 0 else 0.0
        return Rect(u.xmin, u.ymin, u.xmax + pad_x, u.ymax + pad_y)
