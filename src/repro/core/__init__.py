"""High-level public API: plan and execute spatial selections and joins.

This is the layer a downstream user talks to:

* :class:`~repro.core.executor.SpatialQueryExecutor` runs a selection or
  join with an explicitly chosen strategy or an automatic pick, returning
  results together with the cost breakdown;
* :class:`~repro.core.comparison.StrategyComparison` runs *all* applicable
  strategies on the same inputs and tabulates their measured costs --
  the empirical counterpart of the paper's comparative study.
"""

from repro.core.executor import FALLBACK_CHAIN, SpatialQueryExecutor
from repro.core.comparison import StrategyComparison
from repro.core.optimizer import JoinPlan, executable_strategy, plan_join
from repro.core.report import AttemptRecord, ExecutionReport

__all__ = [
    "AttemptRecord",
    "ExecutionReport",
    "FALLBACK_CHAIN",
    "SpatialQueryExecutor",
    "StrategyComparison",
    "JoinPlan",
    "plan_join",
    "executable_strategy",
]
