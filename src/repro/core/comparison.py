"""Run every applicable strategy on one query and tabulate costs.

This is the empirical mirror of the paper's comparative study: instead of
plugging parameters into the Section 4 formulas, the strategies are
actually executed against the simulated storage and their meters read
out.  All strategies must of course return the same match set -- the
comparison raises if they disagree, which doubles as an integration
check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import JoinError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.obs.drift import DriftReport
from repro.core.executor import SpatialQueryExecutor
from repro.core.report import ExecutionReport
from repro.join.result import JoinResult, SelectResult
from repro.predicates.dispatch import SpatialObject
from repro.predicates.theta import Overlaps, ThetaOperator
from repro.relational.relation import Relation
from repro.storage.costs import COUNTER_FIELDS, CostMeter

#: Meter counters the fixed table columns already summarize; everything
#: else declared on :class:`CostMeter` renders as an extra column when
#: non-zero.  Derived from the dataclass, not a hand-kept list, so a
#: counter added to the meter can never silently vanish from the table.
_CORE_COUNTERS = frozenset({
    "page_reads", "page_writes", "theta_filter_evals",
    "theta_exact_evals", "update_computations",
})


@dataclass(slots=True)
class ComparisonRow:
    """One strategy's measured costs.

    ``counters`` carries *every* :class:`CostMeter` counter of the run
    (keys are the meter's declared fields); the named attributes remain
    as convenient views of the classic columns.
    """

    strategy: str
    matches: int
    page_reads: int
    page_writes: int
    predicate_evals: int
    update_computations: int
    total_cost: float
    counters: dict[str, int] = field(default_factory=dict)


@dataclass(slots=True)
class ComparisonReport:
    """All strategies' rows plus the agreed-on match count.

    ``execution_reports`` is populated by resilient comparisons: one
    :class:`~repro.core.report.ExecutionReport` per strategy, recording
    retries, fallbacks, and consumed faults for that strategy's run.
    """

    query: str
    rows: list[ComparisonRow] = field(default_factory=list)
    execution_reports: dict[str, ExecutionReport] = field(default_factory=dict)
    drift: DriftReport | None = None

    def cheapest(self) -> ComparisonRow:
        if not self.rows:
            raise JoinError("empty comparison report")
        return min(self.rows, key=lambda r: r.total_cost)

    def row(self, strategy: str) -> ComparisonRow:
        for r in self.rows:
            if r.strategy == strategy:
                return r
        raise JoinError(f"no row for strategy {strategy!r}")

    def extra_counter_names(self) -> list[str]:
        """Meter counters beyond the classic columns, in declaration
        order, that at least one row actually incremented.

        Driven by :data:`~repro.storage.costs.COUNTER_FIELDS` (itself
        derived from the ``CostMeter`` dataclass), so counters added to
        the meter -- io_retries, log_writes, cache_probes, the interval
        tier's counters -- show up here without touching this module.
        """
        return [
            name for name in COUNTER_FIELDS
            if name not in _CORE_COUNTERS
            and any(r.counters.get(name, 0) for r in self.rows)
        ]

    def format_table(self) -> str:
        extras = self.extra_counter_names()
        header = (
            f"{'strategy':<18}{'matches':>9}{'reads':>9}{'writes':>9}"
            f"{'evals':>11}{'updates':>9}"
            + "".join(f"{name:>{max(9, len(name) + 2)}}" for name in extras)
            + f"{'total':>14}"
        )
        lines = [self.query, header, "-" * len(header)]
        for r in sorted(self.rows, key=lambda r: r.total_cost):
            extra_cells = "".join(
                f"{r.counters.get(name, 0):>{max(9, len(name) + 2)}}"
                for name in extras
            )
            lines.append(
                f"{r.strategy:<18}{r.matches:>9}{r.page_reads:>9}"
                f"{r.page_writes:>9}{r.predicate_evals:>11}"
                f"{r.update_computations:>9}{extra_cells}{r.total_cost:>14.1f}"
            )
        if self.drift is not None:
            lines.append("")
            lines.append(self.drift.format())
        return "\n".join(lines)


class StrategyComparison:
    """Executes a query under every applicable strategy and compares."""

    def __init__(self, memory_pages: int = 4000) -> None:
        self.executor = SpatialQueryExecutor(memory_pages)

    def compare_select(
        self,
        relation: Relation,
        column: str,
        query: SpatialObject,
        theta: ThetaOperator,
        *,
        orders: tuple[str, ...] = ("bfs",),
    ) -> ComparisonReport:
        """Run scan and (if indexed) tree selection; verify agreement."""
        report = ComparisonReport(query=f"SELECT {relation.name}.{column} {theta.name}")
        reference: set | None = None

        def run(strategy: str, order: str = "bfs") -> SelectResult:
            meter = CostMeter()
            res = self.executor.select(
                relation, column, query, theta,
                strategy=strategy, order=order, meter=meter,
            )
            label = strategy if order == "bfs" else f"{strategy}-{order}"
            report.rows.append(_row_from(label, len(res.tids), res.stats))
            return res

        scan_res = run("scan")
        reference = set(scan_res.tids)
        if relation.has_index_on(column):
            for order in orders:
                tree_res = run("tree", order)
                if set(tree_res.tids) != reference:
                    raise JoinError(
                        f"strategy disagreement: tree-{order} found "
                        f"{len(tree_res.tids)} matches, scan {len(reference)}"
                    )
        return report

    def compare_join(
        self,
        rel_r: Relation,
        column_r: str,
        rel_s: Relation,
        column_s: str,
        theta: ThetaOperator,
        *,
        include_join_index: bool = True,
        include_zorder: bool = False,
        include_partition: bool = True,
        resilient: bool = False,
        check_drift: bool = False,
        interval=None,
    ) -> ComparisonReport:
        """Run every applicable join strategy; verify agreement.

        With ``resilient=True`` each strategy runs through
        :meth:`SpatialQueryExecutor.execute_join` -- transient storage
        faults are retried, failed strategies fall back down the chain,
        and the per-strategy :class:`ExecutionReport` lands in
        ``report.execution_reports``.  The agreement check is unchanged:
        whatever survived must produce the reference pair set.

        With ``check_drift=True`` the join is additionally planned once
        with the Section 4 cost formulas and every measured strategy the
        plan can price gets a predicted-vs-measured row in
        ``report.drift`` -- the empirical table and the model's claims
        about it, side by side.

        ``interval`` forwards the raster-interval second-tier setting to
        every strategy run (see :meth:`SpatialQueryExecutor.join`); the
        agreement check then doubles as a filter-exactness check.
        """
        report = ComparisonReport(
            query=(
                f"JOIN {rel_r.name}.{column_r} {theta.name} {rel_s.name}.{column_s}"
            )
        )

        def run(strategy: str) -> JoinResult:
            meter = CostMeter()
            if resilient:
                res, exec_report = self.executor.execute_join(
                    rel_r, column_r, rel_s, column_s, theta,
                    strategy=strategy, meter=meter, interval=interval,
                )
                report.execution_reports[strategy] = exec_report
                # Strategy extras (grid size, workers, ...) come from the
                # winning attempt; the counters cover *all* attempts.
                stats = dict(res.stats)
                stats.update(meter.snapshot())
            else:
                res = self.executor.join(
                    rel_r, column_r, rel_s, column_s, theta,
                    strategy=strategy, meter=meter, interval=interval,
                )
                stats = res.stats
            report.rows.append(_row_from(strategy, len(res.pair_set()), stats))
            return res

        reference = run("scan").pair_set()

        candidates = []
        if rel_r.has_index_on(column_r) and rel_s.has_index_on(column_s):
            candidates.append("tree")
        if rel_r.has_index_on(column_r):
            candidates.append("index-nl")
        if include_join_index:
            if self.executor.join_index_for(rel_r, rel_s, column_r, column_s, theta) is None:
                self.executor.precompute_join_index(
                    rel_r, rel_s, column_r, column_s, theta
                )
            candidates.append("join-index")
        if include_zorder and isinstance(theta, Overlaps):
            candidates.append("zorder")
        if include_partition and isinstance(theta, Overlaps):
            candidates.append("partition")

        for strategy in candidates:
            res = run(strategy)
            if res.pair_set() != reference:
                raise JoinError(
                    f"strategy disagreement: {strategy} found "
                    f"{len(res.pair_set())} pairs, scan {len(reference)}"
                )

        if check_drift:
            from repro.core.optimizer import plan_join
            from repro.obs.drift import drift_from_measurements

            ji = self.executor.join_index_for(
                rel_r, rel_s, column_r, column_s, theta
            )
            plan = plan_join(
                rel_r, column_r, rel_s, column_s, theta,
                join_index_available=ji is not None,
                memory_pages=self.executor.memory_pages,
                workers=self.executor.workers,
            )
            report.drift = drift_from_measurements(
                plan,
                [(r.strategy, r.total_cost) for r in report.rows],
                query=report.query,
            )
        return report


def _row_from(strategy: str, matches: int, stats: dict[str, float]) -> ComparisonRow:
    return ComparisonRow(
        strategy=strategy,
        matches=matches,
        page_reads=int(stats.get("page_reads", 0)),
        page_writes=int(stats.get("page_writes", 0)),
        predicate_evals=int(
            stats.get("theta_filter_evals", 0) + stats.get("theta_exact_evals", 0)
        ),
        update_computations=int(stats.get("update_computations", 0)),
        total_cost=float(stats.get("total", 0.0)),
        counters={name: int(stats.get(name, 0)) for name in COUNTER_FIELDS},
    )
