"""Cost-based strategy choice: the paper's model used as an optimizer.

The comparative study (Section 4.5) tells a query optimizer exactly what
it needs: given a selectivity, which strategy is cheapest?  This module
closes the loop -- it estimates the selectivity from the actual data by
sampling, instantiates the Section 4 cost formulas at the *actual*
relation geometry (tree height and fan-out read off the attached index,
page arithmetic off the relation), and ranks the applicable strategies.

``explain`` returns the full decision record: the estimate, each
strategy's predicted cost, and the pick -- so callers can audit a choice
the way they would read an EXPLAIN plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import JoinError
from repro.costmodel.distributions import make_distribution
from repro.costmodel.estimation import (
    IntervalResolutionEstimate,
    SelectivityEstimate,
    estimate_interval_resolution,
    estimate_join_selectivity,
)
from repro.costmodel.join_costs import (
    d_join_index,
    d_nested_loop,
    d_partition,
    d_tree_clustered,
    d_tree_unclustered,
    with_interval_filter,
)
from repro.costmodel.parameters import ModelParameters
from repro.predicates.theta import Overlaps, ThetaOperator
from repro.relational.relation import Relation


@dataclass(slots=True)
class JoinPlan:
    """The optimizer's decision record for one join."""

    strategy: str
    estimate: SelectivityEstimate
    parameters: ModelParameters
    predicted_costs: dict[str, float] = field(default_factory=dict)
    #: Probability the query cache serves this join without executing.
    hit_probability: float = 0.0
    #: ``predicted_costs`` scaled by ``1 - hit_probability``: the
    #: expected cost once cache hits are free.  ``predicted_costs``
    #: stays raw so drift detection compares model vs. an actual
    #: *execution*, never a cache serve.
    discounted_costs: dict[str, float] = field(default_factory=dict)
    #: Whether the raster-interval second tier is predicted to pay for
    #: the chosen strategy (its ``<model>+INT`` entry beats the base).
    use_interval: bool = False
    #: The sampled resolution estimate the decision was based on.
    interval_resolution: IntervalResolutionEstimate | None = None
    #: The grid the filter would rasterize on (an ``IntervalSpec``).
    interval_spec: object | None = None

    def format_explain(self) -> str:
        lines = [
            f"estimated selectivity: p = {self.estimate.p:.3e} "
            f"({self.estimate.matches}/{self.estimate.sample_pairs} sampled pairs, "
            f"std err {self.estimate.std_error:.1e})",
            f"model: n={self.parameters.n} k={self.parameters.k} "
            f"N={self.parameters.N} m={self.parameters.m}",
            "predicted costs:",
        ]
        for name, cost in sorted(self.predicted_costs.items(), key=lambda kv: kv[1]):
            marker = "  -> " if name == self.strategy else "     "
            lines.append(f"{marker}{name:12s} {cost:16.1f}")
        if self.interval_resolution is not None:
            res = self.interval_resolution
            lines.append(
                f"interval filter: {'on' if self.use_interval else 'off'} "
                f"(resolves {res.resolve_fraction:.0%} of "
                f"{res.candidates} sampled candidates)"
            )
        if self.hit_probability > 0.0:
            best = self.discounted_costs.get(
                self.strategy, self.predicted_costs.get(self.strategy, 0.0)
            )
            lines.append(
                f"cache hit probability: {self.hit_probability:.2f} "
                f"(expected cost {best:.1f})"
            )
        return "\n".join(lines)


#: Model-strategy name -> executor strategy name.
_EXECUTABLE = {
    "D_I": "scan",
    "D_IIa": "tree",
    "D_IIb": "tree",
    "D_III": "join-index",
    "D_PAR": "partition",
}


def fit_parameters(
    rel_r: Relation,
    column_r: str,
    p: float,
    *,
    memory_pages: int = 4000,
) -> ModelParameters:
    """Model parameters matching the actual relation and index geometry.

    The balanced-tree abstraction is fitted to the attached index: ``k``
    is the index fan-out, ``n`` the smallest height making the full tree
    at least as large as the relation.  Page arithmetic comes from the
    relation itself.
    """
    n_tuples = max(2, len(rel_r))
    if rel_r.has_index_on(column_r):
        index = rel_r.index_on(column_r)
        k = getattr(index, "max_entries", None) or getattr(index, "k", 10)
    else:
        k = 10
    k = max(2, int(k))
    n = max(1, math.ceil(math.log(n_tuples * (k - 1) + 1, k)) - 1)
    return ModelParameters(
        n=n,
        k=k,
        p=min(1.0, max(0.0, p)),
        v=rel_r.record_size,
        l=rel_r.utilization,
        h=n,
        s=rel_r.buffer_pool.disk.page_size,
        z=100,
        big_m=max(11, memory_pages),
    )


def plan_join(
    rel_r: Relation,
    column_r: str,
    rel_s: Relation,
    column_s: str,
    theta: ThetaOperator,
    *,
    join_index_available: bool = False,
    memory_pages: int = 4000,
    sample_pairs: int = 400,
    seed: int = 0,
    distribution: str = "uniform",
    workers: int = 1,
    cache=None,
    interval=None,
    interval_sample_pairs: int = 200,
) -> JoinPlan:
    """Estimate, predict, rank -- and return the full decision record.

    Only executable strategies are ranked: the tree strategies require
    indices on both columns, the join-index strategy requires
    ``join_index_available``, and the partition-parallel sweep (``D_PAR``,
    predicted at ``workers`` workers) requires the ``overlaps`` operator.
    The UNIFORM distribution is the sensible default when nothing is
    known about the operator's locality.

    When a :class:`~repro.cache.cache.QueryCache` is passed, the plan
    also carries the cache's hit probability for this join and each
    strategy's cost discounted by it.  The discount is uniform -- a hit
    serves the answer regardless of which strategy would have computed
    it -- so the *ranking* is unchanged; what changes is the expected
    cost a caller should budget for.

    ``interval`` asks the planner to also weigh the raster-interval
    second tier: pass an
    :class:`~repro.intermediate.filter.IntervalSpec` (or ``True`` for a
    data-fitted default grid).  The planner samples how many candidate
    pairs the intervals resolve outright
    (:func:`~repro.costmodel.estimation.estimate_interval_resolution`),
    adds a ``<model>+INT`` predicted cost per filter-capable strategy
    (:func:`~repro.costmodel.join_costs.with_interval_filter`) and sets
    ``plan.use_interval`` when the chosen strategy's filtered variant is
    cheaper.  The base ranking -- and thus ``plan.strategy`` -- is
    computed exactly as without ``interval``.
    """
    estimate = estimate_join_selectivity(
        rel_r, column_r, rel_s, column_s, theta,
        sample_pairs=sample_pairs, seed=seed,
    )
    params = fit_parameters(rel_r, column_r, estimate.p, memory_pages=memory_pages)
    dist = make_distribution(distribution, params)

    costs: dict[str, float] = {"D_I": d_nested_loop(params)}
    if isinstance(theta, Overlaps):
        costs["D_PAR"] = d_partition(params, workers=workers)
    if rel_r.has_index_on(column_r) and rel_s.has_index_on(column_s):
        clustered = rel_r.is_clustered and rel_s.is_clustered
        if clustered:
            costs["D_IIb"] = d_tree_clustered(dist)
        else:
            costs["D_IIa"] = d_tree_unclustered(dist)
    if join_index_available:
        costs["D_III"] = d_join_index(dist)

    if not costs:
        raise JoinError("no executable strategy to rank")
    best = min(costs, key=lambda name: costs[name])

    use_interval = False
    resolution: IntervalResolutionEstimate | None = None
    spec = None
    if interval and isinstance(theta, Overlaps):
        spec = _resolve_interval_spec(interval, rel_r, column_r, rel_s, column_s)
        resolution = estimate_interval_resolution(
            rel_r, column_r, rel_s, column_s, spec,
            sample_pairs=interval_sample_pairs, seed=seed,
        )
        candidates = (
            resolution.mbr_fraction * float(len(rel_r)) * float(len(rel_s))
        )
        build_objects = float(len(rel_r) + len(rel_s))
        for name in [n for n in costs if n in _INTERVAL_CAPABLE]:
            costs[name + "+INT"] = with_interval_filter(
                costs[name], params,
                candidates=candidates,
                resolve_fraction=resolution.resolve_fraction,
                build_objects=build_objects,
            )
        filtered = costs.get(best + "+INT")
        use_interval = filtered is not None and filtered < costs[best]

    hit_p = 0.0
    if cache is not None:
        hit_p = cache.join_hit_probability(rel_r, column_r, rel_s, column_s, theta)
    return JoinPlan(
        strategy=best,
        estimate=estimate,
        parameters=params,
        predicted_costs=costs,
        hit_probability=hit_p,
        discounted_costs={
            name: cost * (1.0 - hit_p) for name, cost in costs.items()
        },
        use_interval=use_interval,
        interval_resolution=resolution,
        interval_spec=spec,
    )


#: Model strategies whose executor counterpart can thread the interval
#: refiner (tree traversals and the partition sweep; the blocked scan
#: and the join index have no refine site to replace).
_INTERVAL_CAPABLE = frozenset({"D_PAR", "D_IIa", "D_IIb"})


def _resolve_interval_spec(interval, rel_r, column_r, rel_s, column_s):
    """An ``IntervalSpec``: the caller's, or a data-fitted default grid."""
    from repro.geometry.rect import Rect
    from repro.intermediate.filter import IntervalSpec

    if isinstance(interval, IntervalSpec):
        return interval
    mbrs = [t[column_r].mbr() for t in rel_r.scan()]
    mbrs += [t[column_s].mbr() for t in rel_s.scan()]
    universe = Rect.union_of(mbrs) if mbrs else Rect(0.0, 0.0, 1.0, 1.0)
    pad_x = 1.0 if universe.width == 0 else 0.0
    pad_y = 1.0 if universe.height == 0 else 0.0
    if pad_x or pad_y:
        universe = Rect(universe.xmin, universe.ymin,
                        universe.xmax + pad_x, universe.ymax + pad_y)
    return IntervalSpec(universe=universe)


def executable_strategy(plan: JoinPlan) -> str:
    """The :class:`SpatialQueryExecutor` strategy name for a plan."""
    return _EXECUTABLE[plan.strategy]
