"""Execution reports: what the executor tried, what failed, what ran.

A resilient execution is only trustworthy if it can account for itself.
:class:`ExecutionReport` records every strategy attempt of
:meth:`~repro.core.executor.SpatialQueryExecutor.execute_join` -- the
strategy name, whether it succeeded, the failure cause otherwise, and
the I/O retries and virtual-clock backoff its attempt consumed -- plus
the fault plan's injected/consumed audit counters when the operands live
on a :class:`~repro.faults.disk.FaultyDisk`.

On a clean run (no fault injection) the report is deliberately boring:
one successful attempt, zero retries, zero fallbacks.  Tests pin that,
so the recovery machinery provably costs nothing on the happy path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import JoinError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.obs.drift import DriftReport

#: Injected-fault events rendered in full before eliding the rest; keeps
#: a high-fault-rate report readable while still proving what happened.
MAX_RENDERED_FAULT_EVENTS = 6


@dataclass(slots=True)
class AttemptRecord:
    """One strategy attempt inside a fallback chain."""

    strategy: str
    ok: bool
    error_type: str | None = None
    error: str | None = None
    io_retries: int = 0
    backoff_steps: int = 0
    stats: dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        if self.ok:
            tail = f"ok ({self.io_retries} retries)"
        else:
            tail = f"failed: {self.error_type}: {self.error}"
        return f"{self.strategy}: {tail}"


@dataclass(slots=True)
class ExecutionReport:
    """Full account of one resilient join execution."""

    query: str
    requested_strategy: str
    attempts: list[AttemptRecord] = field(default_factory=list)
    fault_summary: dict[str, int] = field(default_factory=dict)
    fault_events: list[str] = field(default_factory=list)
    drift: DriftReport | None = None
    #: Cache tier that served the result ("exact"/"containment"), or
    #: None when the query actually executed.
    cached: str | None = None

    @property
    def strategy(self) -> str:
        """The strategy that produced the returned result."""
        for a in self.attempts:
            if a.ok:
                return a.strategy
        raise JoinError("no attempt succeeded in this report")

    @property
    def succeeded(self) -> bool:
        return any(a.ok for a in self.attempts)

    @property
    def fallbacks(self) -> int:
        """Strategies that failed before one succeeded."""
        return sum(1 for a in self.attempts if not a.ok)

    @property
    def retries(self) -> int:
        """Total transparently retried page I/Os across all attempts."""
        return sum(a.io_retries for a in self.attempts)

    @property
    def backoff_steps(self) -> int:
        """Total virtual-clock backoff units spent on retries."""
        return sum(a.backoff_steps for a in self.attempts)

    @property
    def faults_injected(self) -> int:
        return self.fault_summary.get("injected", 0)

    @property
    def faults_consumed(self) -> int:
        return self.fault_summary.get("consumed", 0)

    def format(self) -> str:
        """Human-readable multi-line account."""
        lines = [
            self.query,
            f"requested strategy: {self.requested_strategy}",
        ]
        for i, a in enumerate(self.attempts):
            prefix = "attempt" if i == 0 else "fallback"
            lines.append(f"  {prefix} {i + 1}: {a.describe()}")
        if self.cached is not None:
            lines.append(f"served from cache ({self.cached} tier)")
        if self.fault_summary:
            lines.append(
                "faults: {injected} injected, {consumed} consumed, "
                "{outstanding} outstanding".format(**self.fault_summary)
            )
        if self.fault_events:
            shown = self.fault_events[:MAX_RENDERED_FAULT_EVENTS]
            for desc in shown:
                lines.append(f"  - {desc}")
            elided = len(self.fault_events) - len(shown)
            if elided:
                lines.append(f"  ... and {elided} more fault events")
        if self.drift is not None:
            lines.extend("  " + line for line in self.drift.format().splitlines())
        return "\n".join(lines)
