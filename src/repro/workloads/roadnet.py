"""A road-network workload: polylines, points and the reachability join.

The paper's Table 1 includes ``o1 reachable from o2 in x minutes`` with a
buffer-based Theta-filter.  This workload gives that operator something
realistic to chew on: a synthetic road network (polyline roads grown from
a grid with jitter), facilities (points near roads), and houses
(points anywhere) -- the classic "which houses can reach a facility
within x minutes" setting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.geometry.point import Point
from repro.geometry.polyline import PolyLine
from repro.geometry.rect import Rect
from repro.relational.relation import Relation
from repro.relational.schema import Column, ColumnType, Schema
from repro.storage.buffer import BufferPool
from repro.storage.costs import CostMeter
from repro.storage.disk import SimulatedDisk
from repro.trees.rtree import RTree
from repro.workloads.generators import uniform_points

ROAD_SCHEMA = Schema(
    [
        Column("road_id", ColumnType.INT),
        Column("name", ColumnType.STR),
        Column("path", ColumnType.POLYLINE),
    ]
)

FACILITY_SCHEMA = Schema(
    [
        Column("fid", ColumnType.INT),
        Column("kind", ColumnType.STR),
        Column("site", ColumnType.POINT),
    ]
)


@dataclass(slots=True)
class RoadNetwork:
    """The assembled workload: roads, facilities and their R-trees."""

    roads: Relation
    facilities: Relation
    road_tree: RTree
    facility_tree: RTree
    universe: Rect
    meter: CostMeter


def _jittered_polyline(
    start: Point, end: Point, segments: int, jitter: float,
    rng: random.Random, universe: Rect,
) -> PolyLine:
    """A road from start to end with perpendicular jitter per vertex."""
    verts = [start]
    for step in range(1, segments):
        t = step / segments
        x = start.x + t * (end.x - start.x) + rng.uniform(-jitter, jitter)
        y = start.y + t * (end.y - start.y) + rng.uniform(-jitter, jitter)
        verts.append(
            Point(
                min(max(x, universe.xmin), universe.xmax),
                min(max(y, universe.ymin), universe.ymax),
            )
        )
    verts.append(end)
    return PolyLine(verts)


def make_road_network(
    grid: int = 4,
    facilities_per_kind: int = 10,
    universe: Rect = Rect(0.0, 0.0, 1000.0, 1000.0),
    seed: int = 4242,
    memory_pages: int = 4000,
) -> RoadNetwork:
    """Build a ``grid x grid`` lattice of jittered roads plus facilities.

    Horizontal and vertical roads cross the universe at grid spacing;
    facilities of three kinds (hospital, school, depot) are placed
    uniformly.  Both relations get R-tree indices.
    """
    if grid < 2:
        raise WorkloadError(f"grid must be at least 2, got {grid}")
    rng = random.Random(seed)
    meter = CostMeter()
    pool = BufferPool(SimulatedDisk(), memory_pages, meter)

    roads = Relation("road", ROAD_SCHEMA, pool)
    facilities = Relation("facility", FACILITY_SCHEMA, pool)

    road_id = 0
    spacing_x = universe.width / (grid + 1)
    spacing_y = universe.height / (grid + 1)
    jitter = min(spacing_x, spacing_y) * 0.15
    for i in range(1, grid + 1):
        y = universe.ymin + i * spacing_y
        roads.insert(
            [
                road_id,
                f"ew-{i}",
                _jittered_polyline(
                    Point(universe.xmin, y), Point(universe.xmax, y),
                    segments=8, jitter=jitter, rng=rng, universe=universe,
                ),
            ]
        )
        road_id += 1
        x = universe.xmin + i * spacing_x
        roads.insert(
            [
                road_id,
                f"ns-{i}",
                _jittered_polyline(
                    Point(x, universe.ymin), Point(x, universe.ymax),
                    segments=8, jitter=jitter, rng=rng, universe=universe,
                ),
            ]
        )
        road_id += 1

    fid = 0
    for kind in ("hospital", "school", "depot"):
        for p in uniform_points(facilities_per_kind, universe, rng):
            facilities.insert([fid, kind, p])
            fid += 1

    road_tree = RTree(max_entries=8)
    facility_tree = RTree(max_entries=8)
    roads.attach_index("path", road_tree)
    facilities.attach_index("site", facility_tree)

    return RoadNetwork(
        roads=roads,
        facilities=facilities,
        road_tree=road_tree,
        facility_tree=facility_tree,
        universe=universe,
        meter=meter,
    )
