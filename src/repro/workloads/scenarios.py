"""The lakes-and-houses scenario of the paper's introduction.

Query (2): *Find all houses within 10 kilometers from a lake* over

    house(hid, hprice, hlocation)   -- hlocation : POINT
    lake(lid, name, larea)          -- larea : POLYGON

This module builds both relations over a shared simulated disk, with the
lake polygons generated as irregular convex blobs, and wires up R-tree
secondary indices on the two spatial columns.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.relational.relation import Relation
from repro.relational.schema import Column, ColumnType, Schema
from repro.storage.buffer import BufferPool
from repro.storage.costs import CostMeter
from repro.storage.disk import SimulatedDisk
from repro.trees.rtree import RTree
from repro.workloads.generators import uniform_points


HOUSE_SCHEMA = Schema(
    [
        Column("hid", ColumnType.INT),
        Column("hprice", ColumnType.FLOAT),
        Column("hlocation", ColumnType.POINT),
    ]
)

LAKE_SCHEMA = Schema(
    [
        Column("lid", ColumnType.INT),
        Column("name", ColumnType.STR),
        Column("larea", ColumnType.POLYGON),
    ]
)


@dataclass(slots=True)
class LakesAndHouses:
    """The assembled scenario: relations, indices, shared metering."""

    houses: Relation
    lakes: Relation
    house_tree: RTree
    lake_tree: RTree
    universe: Rect
    meter: CostMeter


def _lake_polygon(center: Point, radius: float, rng: random.Random, universe: Rect) -> Polygon:
    """An irregular convex blob: a radius-perturbed regular polygon."""
    sides = rng.randint(5, 10)
    verts = []
    for i in range(sides):
        angle = 2.0 * math.pi * i / sides
        rr = radius * rng.uniform(0.55, 1.0)
        x = min(max(center.x + rr * math.cos(angle), universe.xmin), universe.xmax)
        y = min(max(center.y + rr * math.sin(angle), universe.ymin), universe.ymax)
        verts.append(Point(x, y))
    return Polygon(verts)


def make_lakes_and_houses(
    n_houses: int = 500,
    n_lakes: int = 40,
    universe: Rect = Rect(0.0, 0.0, 1000.0, 1000.0),
    lake_radius: float = 30.0,
    seed: int = 12345,
    memory_pages: int = 4000,
    build_indices: bool = True,
) -> LakesAndHouses:
    """Build the scenario at the requested size.

    ``lake_radius`` is the typical lake extent in universe units; house
    prices are uniform in [50k, 500k] for the example queries.
    """
    if n_houses < 0 or n_lakes < 0:
        raise WorkloadError("counts must be non-negative")
    rng = random.Random(seed)
    meter = CostMeter()
    disk = SimulatedDisk()
    pool = BufferPool(disk, memory_pages, meter)

    houses = Relation("house", HOUSE_SCHEMA, pool)
    lakes = Relation("lake", LAKE_SCHEMA, pool)

    for i, p in enumerate(uniform_points(n_houses, universe, rng)):
        houses.insert([i, rng.uniform(50_000.0, 500_000.0), p])

    margin = lake_radius
    inner = Rect(
        universe.xmin + margin,
        universe.ymin + margin,
        universe.xmax - margin,
        universe.ymax - margin,
    )
    for i, c in enumerate(uniform_points(n_lakes, inner, rng)):
        lakes.insert([i, f"lake-{i}", _lake_polygon(c, lake_radius, rng, universe)])

    house_tree = RTree(max_entries=10)
    lake_tree = RTree(max_entries=10)
    if build_indices:
        houses.attach_index("hlocation", house_tree)
        lakes.attach_index("larea", lake_tree)

    return LakesAndHouses(
        houses=houses,
        lakes=lakes,
        house_tree=house_tree,
        lake_tree=lake_tree,
        universe=universe,
        meter=meter,
    )
