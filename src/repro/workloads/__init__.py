"""Synthetic workload generators.

The paper evaluates analytically; the empirical twins of its experiments
need data.  This subpackage generates:

* uniform / clustered point and rectangle sets over a universe
  (:mod:`~repro.workloads.generators`);
* the **lakes-and-houses** scenario of query (2) in the introduction
  (:mod:`~repro.workloads.scenarios`);
* a synthetic **cartographic map** -- countries subdivided into states
  into cities, mirroring Figure 3 (:mod:`~repro.workloads.cartography`);
* relation + tree assemblies at chosen sizes with controlled match
  selectivity for the empirical strategy comparison
  (:mod:`~repro.workloads.assembly`).
"""

from repro.workloads.generators import (
    WorkloadConfig,
    clustered_points,
    clustered_rects,
    uniform_points,
    uniform_rects,
)
from repro.workloads.scenarios import LakesAndHouses, make_lakes_and_houses
from repro.workloads.cartography import CartographicMap, make_map
from repro.workloads.roadnet import RoadNetwork, make_road_network
from repro.workloads.assembly import (
    IndexedRelation,
    build_balanced_assembly,
    build_indexed_relation,
)

__all__ = [
    "WorkloadConfig",
    "uniform_points",
    "uniform_rects",
    "clustered_points",
    "clustered_rects",
    "LakesAndHouses",
    "make_lakes_and_houses",
    "CartographicMap",
    "make_map",
    "RoadNetwork",
    "make_road_network",
    "IndexedRelation",
    "build_indexed_relation",
    "build_balanced_assembly",
]
