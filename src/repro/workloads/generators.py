"""Low-level generators for points and rectangles.

All generators take an explicit ``random.Random`` seed or instance so
every experiment in the benchmark harness is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class WorkloadConfig:
    """Shared knobs: universe extent and RNG seed."""

    universe: Rect = Rect(0.0, 0.0, 1000.0, 1000.0)
    seed: int = 12345

    def rng(self) -> random.Random:
        return random.Random(self.seed)


def _resolve_rng(rng: random.Random | int | None) -> random.Random:
    if rng is None:
        return random.Random()
    if isinstance(rng, int):
        return random.Random(rng)
    return rng


def uniform_points(
    count: int,
    universe: Rect,
    rng: random.Random | int | None = None,
) -> list[Point]:
    """``count`` points uniformly distributed over ``universe``."""
    if count < 0:
        raise WorkloadError(f"count must be non-negative, got {count}")
    r = _resolve_rng(rng)
    return [
        Point(r.uniform(universe.xmin, universe.xmax), r.uniform(universe.ymin, universe.ymax))
        for _ in range(count)
    ]


def uniform_rects(
    count: int,
    universe: Rect,
    max_width: float,
    max_height: float,
    rng: random.Random | int | None = None,
) -> list[Rect]:
    """``count`` rectangles with uniform anchors and uniform sizes.

    Rectangles are clipped to the universe so the containment invariants
    of universe-rooted trees hold.
    """
    if count < 0:
        raise WorkloadError(f"count must be non-negative, got {count}")
    if max_width <= 0 or max_height <= 0:
        raise WorkloadError(
            f"max_width/max_height must be positive, got {max_width} x {max_height}"
        )
    r = _resolve_rng(rng)
    out: list[Rect] = []
    for _ in range(count):
        x = r.uniform(universe.xmin, universe.xmax)
        y = r.uniform(universe.ymin, universe.ymax)
        w = r.uniform(0.0, max_width)
        h = r.uniform(0.0, max_height)
        out.append(
            Rect(x, y, min(x + w, universe.xmax), min(y + h, universe.ymax))
        )
    return out


def clustered_points(
    count: int,
    universe: Rect,
    clusters: int,
    spread: float,
    rng: random.Random | int | None = None,
) -> list[Point]:
    """Points drawn around ``clusters`` uniformly placed Gaussian centers.

    ``spread`` is the standard deviation of each cluster; samples are
    clamped into the universe.  Clustered data exercises the locality
    behavior behind the HI-LOC distribution.
    """
    if clusters < 1:
        raise WorkloadError(f"need at least 1 cluster, got {clusters}")
    if spread <= 0:
        raise WorkloadError(f"spread must be positive, got {spread}")
    r = _resolve_rng(rng)
    centers = uniform_points(clusters, universe, r)
    out: list[Point] = []
    for _ in range(count):
        c = r.choice(centers)
        x = min(max(r.gauss(c.x, spread), universe.xmin), universe.xmax)
        y = min(max(r.gauss(c.y, spread), universe.ymin), universe.ymax)
        out.append(Point(x, y))
    return out


def clustered_rects(
    count: int,
    universe: Rect,
    clusters: int,
    spread: float,
    max_width: float,
    max_height: float,
    rng: random.Random | int | None = None,
) -> list[Rect]:
    """Rectangles anchored at clustered points (see :func:`clustered_points`)."""
    r = _resolve_rng(rng)
    anchors = clustered_points(count, universe, clusters, spread, r)
    out: list[Rect] = []
    for a in anchors:
        w = r.uniform(0.0, max_width)
        h = r.uniform(0.0, max_height)
        out.append(
            Rect(a.x, a.y, min(a.x + w, universe.xmax), min(a.y + h, universe.ymax))
        )
    return out
