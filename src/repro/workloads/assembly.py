"""Relation + index assemblies for the empirical strategy comparison.

The empirical twins of Figures 8-13 need relations of controllable size
whose spatial column is indexed by a generalization tree, in both the
unclustered (IIa) and BFS-clustered (IIb) physical layouts.  This module
assembles them in one call.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.geometry.rect import Rect
from repro.relational.relation import Relation
from repro.relational.schema import Column, ColumnType, Schema
from repro.storage.buffer import BufferPool
from repro.storage.costs import CostMeter
from repro.storage.disk import SimulatedDisk
from repro.trees.balanced import BalancedKTree
from repro.trees.rtree import RTree
from repro.workloads.generators import uniform_rects

OBJECT_SCHEMA = Schema(
    [
        Column("oid", ColumnType.INT),
        Column("shape", ColumnType.RECT),
    ]
)


@dataclass(slots=True)
class IndexedRelation:
    """A relation with a generalization-tree secondary index."""

    relation: Relation
    tree: RTree | BalancedKTree
    universe: Rect
    meter: CostMeter


def build_indexed_relation(
    count: int,
    *,
    universe: Rect = Rect(0.0, 0.0, 1000.0, 1000.0),
    max_extent: float = 20.0,
    seed: int = 42,
    memory_pages: int = 4000,
    clustered: bool = False,
    fanout: int = 10,
    disk: SimulatedDisk | None = None,
    meter: CostMeter | None = None,
) -> IndexedRelation:
    """An R-tree-indexed relation of ``count`` random rectangles.

    With ``clustered=True`` the relation is rebuilt in the tree's BFS
    order after loading (strategy IIb's layout); otherwise insertion
    order -- uncorrelated with tree order -- is kept (strategy IIa).
    Pass a shared ``disk``/``meter`` to co-locate several relations.
    """
    if count < 1:
        raise WorkloadError(f"count must be positive, got {count}")
    if meter is None:
        meter = CostMeter()
    if disk is None:
        disk = SimulatedDisk()
    pool = BufferPool(disk, memory_pages, meter)
    relation = Relation("objects", OBJECT_SCHEMA, pool)

    rng = random.Random(seed)
    rects = uniform_rects(count, universe, max_extent, max_extent, rng)
    # Shuffle so heap order is uncorrelated with spatial order.
    order = list(range(count))
    rng.shuffle(order)
    for i in order:
        relation.insert([i, rects[i]])

    tree = RTree(max_entries=fanout)
    relation.attach_index("shape", tree)

    if clustered:
        relation.recluster(tree.bfs_tids())

    return IndexedRelation(relation=relation, tree=tree, universe=universe, meter=meter)


def build_balanced_assembly(
    k: int,
    n: int,
    *,
    universe: Rect = Rect(0.0, 0.0, 1000.0, 1000.0),
    memory_pages: int = 4000,
    clustered: bool = False,
    disk: SimulatedDisk | None = None,
    meter: CostMeter | None = None,
) -> IndexedRelation:
    """A relation whose tuples are *all* nodes of a balanced k-ary tree.

    This realizes modeling assumptions S1 + S2 exactly: one tuple per
    tree node, the node's region as its spatial attribute.  Tuples are
    stored in random order (IIa) or BFS order (IIb).
    """
    if meter is None:
        meter = CostMeter()
    if disk is None:
        disk = SimulatedDisk()
    pool = BufferPool(disk, memory_pages, meter)
    relation = Relation("nodes", OBJECT_SCHEMA, pool)

    tree = BalancedKTree(k, n, universe)
    nodes = tree.bfs_list()
    order = list(range(len(nodes)))
    if not clustered:
        random.Random(k * 1000 + n).shuffle(order)
    tids = [None] * len(nodes)
    for idx in order:
        t = relation.insert([idx, nodes[idx].region.mbr()])
        tids[idx] = t.tid
    tree.assign_tids(tids)  # type: ignore[arg-type]
    return IndexedRelation(relation=relation, tree=tree, universe=universe, meter=meter)
