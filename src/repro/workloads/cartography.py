"""A synthetic cartographic hierarchy mirroring Figure 3.

The map is recursively subdivided: the world into countries, countries
into states, states into cities.  Every region is an application object
stored in one relation (with a ``kind`` column), and the hierarchy
becomes a :class:`~repro.trees.cartotree.CartoTree` -- the paper's second
family of generalization trees, where interior nodes matter to the user.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.geometry.rect import Rect
from repro.relational.relation import Relation
from repro.relational.schema import Column, ColumnType, Schema
from repro.storage.buffer import BufferPool
from repro.storage.costs import CostMeter
from repro.storage.disk import SimulatedDisk
from repro.trees.cartotree import CartoTree

MAP_SCHEMA = Schema(
    [
        Column("rid", ColumnType.INT),
        Column("name", ColumnType.STR),
        Column("kind", ColumnType.STR),
        Column("region", ColumnType.RECT),
    ]
)

_KINDS = ("country", "state", "city")


@dataclass(slots=True)
class CartographicMap:
    """The assembled map: one relation plus its cartographic tree."""

    regions: Relation
    tree: CartoTree
    universe: Rect
    meter: CostMeter


def _subdivide(region: Rect, pieces: int, rng: random.Random) -> list[Rect]:
    """Split a rectangle into ``pieces`` disjoint tiles with jittered cuts."""
    cols = max(1, int(pieces**0.5))
    rows = -(-pieces // cols)
    xs = [region.xmin]
    for c in range(1, cols):
        base = region.xmin + region.width * c / cols
        xs.append(base + rng.uniform(-0.05, 0.05) * region.width / cols)
    xs.append(region.xmax)
    ys = [region.ymin]
    for r in range(1, rows):
        base = region.ymin + region.height * r / rows
        ys.append(base + rng.uniform(-0.05, 0.05) * region.height / rows)
    ys.append(region.ymax)
    tiles = []
    for r in range(rows):
        for c in range(cols):
            if len(tiles) >= pieces:
                break
            tiles.append(Rect(xs[c], ys[r], xs[c + 1], ys[r + 1]))
    return tiles


def make_map(
    countries: int = 6,
    states_per_country: int = 4,
    cities_per_state: int = 5,
    universe: Rect = Rect(0.0, 0.0, 1000.0, 1000.0),
    seed: int = 777,
    memory_pages: int = 4000,
) -> CartographicMap:
    """Build the three-level map and its generalization tree.

    City rectangles are small random boxes inside their state; countries
    and states tile their parent exactly (disjoint siblings, as is common
    in the cartographic case the paper describes).
    """
    if min(countries, states_per_country, cities_per_state) < 1:
        raise WorkloadError("all level counts must be at least 1")
    rng = random.Random(seed)
    meter = CostMeter()
    disk = SimulatedDisk()
    pool = BufferPool(disk, memory_pages, meter)
    regions = Relation("map_region", MAP_SCHEMA, pool)
    tree = CartoTree(universe)

    next_id = 0

    def store(name: str, kind: str, rect: Rect):
        nonlocal next_id
        t = regions.insert([next_id, name, kind, rect])
        next_id += 1
        return t

    for ci, country_rect in enumerate(_subdivide(universe, countries, rng)):
        c_tuple = store(f"country-{ci}", "country", country_rect)
        c_node = tree.add_child(tree.root(), country_rect, c_tuple.tid)
        for si, state_rect in enumerate(
            _subdivide(country_rect, states_per_country, rng)
        ):
            s_tuple = store(f"state-{ci}.{si}", "state", state_rect)
            s_node = tree.add_child(c_node, state_rect, s_tuple.tid)
            for gi in range(cities_per_state):
                w = state_rect.width * rng.uniform(0.05, 0.2)
                h = state_rect.height * rng.uniform(0.05, 0.2)
                x = rng.uniform(state_rect.xmin, state_rect.xmax - w)
                y = rng.uniform(state_rect.ymin, state_rect.ymax - h)
                city_rect = Rect(x, y, x + w, y + h)
                g_tuple = store(f"city-{ci}.{si}.{gi}", "city", city_rect)
                tree.add_child(s_node, city_rect, g_tuple.tid)

    # The tree was built alongside the relation: attach without backfill.
    regions.attach_index("region", tree, backfill=False)
    return CartographicMap(regions=regions, tree=tree, universe=universe, meter=meter)
