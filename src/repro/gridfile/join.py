"""Grid-file-supported spatial selection and join (after [Rote91]).

The grid directory gives a free spatial partition: the Theta-filter of
Table 1 applied to *bucket regions* prunes bucket pairs before any entry
is touched, just as it prunes subtree pairs in Algorithm JOIN.  What the
generalization tree does hierarchically, the grid file does in one flat
filtered nested loop over bucket regions.
"""

from __future__ import annotations

from repro.gridfile.gridfile import GridFile
from repro.join.result import JoinResult, SelectResult
from repro.predicates.dispatch import SpatialObject
from repro.predicates.theta import ThetaOperator
from repro.storage.costs import CostMeter


def grid_select(
    grid: GridFile,
    query: SpatialObject,
    theta: ThetaOperator,
    *,
    meter: CostMeter | None = None,
) -> SelectResult:
    """All grid entries with ``query theta entry`` via bucket filtering.

    Buckets whose region fails the Theta-filter against the query are
    skipped without being read; surviving buckets are fetched once and
    their entries refined exactly.
    """
    if meter is None:
        meter = CostMeter()
    big = theta.filter_operator()
    result = SelectResult(strategy="grid-select")
    for bucket in grid.all_buckets_metadata():
        region = grid.bucket_region(bucket)
        meter.record_filter_eval()
        if not big(query, region):
            continue
        fetched = grid.fetch_bucket(bucket)
        for point, tid in fetched.entries:
            meter.record_exact_eval()
            if theta(query, point):
                result.matches.append((tid, point))
    result.stats = meter.snapshot()
    return result


def grid_join(
    grid_r: GridFile,
    grid_s: GridFile,
    theta: ThetaOperator,
    *,
    meter: CostMeter | None = None,
) -> JoinResult:
    """Join two grid files: filter bucket-region pairs, refine entries.

    Matches ``(tid_r, tid_s)`` satisfy ``point_r theta point_s``.  The
    bucket-pair filter is the flat analogue of QualPairs: only region
    pairs passing the conservative Theta-test have their entries
    compared.
    """
    if meter is None:
        meter = CostMeter()
    big = theta.filter_operator()
    result = JoinResult(strategy="grid-join")

    buckets_r = list(grid_r.all_buckets_metadata())
    buckets_s = list(grid_s.all_buckets_metadata())
    regions_r = {b.page_id: grid_r.bucket_region(b) for b in buckets_r}
    regions_s = {b.page_id: grid_s.bucket_region(b) for b in buckets_s}

    for br in buckets_r:
        region_r = regions_r[br.page_id]
        fetched_r = None
        for bs in buckets_s:
            meter.record_filter_eval()
            if not big(region_r, regions_s[bs.page_id]):
                continue
            if fetched_r is None:
                fetched_r = grid_r.fetch_bucket(br)
            fetched_s = grid_s.fetch_bucket(bs)
            for p_r, tid_r in fetched_r.entries:
                for p_s, tid_s in fetched_s.entries:
                    meter.record_exact_eval()
                    if theta(p_r, p_s):
                        result.pairs.append((tid_r, tid_s))
    result.stats = meter.snapshot()
    return result
