"""Grid files [Niev84]: the paper's referenced address-computation index.

Section 2.2: "Rotem [Rote91] has demonstrated the potential of this
approach [index-supported joins] for the case of the grid file [Niev84],
a spatial access method based on address computation."  This subpackage
provides that comparison point:

* :class:`~repro.gridfile.gridfile.GridFile` -- a paged grid file over
  point data: linear scales, a directory of cell -> bucket references,
  bucket splitting with directory refinement, and the classic two-disk-
  access guarantee for exact-match searches;
* :func:`~repro.gridfile.join.grid_join` -- Rotem-style index-supported
  spatial join: matching cell pairs are enumerated via the Theta-filter
  on cell regions, then bucket entries are refined with the exact
  predicate.
"""

from repro.gridfile.gridfile import GridFile
from repro.gridfile.join import grid_join, grid_select

__all__ = ["GridFile", "grid_join", "grid_select"]
