"""A paged grid file for point data.

Structure (after Nievergelt/Hinterberger/Sevcik):

* two **linear scales** -- sorted split coordinates per axis -- divide the
  universe into a grid of cells;
* the **directory** maps every cell to a bucket; several cells may share
  one bucket (bucket regions are unions of adjacent cells);
* each **bucket** is one disk page holding up to ``capacity`` entries.

Inserting into a full bucket splits it: if more than one directory cell
points at it, the cells are repartitioned between the old bucket and a
new one (no directory growth); otherwise the bucket's single cell is
split by a new scale coordinate along the axis with the larger extent,
refining the directory.  The directory itself is kept in main memory (the
classic assumption behind the grid file's two-disk-access guarantee);
buckets live on simulated pages, so searches charge exactly one page read
per distinct bucket touched.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from repro.errors import StorageError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.storage.buffer import BufferPool
from repro.storage.record import RecordId


class _Bucket:
    """One grid-file bucket, stored as the single record of a page."""

    __slots__ = ("page_id", "entries")

    def __init__(self, page_id: int) -> None:
        self.page_id = page_id
        self.entries: list[tuple[Point, Any]] = []


class GridFile:
    """A two-dimensional grid file over :class:`Point` keys."""

    def __init__(
        self,
        buffer_pool: BufferPool,
        universe: Rect,
        bucket_capacity: int = 10,
    ) -> None:
        if bucket_capacity < 2:
            raise StorageError(
                f"bucket capacity must be at least 2, got {bucket_capacity}"
            )
        if universe.width <= 0 or universe.height <= 0:
            raise StorageError("grid file universe must have positive area")
        self.buffer_pool = buffer_pool
        self.universe = universe
        self.bucket_capacity = bucket_capacity
        #: Interior split coordinates per axis (universe edges excluded).
        self._scales: tuple[list[float], list[float]] = ([], [])
        #: Directory: _directory[i][j] is the bucket of column i, row j.
        first = self._new_bucket()
        self._directory: list[list[_Bucket]] = [[first]]
        self._size = 0

    # ------------------------------------------------------------------
    # Bucket paging
    # ------------------------------------------------------------------

    def _new_bucket(self) -> _Bucket:
        page = self.buffer_pool.new_page()
        bucket = _Bucket(page.page_id)
        page.insert(bucket, page.capacity)
        return bucket

    def _touch(self, bucket: _Bucket) -> _Bucket:
        """Fetch the bucket's page (charging I/O through the pool)."""
        page = self.buffer_pool.fetch(bucket.page_id)
        return page.get(0)

    def fetch_bucket(self, bucket: _Bucket) -> _Bucket:
        """Public bucket fetch: reads the bucket's page through the pool.

        Join/selection algorithms use this so the meter observes exactly
        one page access per bucket whose entries they examine.
        """
        return self._touch(bucket)

    def _dirty(self, bucket: _Bucket) -> None:
        self.buffer_pool.fetch(bucket.page_id)
        self.buffer_pool.mark_dirty(bucket.page_id)

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def _cell_of(self, p: Point) -> tuple[int, int]:
        """Directory coordinates of the cell containing ``p``."""
        if not self.universe.contains_point(p):
            raise StorageError(f"point {p} outside grid universe {self.universe}")
        i = bisect.bisect_right(self._scales[0], p.x)
        j = bisect.bisect_right(self._scales[1], p.y)
        return i, j

    def cell_region(self, i: int, j: int) -> Rect:
        """The rectangle covered by directory cell ``(i, j)``."""
        xs = [self.universe.xmin] + self._scales[0] + [self.universe.xmax]
        ys = [self.universe.ymin] + self._scales[1] + [self.universe.ymax]
        return Rect(xs[i], ys[j], xs[i + 1], ys[j + 1])

    @property
    def grid_shape(self) -> tuple[int, int]:
        """Directory dimensions (columns, rows)."""
        return len(self._scales[0]) + 1, len(self._scales[1]) + 1

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, point: Point, tid: RecordId | Any) -> None:
        """Add an entry; splits buckets (and scales) as needed."""
        i, j = self._cell_of(point)
        bucket = self._touch(self._directory[i][j])
        bucket.entries.append((point, tid))
        self._dirty(bucket)
        self._size += 1
        while len(bucket.entries) > self.bucket_capacity:
            if not self._split_bucket(bucket):
                # All entries coincide at one point: allow overflow.
                break
            # After a split, re-locate the bucket that now holds `point`'s
            # cell; it may still be overfull if the split was skewed.
            i, j = self._cell_of(point)
            bucket = self._directory[i][j]

    def _cells_of_bucket(self, bucket: _Bucket) -> list[tuple[int, int]]:
        cols, rows = self.grid_shape
        return [
            (i, j)
            for i in range(cols)
            for j in range(rows)
            if self._directory[i][j] is bucket
        ]

    def _split_bucket(self, bucket: _Bucket) -> bool:
        """Split an overfull bucket; returns False if no split is possible."""
        cells = self._cells_of_bucket(bucket)
        if len(cells) > 1:
            return self._split_shared_bucket(bucket, cells)
        return self._split_single_cell(bucket, cells[0])

    def _split_shared_bucket(
        self, bucket: _Bucket, cells: list[tuple[int, int]]
    ) -> bool:
        """Repartition a bucket shared by several cells (no new scales).

        The cell region is divided along the axis on which the cells
        spread; half keep the old bucket, half move to a fresh one.
        """
        cols = sorted({i for i, _ in cells})
        rows = sorted({j for _, j in cells})
        if len(cols) > 1:
            axis, keys = 0, cols
        else:
            axis, keys = 1, rows
        cut = keys[len(keys) // 2]
        moved_cells = [
            (i, j) for (i, j) in cells if (i if axis == 0 else j) >= cut
        ]
        new_bucket = self._new_bucket()
        for i, j in moved_cells:
            self._directory[i][j] = new_bucket
        self._redistribute(bucket, new_bucket)
        return True

    def _split_single_cell(self, bucket: _Bucket, cell: tuple[int, int]) -> bool:
        """Introduce a new scale coordinate through the cell's region."""
        if len({(p.x, p.y) for p, _ in bucket.entries}) == 1:
            return False  # coincident points: no split can separate them
        region = self.cell_region(*cell)
        # Split the longer axis at the median of the stored coordinates,
        # so skewed data still converges.
        axis = 0 if region.width >= region.height else 1
        for attempt_axis in (axis, 1 - axis):
            coords = sorted(
                (p.x if attempt_axis == 0 else p.y) for p, _ in bucket.entries
            )
            median = coords[len(coords) // 2]
            lo = region.xmin if attempt_axis == 0 else region.ymin
            hi = region.xmax if attempt_axis == 0 else region.ymax
            if not lo < median < hi:
                # Degenerate (all coordinates equal / at the edge): try
                # the geometric midpoint before giving up on this axis.
                median = (lo + hi) / 2.0
                if not lo < median < hi or all(
                    c == coords[0] for c in coords
                ) and (coords[0] == lo):
                    continue
            self._insert_scale(attempt_axis, median, cell)
            new_bucket = self._new_bucket()
            # The split duplicated the directory slice; point the upper
            # half of the old cell at the new bucket.
            i, j = cell
            if attempt_axis == 0:
                self._directory[i + 1][j] = new_bucket
            else:
                self._directory[i][j + 1] = new_bucket
            self._redistribute(bucket, new_bucket)
            return True
        return False

    def _insert_scale(self, axis: int, coordinate: float, cell: tuple[int, int]) -> None:
        """Add a split coordinate, duplicating the directory slice."""
        scale = self._scales[axis]
        pos = bisect.bisect_left(scale, coordinate)
        scale.insert(pos, coordinate)
        if axis == 0:
            # Duplicate column `pos` (the cell being split is at index pos).
            column = self._directory[pos]
            self._directory.insert(pos + 1, list(column))
        else:
            for column in self._directory:
                column.insert(pos + 1, column[pos])

    def _redistribute(self, old: _Bucket, new: _Bucket) -> None:
        """Re-home all entries of ``old`` according to the directory."""
        entries = old.entries
        old.entries = []
        for point, tid in entries:
            i, j = self._cell_of(point)
            target = self._directory[i][j]
            target.entries.append((point, tid))
        self._dirty(old)
        self._dirty(new)

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, point: Point, tid: Any = None) -> bool:
        """Remove one entry at ``point`` (matching ``tid`` if given)."""
        i, j = self._cell_of(point)
        bucket = self._touch(self._directory[i][j])
        for idx, (p, t) in enumerate(bucket.entries):
            if p == point and (tid is None or t == tid):
                bucket.entries.pop(idx)
                self._dirty(bucket)
                self._size -= 1
                return True
        return False

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search_point(self, point: Point) -> list[Any]:
        """All tids stored exactly at ``point`` -- at most one bucket read
        (plus the in-memory directory), the grid file's guarantee."""
        i, j = self._cell_of(point)
        bucket = self._touch(self._directory[i][j])
        return [t for p, t in bucket.entries if p == point]

    def search_range(self, rect: Rect) -> list[tuple[Point, Any]]:
        """All entries with their point inside the (closed) rectangle."""
        out: list[tuple[Point, Any]] = []
        for bucket, _cells in self.buckets_overlapping(rect):
            for p, t in bucket.entries:
                if rect.contains_point(p):
                    out.append((p, t))
        return out

    def buckets_overlapping(self, rect: Rect) -> Iterator[tuple[_Bucket, list[tuple[int, int]]]]:
        """Distinct buckets whose region intersects ``rect``.

        Each bucket is fetched (charged) once regardless of how many of
        its cells overlap the range.
        """
        clipped = rect.intersection(self.universe)
        if clipped is None:
            return
        i_lo = bisect.bisect_right(self._scales[0], clipped.xmin)
        i_hi = bisect.bisect_right(self._scales[0], clipped.xmax)
        j_lo = bisect.bisect_right(self._scales[1], clipped.ymin)
        j_hi = bisect.bisect_right(self._scales[1], clipped.ymax)
        seen: set[int] = set()
        for i in range(i_lo, i_hi + 1):
            for j in range(j_lo, j_hi + 1):
                bucket = self._directory[i][j]
                if bucket.page_id in seen:
                    continue
                seen.add(bucket.page_id)
                yield self._touch(bucket), self._cells_of_bucket(bucket)

    def all_buckets(self) -> Iterator[_Bucket]:
        """Every distinct bucket, fetched once each."""
        for bucket in self.all_buckets_metadata():
            yield self._touch(bucket)

    def all_buckets_metadata(self) -> Iterator[_Bucket]:
        """Distinct bucket handles *without* fetching their pages.

        The directory (and thus every bucket's region) lives in main
        memory, so region-level filtering is free; only buckets whose
        entries are actually needed get fetched.
        """
        seen: set[int] = set()
        for column in self._directory:
            for bucket in column:
                if bucket.page_id not in seen:
                    seen.add(bucket.page_id)
                    yield bucket

    def bucket_region(self, bucket: _Bucket) -> Rect:
        """Union of the cell regions mapped to ``bucket``."""
        cells = self._cells_of_bucket(bucket)
        return Rect.union_of(self.cell_region(i, j) for i, j in cells)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def bucket_count(self) -> int:
        return sum(1 for _ in self.all_buckets())

    def check_invariants(self) -> None:
        """Validate directory/scale/bucket consistency (for tests)."""
        cols, rows = self.grid_shape
        if len(self._directory) != cols:
            raise StorageError("directory column count does not match x-scale")
        for column in self._directory:
            if len(column) != rows:
                raise StorageError("directory row count does not match y-scale")
        for axis in (0, 1):
            scale = self._scales[axis]
            if scale != sorted(scale):
                raise StorageError(f"scale {axis} out of order: {scale}")
        total = 0
        for bucket in self.all_buckets():
            region = self.bucket_region(bucket)
            for p, _ in bucket.entries:
                if not region.contains_point(p):
                    raise StorageError(
                        f"entry {p} outside its bucket region {region}"
                    )
            total += len(bucket.entries)
        if total != self._size:
            raise StorageError(f"size mismatch: counted {total}, recorded {self._size}")
