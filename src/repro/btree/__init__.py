"""B+-tree substrate.

Assumption S4 of the cost model: "Join indices are implemented using
B+-trees."  Table 3 gives the index parameters -- ``z = 100`` entries per
page and height ``d = 4``.  This subpackage provides a from-scratch,
*paged* B+-tree: every node lives on one simulated disk page and all node
traffic flows through the buffer pool, so searching it costs exactly the
``d`` page accesses the model charges (roots pinned in memory excepted).
"""

from repro.btree.tree import BPlusTree

__all__ = ["BPlusTree"]
