"""A paged B+-tree with insert, delete, point and range search.

Design notes
------------
* **Order** ``z``: a node holds at most ``z`` keys (Table 3's "capacity of
  a B+-tree page, in number of index entries"); non-root nodes hold at
  least ``ceil(z/2)``.
* **Paging**: every node occupies one page of the simulated disk and is
  read/written through the buffer pool, so the meter observes exactly the
  node accesses.  The root is pinned, mirroring the paper's "root ...
  locked in main memory" assumption.
* **Duplicates**: multiple equal keys are allowed (a join index maps one
  tuple id to many matching ids); ``search`` returns all values for a key.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from repro.errors import BTreeError
from repro.btree.node import BTreeNode
from repro.storage.buffer import BufferPool


def _balanced_chunks(seq: list, size: int, min_size: int) -> list[list]:
    """Split ``seq`` into chunks of ``size``, rebalancing a short tail.

    A trailing chunk below ``min_size`` is merged with its predecessor and
    the pair split evenly (both halves stay within node bounds because
    ``min_size <= size``); a single short chunk is the root case and is
    returned as-is.
    """
    chunks = [seq[i : i + size] for i in range(0, len(seq), size)]
    if len(chunks) >= 2 and len(chunks[-1]) < min_size:
        combined = chunks[-2] + chunks[-1]
        chunks.pop()
        if len(combined) >= 2 * min_size:
            half = len(combined) // 2
            chunks[-1] = combined[:half]
            chunks.append(combined[half:])
        else:
            # 2*min_size - 1 <= order: a single legal node absorbs the tail.
            chunks[-1] = combined
    return chunks


class BPlusTree:
    """B+-tree keyed by any totally ordered key type."""

    def __init__(self, buffer_pool: BufferPool, order: int = 100) -> None:
        if order < 2:
            raise BTreeError(f"B+-tree order must be at least 2, got {order}")
        self.buffer_pool = buffer_pool
        self.order = order
        self._size = 0
        root = self._new_node(is_leaf=True)
        self._root_id = root.page_id
        self.buffer_pool.pin(self._root_id)

    # ------------------------------------------------------------------
    # Node paging helpers
    # ------------------------------------------------------------------

    def _new_node(self, is_leaf: bool) -> BTreeNode:
        page = self.buffer_pool.new_page()
        node = BTreeNode(page_id=page.page_id, is_leaf=is_leaf)
        page.insert(node, page.capacity)
        return node

    def _load(self, page_id: int) -> BTreeNode:
        page = self.buffer_pool.fetch(page_id)
        node = page.get(0)
        if not isinstance(node, BTreeNode):
            raise BTreeError(f"page {page_id} does not hold a B+-tree node")
        return node

    def _store(self, node: BTreeNode) -> None:
        self.buffer_pool.fetch(node.page_id)
        self.buffer_pool.mark_dirty(node.page_id)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _find_leaf(
        self, key: Any, for_insert: bool = False
    ) -> tuple[BTreeNode, list[BTreeNode]]:
        """Descend to a leaf for ``key``; returns (leaf, path of parents).

        For searches the descent takes the *leftmost* candidate subtree
        (``bisect_left``) so duplicates spanning several leaves are all
        reachable via the leaf chain; inserts go right of existing equal
        separators (``bisect_right``), the cheaper append position.
        """
        path: list[BTreeNode] = []
        node = self._load(self._root_id)
        while not node.is_leaf:
            path.append(node)
            if for_insert:
                idx = bisect.bisect_right(node.keys, key)
            else:
                idx = bisect.bisect_left(node.keys, key)
            node = self._load(node.children[idx])
        return node, path

    def search(self, key: Any) -> list[Any]:
        """All values stored under ``key`` (empty list if absent)."""
        leaf, _ = self._find_leaf(key)
        out: list[Any] = []
        current: BTreeNode | None = leaf
        # Walk the leaf chain until a key greater than the target appears.
        while current is not None:
            i = bisect.bisect_left(current.keys, key)
            while i < len(current.keys) and current.keys[i] == key:
                out.append(current.values[i])
                i += 1
            if i < len(current.keys):
                break  # saw a key beyond the target: no duplicates remain
            current = (
                self._load(current.next_leaf) if current.next_leaf != -1 else None
            )
        return out

    def contains(self, key: Any) -> bool:
        """True if at least one entry with ``key`` exists."""
        return bool(self.search(key))

    def range_scan(self, lo: Any = None, hi: Any = None) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with ``lo <= key <= hi``, in order.

        ``None`` bounds are open.  Walks the leaf chain, so the cost is
        proportional to the leaves touched.
        """
        if lo is not None:
            leaf, _ = self._find_leaf(lo)
        else:
            node = self._load(self._root_id)
            while not node.is_leaf:
                node = self._load(node.children[0])
            leaf = node
        while leaf is not None:
            for k, v in zip(leaf.keys, leaf.values):
                if lo is not None and k < lo:
                    continue
                if hi is not None and k > hi:
                    return
                yield k, v
            leaf = self._load(leaf.next_leaf) if leaf.next_leaf != -1 else None

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All entries in key order."""
        return self.range_scan()

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Add an entry; duplicate keys are kept side by side."""
        leaf, path = self._find_leaf(key, for_insert=True)
        i = bisect.bisect_right(leaf.keys, key)
        leaf.keys.insert(i, key)
        leaf.values.insert(i, value)
        self._store(leaf)
        self._size += 1
        if leaf.is_overfull(self.order):
            self._split(leaf, path)

    def _split(self, node: BTreeNode, path: list[BTreeNode]) -> None:
        mid = len(node.keys) // 2
        right = self._new_node(is_leaf=node.is_leaf)
        if node.is_leaf:
            right.keys = node.keys[mid:]
            right.values = node.values[mid:]
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            right.next_leaf = node.next_leaf
            node.next_leaf = right.page_id
            separator = right.keys[0]
        else:
            separator = node.keys[mid]
            right.keys = node.keys[mid + 1 :]
            right.children = node.children[mid + 1 :]
            node.keys = node.keys[:mid]
            node.children = node.children[: mid + 1]
        self._store(node)
        self._store(right)

        if not path:
            new_root = self._new_node(is_leaf=False)
            new_root.keys = [separator]
            new_root.children = [node.page_id, right.page_id]
            self._store(new_root)
            self.buffer_pool.unpin(self._root_id)
            self._root_id = new_root.page_id
            self.buffer_pool.pin(self._root_id)
            return

        parent = path[-1]
        # Insert by the split child's position, not by key search: with
        # duplicate separators bisect could misalign keys and children.
        idx = parent.children.index(node.page_id)
        parent.keys.insert(idx, separator)
        parent.children.insert(idx + 1, right.page_id)
        self._store(parent)
        if parent.is_overfull(self.order):
            self._split(parent, path[:-1])

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------

    def remove(self, key: Any, value: Any = None) -> bool:
        """Remove one entry with ``key`` (and ``value``, if given).

        Returns True if an entry was removed.  Duplicates may span
        several subtrees, so the descent explores the whole candidate
        child span (``bisect_left .. bisect_right``) until a removal
        succeeds; the traversal path enables immediate rebalancing of
        the affected leaf.
        """
        root = self._load(self._root_id)
        return self._remove_from(root, key, value, [])

    def _remove_from(
        self, node: BTreeNode, key: Any, value: Any, path: list[BTreeNode]
    ) -> bool:
        if node.is_leaf:
            i = bisect.bisect_left(node.keys, key)
            while i < len(node.keys) and node.keys[i] == key:
                if value is None or node.values[i] == value:
                    node.keys.pop(i)
                    node.values.pop(i)
                    self._store(node)
                    self._size -= 1
                    self._rebalance_after_delete(node, path)
                    return True
                i += 1
            return False
        lo = bisect.bisect_left(node.keys, key)
        hi = bisect.bisect_right(node.keys, key)
        for idx in range(lo, hi + 1):
            child = self._load(node.children[idx])
            if self._remove_from(child, key, value, path + [node]):
                return True
        return False

    def _rebalance_after_delete(self, node: BTreeNode, path: list[BTreeNode]) -> None:
        if not path:
            # Root leaf: may be empty, that's fine.
            if not node.is_leaf and len(node.children) == 1:
                self._collapse_root(node)
            return
        if not node.is_underfull(self.order):
            return
        parent = path[-1]
        idx = parent.children.index(node.page_id)
        # Try borrowing from the left sibling first, then the right.
        if idx > 0 and self._borrow(parent, idx, from_left=True):
            return
        if idx < len(parent.children) - 1 and self._borrow(parent, idx, from_left=False):
            return
        # Merge with a sibling.
        if idx > 0:
            left = self._load(parent.children[idx - 1])
            self._merge(parent, idx - 1, left, node)
        else:
            right = self._load(parent.children[idx + 1])
            self._merge(parent, idx, node, right)
        if path[:-1]:
            if parent.is_underfull(self.order):
                self._rebalance_interior(parent, path[:-1])
        elif len(parent.children) == 1:
            self._collapse_root(parent)

    def _rebalance_interior(self, node: BTreeNode, path: list[BTreeNode]) -> None:
        parent = path[-1]
        idx = parent.children.index(node.page_id)
        if idx > 0 and self._borrow(parent, idx, from_left=True):
            return
        if idx < len(parent.children) - 1 and self._borrow(parent, idx, from_left=False):
            return
        if idx > 0:
            left = self._load(parent.children[idx - 1])
            self._merge(parent, idx - 1, left, node)
        else:
            right = self._load(parent.children[idx + 1])
            self._merge(parent, idx, node, right)
        if path[:-1]:
            if parent.is_underfull(self.order):
                self._rebalance_interior(parent, path[:-1])
        elif len(parent.children) == 1:
            self._collapse_root(parent)

    def _borrow(self, parent: BTreeNode, idx: int, from_left: bool) -> bool:
        node = self._load(parent.children[idx])
        sib_idx = idx - 1 if from_left else idx + 1
        sibling = self._load(parent.children[sib_idx])
        if len(sibling.keys) <= sibling.min_keys(self.order):
            return False
        if node.is_leaf:
            if from_left:
                node.keys.insert(0, sibling.keys.pop())
                node.values.insert(0, sibling.values.pop())
                parent.keys[idx - 1] = node.keys[0]
            else:
                node.keys.append(sibling.keys.pop(0))
                node.values.append(sibling.values.pop(0))
                parent.keys[idx] = sibling.keys[0]
        else:
            if from_left:
                node.keys.insert(0, parent.keys[idx - 1])
                parent.keys[idx - 1] = sibling.keys.pop()
                node.children.insert(0, sibling.children.pop())
            else:
                node.keys.append(parent.keys[idx])
                parent.keys[idx] = sibling.keys.pop(0)
                node.children.append(sibling.children.pop(0))
        self._store(node)
        self._store(sibling)
        self._store(parent)
        return True

    def _merge(self, parent: BTreeNode, left_idx: int, left: BTreeNode, right: BTreeNode) -> None:
        """Fold ``right`` into ``left``; ``left_idx`` is left's child index."""
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_idx)
        parent.children.pop(left_idx + 1)
        self._store(left)
        self._store(parent)

    def _collapse_root(self, root: BTreeNode) -> None:
        """Replace an interior root with a single child by that child."""
        child_id = root.children[0]
        self.buffer_pool.unpin(self._root_id)
        self._root_id = child_id
        self.buffer_pool.pin(self._root_id)

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        buffer_pool: BufferPool,
        items: list[tuple[Any, Any]],
        order: int = 100,
        fill: float = 1.0,
    ) -> "BPlusTree":
        """Build a tree bottom-up from sorted ``(key, value)`` pairs.

        ``fill`` controls how full leaves are packed (1.0 = maximal).
        Keys must be non-decreasing; raises otherwise.
        """
        if not 0.0 < fill <= 1.0:
            raise BTreeError(f"fill factor must be in (0, 1], got {fill}")
        tree = cls(buffer_pool, order)
        if not items:
            return tree
        for a, b in zip(items, items[1:]):
            if b[0] < a[0]:
                raise BTreeError("bulk_load requires keys in non-decreasing order")

        min_keys = order // 2
        per_leaf = min(max(int(order * fill), max(min_keys, 1)), order)
        leaf_chunks = _balanced_chunks(items, per_leaf, max(min_keys, 1))
        leaves: list[BTreeNode] = []
        # Reuse the empty root page as the first leaf.
        first = tree._load(tree._root_id)
        for chunk in leaf_chunks:
            node = first if not leaves else tree._new_node(is_leaf=True)
            node.keys = [k for k, _ in chunk]
            node.values = [v for _, v in chunk]
            if leaves:
                leaves[-1].next_leaf = node.page_id
                tree._store(leaves[-1])
            leaves.append(node)
        for leaf in leaves:
            tree._store(leaf)
        tree._size = len(items)

        # Build interior levels until a single node remains.  An interior
        # node with c children has c - 1 keys, so the child count must be
        # in [min_keys + 1, order + 1].
        level = leaves
        while len(level) > 1:
            per_node = min(max(int(order * fill), min_keys + 1), order + 1)
            next_level: list[BTreeNode] = []
            for chunk in _balanced_chunks(level, per_node, min_keys + 1):
                node = tree._new_node(is_leaf=False)
                node.children = [c.page_id for c in chunk]
                node.keys = [tree._leftmost_key(c) for c in chunk[1:]]
                tree._store(node)
                next_level.append(node)
            level = next_level
        tree.buffer_pool.unpin(tree._root_id)
        tree._root_id = level[0].page_id
        tree.buffer_pool.pin(tree._root_id)
        return tree

    def _leftmost_key(self, node: BTreeNode) -> Any:
        while not node.is_leaf:
            node = self._load(node.children[0])
        if not node.keys:
            raise BTreeError("empty leaf encountered while computing separator")
        return node.keys[0]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the pinned root frame (call before discarding the tree)."""
        self.buffer_pool.unpin(self._root_id)

    @property
    def height(self) -> int:
        """Number of levels (the model's ``d``); a lone leaf has height 1."""
        h = 1
        node = self._load(self._root_id)
        while not node.is_leaf:
            h += 1
            node = self._load(node.children[0])
        return h

    def __len__(self) -> int:
        return self._size

    def node_count(self) -> int:
        """Total nodes, by full traversal (test/diagnostic use)."""
        count = 0
        stack = [self._root_id]
        while stack:
            node = self._load(stack.pop())
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def check_invariants(self) -> None:
        """Validate structural invariants; raises :class:`BTreeError`.

        Checks key ordering within nodes, separator bounds, uniform leaf
        depth and the leaf-chain ordering.  Intended for tests.
        """
        leaf_depths: set[int] = set()
        self._check_node(self._root_id, None, None, 0, leaf_depths, is_root=True)
        if len(leaf_depths) > 1:
            raise BTreeError(f"leaves at multiple depths: {sorted(leaf_depths)}")
        # Leaf chain must produce globally sorted keys.
        prev = None
        for k, _ in self.items():
            if prev is not None and k < prev:
                raise BTreeError(f"leaf chain out of order: {k!r} after {prev!r}")
            prev = k

    def _check_node(
        self,
        page_id: int,
        lo: Any,
        hi: Any,
        depth: int,
        leaf_depths: set[int],
        is_root: bool = False,
    ) -> None:
        node = self._load(page_id)
        for a, b in zip(node.keys, node.keys[1:]):
            if b < a:
                raise BTreeError(f"node {page_id} keys out of order: {node.keys}")
        for k in node.keys:
            if lo is not None and k < lo:
                raise BTreeError(f"node {page_id} key {k!r} below bound {lo!r}")
            if hi is not None and k > hi:
                raise BTreeError(f"node {page_id} key {k!r} above bound {hi!r}")
        if not is_root and node.is_underfull(self.order):
            kind = "leaf" if node.is_leaf else "interior node"
            raise BTreeError(f"{kind} {page_id} underfull: {len(node.keys)} keys")
        if node.is_leaf:
            leaf_depths.add(depth)
            if len(node.keys) != len(node.values):
                raise BTreeError(f"leaf {page_id} keys/values length mismatch")
            return
        if len(node.children) != len(node.keys) + 1:
            raise BTreeError(
                f"interior node {page_id} has {len(node.children)} children "
                f"for {len(node.keys)} keys"
            )
        bounds = [lo] + list(node.keys) + [hi]
        for i, child in enumerate(node.children):
            self._check_node(child, bounds[i], bounds[i + 1], depth + 1, leaf_depths)
