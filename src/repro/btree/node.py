"""B+-tree nodes, stored one per simulated disk page.

A node is the single record of its page; the page's declared record size
equals the page capacity, so page-count arithmetic degenerates to node
count -- matching the model, which charges one I/O per node visited.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(slots=True)
class BTreeNode:
    """One B+-tree node.

    Interior nodes hold ``len(keys) + 1`` child page ids with the usual
    separator invariant: subtree ``children[i]`` holds keys strictly less
    than ``keys[i]`` (and at least ``keys[i-1]``).  Leaves hold parallel
    ``keys`` / ``values`` lists plus a singly linked leaf chain for range
    scans.
    """

    page_id: int
    is_leaf: bool
    keys: list[Any] = field(default_factory=list)
    #: Interior: child page ids.  Unused in leaves.
    children: list[int] = field(default_factory=list)
    #: Leaves: one value per key.  Unused in interior nodes.
    values: list[Any] = field(default_factory=list)
    #: Leaves: page id of the next leaf, or -1 at the right edge.
    next_leaf: int = -1

    def is_overfull(self, order: int) -> bool:
        """True if the node exceeds ``order`` keys and must split."""
        return len(self.keys) > order

    def is_underfull(self, order: int) -> bool:
        """True if a non-root node has fewer than ``floor(order/2)`` keys.

        The floor (not ceiling) bound is required for interior splits: an
        overfull interior node has ``order + 1`` keys, one of which moves
        up, leaving ``order // 2`` for the smaller half.
        """
        return len(self.keys) < order // 2

    def min_keys(self, order: int) -> int:
        return order // 2
