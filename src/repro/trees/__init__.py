"""Generalization trees (Section 3): containment hierarchies for joins.

A generalization tree is "a tree structure where each node corresponds to
a spatial object; except for the root object, each object is completely
contained in the object corresponding to its parent node" -- siblings may
overlap and dead space is allowed.  The class includes:

* :class:`~repro.trees.rtree.RTree` -- Guttman's R-tree (Figure 2), with
  linear and quadratic node splitting; interior nodes are technical
  entities (no application payload);
* :class:`~repro.trees.cartotree.CartoTree` -- an application-specific
  hierarchy of detail (Figure 3), every node an application object;
* :class:`~repro.trees.balanced.BalancedKTree` -- the balanced k-ary tree
  of modelling assumption S1, used by the empirical twins of the paper's
  comparative study.

All trees implement the :class:`~repro.trees.base.GeneralizationTree`
protocol the SELECT / JOIN algorithms in :mod:`repro.join` traverse.
"""

from repro.trees.node import GTNode
from repro.trees.base import GeneralizationTree
from repro.trees.balanced import BalancedKTree
from repro.trees.cartotree import CartoTree
from repro.trees.rtree import RTree
from repro.trees.rstar import RStarTree
from repro.trees.packing import str_pack, packing_quality
from repro.trees.knn import nearest_neighbor, nearest_neighbors
from repro.trees.render import level_summary, render_tree

__all__ = [
    "GTNode",
    "GeneralizationTree",
    "BalancedKTree",
    "CartoTree",
    "RTree",
    "RStarTree",
    "str_pack",
    "packing_quality",
    "nearest_neighbor",
    "nearest_neighbors",
    "render_tree",
    "level_summary",
]
