"""Balanced k-ary generalization trees (modeling assumption S1).

The cost model of Section 4 assumes "all generalization trees are
balanced k-ary trees of height n" where *every* node corresponds to an
application object (assumption S2).  This module builds exactly such
trees over a recursive spatial subdivision, so the empirical twins of the
paper's experiments run on the same structure the formulas describe:

* the root covers the whole universe rectangle;
* each node's region is divided into ``k`` child cells in a near-square
  grid (children tile the parent -- containment holds by construction);
* the tree has ``(k^(n+1) - 1) / (k - 1)`` nodes; with Table 3's
  ``k = 10, n = 6`` that is the paper's ``N = 1,111,111``.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator

from repro.errors import TreeError
from repro.geometry.rect import Rect
from repro.predicates.dispatch import SpatialObject
from repro.storage.record import RecordId
from repro.trees.base import GeneralizationTree
from repro.trees.node import GTNode


def tree_size(k: int, n: int) -> int:
    """Number of nodes of a full k-ary tree of height ``n`` (root at 0)."""
    if k == 1:
        return n + 1
    return (k ** (n + 1) - 1) // (k - 1)


def _grid_shape(k: int) -> tuple[int, int]:
    """Near-square (cols, rows) factorization with ``cols * rows >= k``."""
    cols = math.ceil(math.sqrt(k))
    rows = math.ceil(k / cols)
    return cols, rows


class BalancedKTree(GeneralizationTree):
    """A full k-ary tree of height ``n`` over a rectangular subdivision.

    Regions are assigned by dividing each parent cell into a
    ``cols x rows`` grid and taking the first ``k`` cells, so sibling
    regions are disjoint and children exactly cover (at most) the parent.
    Every node is an application object; tuple ids are attached via
    ``assign_tids`` once the backing relation is populated.
    """

    def __init__(self, k: int, n: int, universe: Rect | None = None) -> None:
        if k < 1:
            raise TreeError(f"branching factor must be at least 1, got {k}")
        if n < 0:
            raise TreeError(f"height must be non-negative, got {n}")
        self.k = k
        self.n = n
        self.universe = universe if universe is not None else Rect(0.0, 0.0, 1.0, 1.0)
        self._root = self._build(self.universe, n)
        self._bfs_cache: list[GTNode] | None = None

    def _build(self, region: Rect, levels_below: int) -> GTNode:
        node = GTNode(region=region)
        if levels_below == 0:
            return node
        cols, rows = _grid_shape(self.k)
        cell_w = region.width / cols
        cell_h = region.height / rows
        made = 0
        for r in range(rows):
            for c in range(cols):
                if made >= self.k:
                    break
                cell = Rect(
                    region.xmin + c * cell_w,
                    region.ymin + r * cell_h,
                    region.xmin + (c + 1) * cell_w,
                    region.ymin + (r + 1) * cell_h,
                )
                node.add_child(self._build(cell, levels_below - 1))
                made += 1
        return node

    # ------------------------------------------------------------------
    # GeneralizationTree protocol
    # ------------------------------------------------------------------

    def root(self) -> GTNode:
        return self._root

    def children(self, node: GTNode) -> list[GTNode]:
        return node.children

    def region(self, node: GTNode) -> SpatialObject:
        return node.region

    def tid(self, node: GTNode) -> RecordId | None:
        return node.tid

    def insert(self, obj: SpatialObject, tid: RecordId) -> None:
        """Balanced model trees are static; the update cost model of
        Section 4.2 is exercised through :mod:`repro.costmodel` instead."""
        raise TreeError(
            "BalancedKTree is a static model structure; build it at the "
            "desired size instead of inserting"
        )

    # ------------------------------------------------------------------
    # Model-experiment helpers
    # ------------------------------------------------------------------

    def height(self) -> int:
        return self.n

    def node_count(self) -> int:
        return tree_size(self.k, self.n)

    def bfs_list(self) -> list[GTNode]:
        """Materialized BFS order (cached); level ``i`` starts at index
        ``(k^i - 1) / (k - 1)``."""
        if self._bfs_cache is None:
            self._bfs_cache = list(self.bfs_nodes())
        return self._bfs_cache

    def nodes_at_height(self, i: int) -> list[GTNode]:
        """All nodes at height ``i`` (the model's ``k^i`` nodes)."""
        if not 0 <= i <= self.n:
            raise TreeError(f"height {i} outside [0, {self.n}]")
        if self.k == 1:
            return [self.bfs_list()[i]]
        start = (self.k**i - 1) // (self.k - 1)
        return self.bfs_list()[start : start + self.k**i]

    def assign_tids(self, tids_in_bfs_order: list[RecordId]) -> None:
        """Attach tuple ids to all nodes, in BFS order."""
        nodes = self.bfs_list()
        if len(tids_in_bfs_order) != len(nodes):
            raise TreeError(
                f"need {len(nodes)} tids (one per node), got {len(tids_in_bfs_order)}"
            )
        for node, tid in zip(nodes, tids_in_bfs_order):
            node.tid = tid

    def remap_tids(self, rid_map: dict) -> None:
        """Rewrite tuple ids after the backing relation was reclustered."""
        for node in self.bfs_list():
            if node.tid in rid_map:
                node.tid = rid_map[node.tid]

    def leftmost_leaf(self) -> GTNode:
        """The leftmost leaf -- Figure 7's reference object ``o1``."""
        node = self._root
        while node.children:
            node = node.children[0]
        return node

    def depth_of(self, target: GTNode) -> int:
        """Depth (= the paper's height index) of a node, by search."""
        for depth, level in enumerate(self.levels()):
            if any(n is target for n in level):
                return depth
        raise TreeError("node does not belong to this tree")

    def levels(self) -> Iterator[list[GTNode]]:
        """Yield the node lists level by level, root first."""
        level = [self._root]
        while level:
            yield level
            level = [c for n in level for c in n.children]
