"""Branch-and-bound k-nearest-neighbor search over R-trees.

Distance-based operators ("within 10 kilometers from", "reachable in x
minutes") motivate nearest-neighbor access on the same structures the
joins use.  The classic best-first algorithm: a priority queue ordered by
minimum possible distance; nodes expand, data entries are emitted in
distance order until ``k`` are found.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any

from repro.errors import TreeError
from repro.geometry.point import Point
from repro.predicates.dispatch import min_distance
from repro.storage.costs import CostMeter
from repro.storage.record import RecordId
from repro.trees.rtree import RTree, RTreeEntry, RTreeNode


def nearest_neighbors(
    tree: RTree,
    query: Point,
    k: int = 1,
    *,
    meter: CostMeter | None = None,
) -> list[tuple[float, RecordId]]:
    """The ``k`` data entries closest to ``query``, nearest first.

    Distances are closest-point distances between the query point and the
    stored geometry (zero if the point lies inside it).  Ties are broken
    arbitrarily but deterministically.  Returns fewer than ``k`` results
    only if the tree holds fewer entries.
    """
    if k < 1:
        raise TreeError(f"k must be at least 1, got {k}")
    if meter is None:
        meter = CostMeter()
    if tree.is_empty():
        return []

    counter = itertools.count()  # tie-breaker: heap entries stay comparable
    heap: list[tuple[float, int, Any]] = [(0.0, next(counter), tree._root)]
    results: list[tuple[float, RecordId]] = []

    while heap and len(results) < k:
        dist, _, item = heapq.heappop(heap)
        if isinstance(item, RTreeNode):
            for entry in item.entries:
                meter.record_filter_eval()
                bound = entry.mbr.distance_to_point(query)
                target: Any = entry if item.is_leaf else entry.child
                heapq.heappush(heap, (bound, next(counter), target))
        else:
            entry: RTreeEntry = item
            if entry.obj is not None:
                meter.record_exact_eval()
                exact = min_distance(query, entry.obj)
                if exact > dist + 1e-12:
                    # The MBR bound was optimistic: re-enqueue with the
                    # exact distance and keep searching.
                    heapq.heappush(heap, (exact, next(counter), entry))
                    continue
                dist = exact
            if entry.tid is not None:
                results.append((dist, entry.tid))
    return results


def nearest_neighbor(tree: RTree, query: Point) -> tuple[float, RecordId] | None:
    """Convenience wrapper: the single nearest entry, or None if empty."""
    found = nearest_neighbors(tree, query, k=1)
    return found[0] if found else None
