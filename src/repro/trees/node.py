"""The node type shared by explicit generalization trees.

R-trees keep their own internal node layout (entries with child
pointers); the cartographic and balanced trees use :class:`GTNode`
directly.  Either way the traversal algorithms only ever see the
:class:`~repro.trees.base.GeneralizationTree` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import TreeError
from repro.predicates.dispatch import SpatialObject
from repro.storage.record import RecordId


@dataclass(slots=True)
class GTNode:
    """A generalization-tree node.

    ``region`` is the node's spatial object -- for application-object
    nodes it *is* the object (a country polygon, say); for technical
    nodes it is the bounding aggregate.  ``tid`` links to the node's
    tuple in the backing relation (None for purely technical nodes);
    visiting such a node in an I/O-charged traversal fetches that tuple.
    ``payload`` carries the application object when no relation backs the
    tree (stand-alone usage).
    """

    region: SpatialObject
    tid: RecordId | None = None
    payload: Any = None
    children: list["GTNode"] = field(default_factory=list)

    def add_child(self, child: "GTNode") -> None:
        self.children.append(child)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_application_object(self) -> bool:
        """True if this node corresponds to a user-visible object.

        Such nodes may qualify for query results even when they are
        interior nodes -- the SELECT / JOIN algorithms check them.
        """
        return self.tid is not None or self.payload is not None

    def subtree_height(self) -> int:
        """Height of the subtree under this node (a leaf has height 0)."""
        if not self.children:
            return 0
        return 1 + max(c.subtree_height() for c in self.children)

    def subtree_size(self) -> int:
        """Number of nodes in the subtree including this node."""
        return 1 + sum(c.subtree_size() for c in self.children)

    def validate_containment(self) -> None:
        """Check the defining invariant: children lie inside the parent.

        Containment is verified on MBRs (exact containment of arbitrary
        geometry pairs would be stricter than the R-tree case requires).
        Raises :class:`~repro.errors.TreeError` on violation.
        """
        my_mbr = self.region.mbr()
        for child in self.children:
            if not my_mbr.contains_rect(child.region.mbr()):
                raise TreeError(
                    f"containment violation: child MBR {child.region.mbr()} "
                    f"not inside parent MBR {my_mbr}"
                )
            child.validate_containment()
