"""Sort-Tile-Recursive (STR) bulk loading for R-trees.

Incremental insertion (Guttman) produces overlapping nodes whose quality
depends on arrival order; when the data is known up front -- the join
setting, where "a join query refers only to objects that are in the
database already" (Section 1) -- a packed tree is both smaller and
tighter.  STR packs leaves by sorting on x, slicing into vertical runs of
``ceil(sqrt(n/M))`` tiles, sorting each tile by y, and cutting it into
full leaves; upper levels pack the node MBRs the same way.

The result is a regular :class:`~repro.trees.rtree.RTree`, so every
traversal algorithm (SELECT, JOIN, kNN) works on it unchanged.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import TreeError
from repro.geometry.rect import Rect
from repro.predicates.dispatch import SpatialObject
from repro.storage.record import RecordId
from repro.trees.rtree import RTree, RTreeEntry, RTreeNode


def str_pack(
    objects: Sequence[tuple[SpatialObject, RecordId]],
    max_entries: int = 10,
    min_entries: int | None = None,
) -> RTree:
    """Build an STR-packed R-tree over ``(object, tid)`` pairs.

    The returned tree satisfies all R-tree invariants (checked by
    ``check_invariants``); nodes are filled to ``max_entries`` except the
    rightmost node per level, which is balanced against its neighbor to
    respect ``min_entries``.
    """
    tree = RTree(max_entries=max_entries, min_entries=min_entries)
    if not objects:
        return tree

    entries = [
        RTreeEntry(mbr=obj.mbr(), obj=obj, tid=tid) for obj, tid in objects
    ]
    leaves = _pack_level(entries, tree.max_entries, tree.min_entries, is_leaf=True)
    level = leaves
    while len(level) > 1:
        parent_entries = [RTreeEntry(mbr=n.mbr(), child=n) for n in level]
        level = _pack_level(
            parent_entries, tree.max_entries, tree.min_entries, is_leaf=False
        )
    root = level[0]
    root.parent = None
    tree._root = root
    tree._size = len(entries)
    return tree


def _pack_level(
    entries: list[RTreeEntry], max_entries: int, min_entries: int, is_leaf: bool
) -> list[RTreeNode]:
    """Pack one level's entries into nodes via sort-tile-recursive runs."""
    node_count = math.ceil(len(entries) / max_entries)
    slice_count = max(1, math.ceil(math.sqrt(node_count)))
    per_slice = slice_count * max_entries

    by_x = sorted(entries, key=lambda e: (e.mbr.centerpoint().x, e.mbr.xmin))
    groups: list[list[RTreeEntry]] = []
    for start in range(0, len(by_x), per_slice):
        tile = sorted(
            by_x[start : start + per_slice],
            key=lambda e: (e.mbr.centerpoint().y, e.mbr.ymin),
        )
        for node_start in range(0, len(tile), max_entries):
            groups.append(tile[node_start : node_start + max_entries])

    # Rebalance an undersized trailing group against its predecessor.
    if len(groups) >= 2 and len(groups[-1]) < min_entries:
        combined = groups[-2] + groups[-1]
        half = len(combined) // 2
        if half >= min_entries:
            groups[-2] = combined[:half]
            groups[-1] = combined[half:]
        else:
            groups.pop()
            groups[-1] = combined
            if len(groups[-1]) > max_entries:
                raise TreeError("STR rebalancing overflowed a node")

    nodes: list[RTreeNode] = []
    for group in groups:
        node = RTreeNode(is_leaf=is_leaf, entries=list(group))
        if not is_leaf:
            for e in node.entries:
                assert e.child is not None
                e.child.parent = node
        nodes.append(node)
    return nodes


def packing_quality(tree: RTree) -> dict[str, float]:
    """Quality metrics for ablation benches: node count, mean fill,
    total interior overlap area (lower is better)."""
    node_count = 0
    fill_total = 0.0
    overlap = 0.0
    stack = [tree._root]
    while stack:
        node = stack.pop()
        node_count += 1
        fill_total += len(node.entries) / tree.max_entries
        for i, a in enumerate(node.entries):
            for b in node.entries[i + 1 :]:
                inter = a.mbr.intersection(b.mbr)
                if inter is not None:
                    overlap += inter.area()
        if not node.is_leaf:
            stack.extend(e.child for e in node.entries if e.child is not None)
    return {
        "nodes": float(node_count),
        "mean_fill": fill_total / node_count if node_count else 0.0,
        "sibling_overlap_area": overlap,
    }
