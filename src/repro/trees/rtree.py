"""Guttman's R-tree [Gutt84] -- the canonical abstract generalization tree.

Figure 2 of the paper shows an R-tree as the prime example of a
generalization tree whose interior nodes are "just technical entities
that are of no interest to the user".  This is a from-scratch
implementation with:

* ChooseLeaf by least MBR enlargement (ties by smaller area);
* node splitting via Guttman's **quadratic** or **linear** algorithm;
* AdjustTree with split propagation and root growth;
* deletion with CondenseTree (orphan re-insertion) and root shrinkage;
* rectangle search and the :class:`GeneralizationTree` traversal protocol
  (leaf data entries appear as childless application-object nodes; their
  ``region`` is the *actual* stored geometry so exact theta refinement
  does not lose precision).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import TreeError
from repro.geometry.rect import Rect
from repro.predicates.dispatch import SpatialObject
from repro.storage.record import RecordId
from repro.trees.base import GeneralizationTree


@dataclass(slots=True)
class RTreeEntry:
    """One slot of an R-tree node.

    Interior entries point at a child node; leaf entries carry the stored
    object and its tuple id.  ``mbr`` is maintained incrementally.
    """

    mbr: Rect
    child: "RTreeNode | None" = None
    obj: SpatialObject | None = None
    tid: RecordId | None = None

    @property
    def is_data(self) -> bool:
        return self.child is None


@dataclass(slots=True)
class RTreeNode:
    """An R-tree node: a leaf holds data entries, an interior node children."""

    is_leaf: bool
    entries: list[RTreeEntry] = field(default_factory=list)
    parent: "RTreeNode | None" = None

    def mbr(self) -> Rect:
        """Union of the entries' rectangles."""
        if not self.entries:
            raise TreeError("empty R-tree node has no MBR")
        return Rect.union_of(e.mbr for e in self.entries)

    def centerpoint(self):
        return self.mbr().centerpoint()


class RTree(GeneralizationTree):
    """R-tree with configurable fan-out and split algorithm.

    ``max_entries`` is Guttman's ``M`` (the paper's branching factor k for
    a full node); ``min_entries`` defaults to ``max_entries // 2``.
    ``split`` selects ``"quadratic"`` (default) or ``"linear"``.
    """

    def __init__(
        self,
        max_entries: int = 10,
        min_entries: int | None = None,
        split: str = "quadratic",
    ) -> None:
        if max_entries < 2:
            raise TreeError(f"max_entries must be at least 2, got {max_entries}")
        if min_entries is None:
            min_entries = max(1, max_entries // 2)
        if not 1 <= min_entries <= max_entries // 2:
            raise TreeError(
                f"min_entries must be in [1, max_entries//2], got {min_entries}"
            )
        if split not in ("quadratic", "linear"):
            raise TreeError(f"split must be 'quadratic' or 'linear', got {split!r}")
        self.max_entries = max_entries
        self.min_entries = min_entries
        self.split_algorithm = split
        self._root = RTreeNode(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # GeneralizationTree protocol
    # ------------------------------------------------------------------

    def root(self) -> Any:
        return self._root

    def children(self, node: Any) -> list[Any]:
        if isinstance(node, RTreeEntry):
            return []  # data entries are the tree's leaves for traversal
        if node.is_leaf:
            return list(node.entries)
        return [e.child for e in node.entries]

    def region(self, node: Any) -> SpatialObject:
        if isinstance(node, RTreeEntry):
            # Hand back the exact stored geometry, not just its MBR.
            return node.obj if node.obj is not None else node.mbr
        return node.mbr()

    def tid(self, node: Any) -> RecordId | None:
        if isinstance(node, RTreeEntry):
            return node.tid
        return None  # interior/leaf nodes are technical entities

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, obj: SpatialObject, tid: RecordId) -> None:
        """Insert an object with its tuple id (Guttman's Insert)."""
        entry = RTreeEntry(mbr=obj.mbr(), obj=obj, tid=tid)
        leaf = self._choose_leaf(self._root, entry.mbr)
        leaf.entries.append(entry)
        self._size += 1
        if len(leaf.entries) > self.max_entries:
            self._split_and_adjust(leaf)
        else:
            self._adjust_mbrs_upward(leaf)

    def _choose_leaf(self, node: RTreeNode, rect: Rect) -> RTreeNode:
        while not node.is_leaf:
            best = min(
                node.entries,
                key=lambda e: (e.mbr.enlargement(rect), e.mbr.area()),
            )
            assert best.child is not None
            node = best.child
        return node

    def _split_and_adjust(self, node: RTreeNode) -> None:
        sibling = self._split_node(node)
        parent = node.parent
        if parent is None:
            new_root = RTreeNode(is_leaf=False)
            for child in (node, sibling):
                child.parent = new_root
                new_root.entries.append(RTreeEntry(mbr=child.mbr(), child=child))
            self._root = new_root
            return
        # Refresh the parent's entry for the split node and add the sibling.
        for e in parent.entries:
            if e.child is node:
                e.mbr = node.mbr()
                break
        sibling.parent = parent
        parent.entries.append(RTreeEntry(mbr=sibling.mbr(), child=sibling))
        if len(parent.entries) > self.max_entries:
            self._split_and_adjust(parent)
        else:
            self._adjust_mbrs_upward(parent)

    def _adjust_mbrs_upward(self, node: RTreeNode) -> None:
        child = node
        parent = node.parent
        while parent is not None:
            for e in parent.entries:
                if e.child is child:
                    e.mbr = child.mbr()
                    break
            child = parent
            parent = parent.parent

    # -- splitting -----------------------------------------------------

    def _split_node(self, node: RTreeNode) -> RTreeNode:
        """Distribute ``node``'s entries over it and a new sibling."""
        entries = node.entries
        if self.split_algorithm == "quadratic":
            group_a, group_b = self._quadratic_split(entries)
        else:
            group_a, group_b = self._linear_split(entries)
        sibling = RTreeNode(is_leaf=node.is_leaf)
        node.entries = group_a
        sibling.entries = group_b
        if not node.is_leaf:
            for e in sibling.entries:
                assert e.child is not None
                e.child.parent = sibling
        return sibling

    def _quadratic_split(
        self, entries: list[RTreeEntry]
    ) -> tuple[list[RTreeEntry], list[RTreeEntry]]:
        """Guttman's quadratic split: worst seed pair, then greedy PickNext."""
        seed_a, seed_b = self._pick_seeds_quadratic(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        mbr_a = entries[seed_a].mbr
        mbr_b = entries[seed_b].mbr
        rest = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]

        while rest:
            # If one group must take everything to reach min_entries, do it.
            if len(group_a) + len(rest) == self.min_entries:
                group_a.extend(rest)
                break
            if len(group_b) + len(rest) == self.min_entries:
                group_b.extend(rest)
                break
            # PickNext: entry with the greatest preference difference.
            best_idx = max(
                range(len(rest)),
                key=lambda i: abs(
                    mbr_a.enlargement(rest[i].mbr) - mbr_b.enlargement(rest[i].mbr)
                ),
            )
            e = rest.pop(best_idx)
            da = mbr_a.enlargement(e.mbr)
            db = mbr_b.enlargement(e.mbr)
            if da < db or (da == db and mbr_a.area() <= mbr_b.area()):
                group_a.append(e)
                mbr_a = mbr_a.union(e.mbr)
            else:
                group_b.append(e)
                mbr_b = mbr_b.union(e.mbr)
        return group_a, group_b

    @staticmethod
    def _pick_seeds_quadratic(entries: list[RTreeEntry]) -> tuple[int, int]:
        """The pair wasting the most area when grouped together."""
        best = (0, 1)
        best_waste = float("-inf")
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                union = entries[i].mbr.union(entries[j].mbr)
                waste = union.area() - entries[i].mbr.area() - entries[j].mbr.area()
                if waste > best_waste:
                    best_waste = waste
                    best = (i, j)
        return best

    def _linear_split(
        self, entries: list[RTreeEntry]
    ) -> tuple[list[RTreeEntry], list[RTreeEntry]]:
        """Guttman's linear split: extreme pair by normalized separation."""
        seed_a, seed_b = self._pick_seeds_linear(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        mbr_a = entries[seed_a].mbr
        mbr_b = entries[seed_b].mbr
        rest = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]
        while rest:
            # Force-assign the remainder when a group must absorb it to
            # reach the minimum entry count.
            if len(group_a) + len(rest) == self.min_entries:
                group_a.extend(rest)
                break
            if len(group_b) + len(rest) == self.min_entries:
                group_b.extend(rest)
                break
            e = rest.pop()
            da = mbr_a.enlargement(e.mbr)
            db = mbr_b.enlargement(e.mbr)
            if da < db or (da == db and len(group_a) <= len(group_b)):
                group_a.append(e)
                mbr_a = mbr_a.union(e.mbr)
            else:
                group_b.append(e)
                mbr_b = mbr_b.union(e.mbr)
        return group_a, group_b

    @staticmethod
    def _pick_seeds_linear(entries: list[RTreeEntry]) -> tuple[int, int]:
        best = (0, 1)
        best_sep = float("-inf")
        for axis in ("x", "y"):
            if axis == "x":
                lows = [(e.mbr.xmin, e.mbr.xmax) for e in entries]
            else:
                lows = [(e.mbr.ymin, e.mbr.ymax) for e in entries]
            total_lo = min(lo for lo, _ in lows)
            total_hi = max(hi for _, hi in lows)
            width = max(total_hi - total_lo, 1e-12)
            # Highest low side and lowest high side.
            hi_lo = max(range(len(entries)), key=lambda i: lows[i][0])
            lo_hi = min(range(len(entries)), key=lambda i: lows[i][1])
            if hi_lo == lo_hi:
                continue
            sep = (lows[hi_lo][0] - lows[lo_hi][1]) / width
            if sep > best_sep:
                best_sep = sep
                best = (lo_hi, hi_lo)
        return best

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------

    def delete(self, obj: SpatialObject, tid: RecordId) -> bool:
        """Remove the entry with the given tuple id; True if found.

        Implements Guttman's Delete: FindLeaf, remove, CondenseTree with
        orphan re-insertion, root shrink.
        """
        leaf = self._find_leaf(self._root, obj.mbr(), tid)
        if leaf is None:
            return False
        leaf.entries = [e for e in leaf.entries if e.tid != tid]
        self._size -= 1
        self._condense_tree(leaf)
        # Shrink the root if it is an interior node with a single child.
        while not self._root.is_leaf and len(self._root.entries) == 1:
            child = self._root.entries[0].child
            assert child is not None
            child.parent = None
            self._root = child
        return True

    def _find_leaf(self, node: RTreeNode, rect: Rect, tid: RecordId) -> RTreeNode | None:
        if node.is_leaf:
            if any(e.tid == tid for e in node.entries):
                return node
            return None
        for e in node.entries:
            if e.mbr.intersects(rect):
                assert e.child is not None
                found = self._find_leaf(e.child, rect, tid)
                if found is not None:
                    return found
        return None

    def _condense_tree(self, node: RTreeNode) -> None:
        orphans: list[RTreeEntry] = []
        current = node
        while current.parent is not None:
            parent = current.parent
            if len(current.entries) < self.min_entries:
                parent.entries = [e for e in parent.entries if e.child is not current]
                orphans.extend(self._collect_data_entries(current))
            else:
                for e in parent.entries:
                    if e.child is current:
                        e.mbr = current.mbr()
                        break
            current = parent
        for orphan in orphans:
            assert orphan.obj is not None and orphan.tid is not None
            self._size -= 1  # insert() will count it again
            self.insert(orphan.obj, orphan.tid)

    def _collect_data_entries(self, node: RTreeNode) -> list[RTreeEntry]:
        if node.is_leaf:
            return list(node.entries)
        out: list[RTreeEntry] = []
        for e in node.entries:
            assert e.child is not None
            out.extend(self._collect_data_entries(e.child))
        return out

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(self, rect: Rect) -> list[RTreeEntry]:
        """All data entries whose MBR intersects ``rect``."""
        out: list[RTreeEntry] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            for e in node.entries:
                if e.mbr.intersects(rect):
                    if node.is_leaf:
                        out.append(e)
                    else:
                        assert e.child is not None
                        stack.append(e.child)
        return out

    def search_tids(self, rect: Rect) -> list[RecordId]:
        """Tuple ids of all entries intersecting ``rect``."""
        return [e.tid for e in self.search(rect) if e.tid is not None]

    def data_entries(self) -> Iterator[RTreeEntry]:
        """All stored data entries (arbitrary order)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(e.child for e in node.entries if e.child is not None)

    # ------------------------------------------------------------------
    # Maintenance / introspection
    # ------------------------------------------------------------------

    def remap_tids(self, rid_map: dict) -> None:
        """Rewrite tuple ids after the backing relation was reclustered."""
        for e in self.data_entries():
            if e.tid in rid_map:
                e.tid = rid_map[e.tid]

    def __len__(self) -> int:
        return self._size

    def is_empty(self) -> bool:
        return self._size == 0

    def check_invariants(self) -> None:
        """Validate R-tree structural invariants (for tests).

        Checks entry counts, MBR consistency (parent entry rectangle equals
        the child's actual MBR), parent pointers and uniform leaf depth.
        """
        depths: set[int] = set()
        self._check_node(self._root, 0, depths, is_root=True)
        if len(depths) > 1:
            raise TreeError(f"leaves at multiple depths: {sorted(depths)}")

    def _check_node(self, node: RTreeNode, depth: int, depths: set[int], is_root: bool = False) -> None:
        if not is_root and not self.min_entries <= len(node.entries) <= self.max_entries:
            raise TreeError(
                f"node entry count {len(node.entries)} outside "
                f"[{self.min_entries}, {self.max_entries}]"
            )
        if is_root and len(node.entries) > self.max_entries:
            raise TreeError(f"root overfull: {len(node.entries)} entries")
        if node.is_leaf:
            depths.add(depth)
            for e in node.entries:
                if not e.is_data:
                    raise TreeError("leaf node contains a non-data entry")
                if e.obj is not None and not e.mbr.contains_rect(e.obj.mbr()):
                    raise TreeError("data entry MBR does not cover its object")
            return
        for e in node.entries:
            if e.child is None:
                raise TreeError("interior node contains a data entry")
            if e.child.parent is not node:
                raise TreeError("broken parent pointer")
            actual = e.child.mbr()
            if e.mbr != actual:
                raise TreeError(f"stale entry MBR: stored {e.mbr}, actual {actual}")
            self._check_node(e.child, depth + 1, depths)
