"""Application-specific cartographic hierarchies (Figure 3).

The paper's second family of generalization trees: a map divided into
countries, countries into states, states into cities -- every node an
application object the user may query for.  The tree is built either
explicitly (``add_child``) or automatically from a flat object set via
containment of the objects' geometries (``from_containment``).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import TreeError
from repro.predicates.dispatch import SpatialObject, exact_contains
from repro.storage.record import RecordId
from repro.trees.base import GeneralizationTree
from repro.trees.node import GTNode


class CartoTree(GeneralizationTree):
    """An explicit hierarchy of detail over application objects."""

    def __init__(self, root_region: SpatialObject, root_tid: RecordId | None = None,
                 root_payload: Any = None) -> None:
        self._root = GTNode(region=root_region, tid=root_tid, payload=root_payload)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_containment(
        cls,
        objects: Sequence[tuple[SpatialObject, RecordId | None]],
        root_region: SpatialObject,
    ) -> "CartoTree":
        """Build the hierarchy implied by geometric containment.

        Each object becomes a child of the *smallest* object that contains
        it (by exact containment test), or of the root if none does.
        Objects are processed largest-first so parents exist before their
        children.  Ties in area are broken deterministically by insertion
        order.
        """
        tree = cls(root_region)
        ranked = sorted(
            objects, key=lambda pair: -_area_of(pair[0])
        )
        placed: list[GTNode] = []
        for obj, tid in ranked:
            parent = tree._root
            # Find the smallest placed object containing this one.
            best: GTNode | None = None
            for candidate in placed:
                if exact_contains(candidate.region, obj):
                    if best is None or _area_of(candidate.region) < _area_of(best.region):
                        best = candidate
            if best is not None:
                parent = best
            node = GTNode(region=obj, tid=tid)
            parent.add_child(node)
            placed.append(node)
        return tree

    def add_child(self, parent: GTNode, region: SpatialObject,
                  tid: RecordId | None = None, payload: Any = None) -> GTNode:
        """Attach a new application object under ``parent``.

        The child's MBR must lie inside the parent's MBR (the defining
        containment invariant); violations raise immediately.
        """
        if not parent.region.mbr().contains_rect(region.mbr()):
            raise TreeError(
                f"child MBR {region.mbr()} not contained in parent MBR "
                f"{parent.region.mbr()}"
            )
        node = GTNode(region=region, tid=tid, payload=payload)
        parent.add_child(node)
        return node

    def insert(self, obj: SpatialObject, tid: RecordId) -> None:
        """Insert under the deepest existing node that contains ``obj``."""
        current = self._root
        if not current.region.mbr().contains_rect(obj.mbr()):
            raise TreeError(f"object MBR {obj.mbr()} outside the map root")
        descended = True
        while descended:
            descended = False
            for child in current.children:
                if child.region.mbr().contains_rect(obj.mbr()) and exact_contains(
                    child.region, obj
                ):
                    current = child
                    descended = True
                    break
        current.add_child(GTNode(region=obj, tid=tid))

    # ------------------------------------------------------------------
    # GeneralizationTree protocol
    # ------------------------------------------------------------------

    def root(self) -> GTNode:
        return self._root

    def children(self, node: GTNode) -> list[GTNode]:
        return node.children

    def region(self, node: GTNode) -> SpatialObject:
        return node.region

    def tid(self, node: GTNode) -> RecordId | None:
        return node.tid

    def remap_tids(self, rid_map: dict) -> None:
        """Rewrite tuple ids after the backing relation was reclustered."""
        for node in self.bfs_nodes():
            if node.tid in rid_map:
                node.tid = rid_map[node.tid]


def _area_of(obj: SpatialObject) -> float:
    """Comparable size measure: native area if available, else MBR area."""
    area = getattr(obj, "area", None)
    if callable(area):
        return area()
    return obj.mbr().area()
