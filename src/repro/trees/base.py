"""The traversal protocol all generalization trees implement.

Algorithms SELECT and JOIN (Sections 3.2-3.3) only need four things from
a tree: the root handle, each node's children, each node's spatial
region (for Theta tests) and each node's application payload (tuple id),
if any.  Keeping the protocol this small lets one traversal implementation
serve R-trees, cartographic hierarchies and the balanced model trees.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Any, Iterator

from repro.predicates.dispatch import SpatialObject
from repro.storage.record import RecordId


class GeneralizationTree(ABC):
    """Protocol for hierarchical spatial structures.

    Node handles are opaque to callers; only the methods below interpret
    them.  Concrete trees may use :class:`~repro.trees.node.GTNode`
    (cartographic / balanced trees) or their own node layout (R-tree).
    """

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------

    @abstractmethod
    def root(self) -> Any:
        """The root node handle (raises for an empty tree)."""

    @abstractmethod
    def children(self, node: Any) -> list[Any]:
        """Child handles of ``node`` (empty for leaves)."""

    @abstractmethod
    def region(self, node: Any) -> SpatialObject:
        """The node's spatial object, fed to Theta and theta tests."""

    @abstractmethod
    def tid(self, node: Any) -> RecordId | None:
        """Tuple id of the node's application object, or None if technical."""

    @abstractmethod
    def insert(self, obj: SpatialObject, tid: RecordId) -> None:
        """Add an application object; used for index maintenance costs."""

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        """True if the tree holds no nodes at all."""
        try:
            self.root()
        except Exception:
            return True
        return False

    def height(self) -> int:
        """Length of the longest root-to-leaf path (root at height 0).

        Matches the paper's convention: "the root of a tree is considered
        at height 0" and ``height(GT)`` is the deepest level index.
        """
        if self.is_empty():
            return 0
        depth = 0
        level = [self.root()]
        while True:
            nxt = [c for n in level for c in self.children(n)]
            if not nxt:
                return depth
            level = nxt
            depth += 1

    def bfs_nodes(self) -> Iterator[Any]:
        """All node handles in breadth-first order.

        This is the clustering order of strategy IIb ("clustered on their
        relevant spatial attribute in breadth-first order").
        """
        if self.is_empty():
            return
        queue = deque([self.root()])
        while queue:
            node = queue.popleft()
            yield node
            queue.extend(self.children(node))

    def dfs_nodes(self) -> Iterator[Any]:
        """All node handles in depth-first (preorder) order."""
        if self.is_empty():
            return
        stack = [self.root()]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self.children(node)))

    def bfs_tids(self) -> list[RecordId]:
        """Tuple ids of application objects in BFS order (for reclustering)."""
        return [t for t in (self.tid(n) for n in self.bfs_nodes()) if t is not None]

    def node_count(self) -> int:
        """Total number of nodes."""
        return sum(1 for _ in self.bfs_nodes())

    def leaf_count(self) -> int:
        """Number of leaves."""
        return sum(1 for n in self.bfs_nodes() if not self.children(n))

    def validate(self) -> None:
        """Check the containment invariant over the whole tree.

        Children's MBRs must lie within their parent's MBR -- the defining
        property of a generalization tree.  Raises
        :class:`~repro.errors.TreeError` on violation.
        """
        from repro.errors import TreeError

        if self.is_empty():
            return
        for node in self.bfs_nodes():
            parent_mbr = self.region(node).mbr()
            for child in self.children(node):
                if not parent_mbr.contains_rect(self.region(child).mbr()):
                    raise TreeError(
                        f"containment violation under node with MBR {parent_mbr}: "
                        f"child MBR {self.region(child).mbr()}"
                    )
