"""The R*-tree (Beckmann et al. 1990): a better generalization tree.

The paper's strategy II works over *any* generalization tree; its
performance depends on how tight the tree's regions are.  The R*-tree
improves on Guttman's R-tree with three devices, all implemented here:

* **ChooseSubtree** minimizes *overlap* enlargement at the level above
  the leaves (area enlargement elsewhere), not just area;
* the **R\\*-split** picks the split axis by minimum total margin and the
  distribution by minimum overlap between the two groups;
* **forced reinsertion**: the first leaf overflow per insertion evicts
  the entries farthest from the node's center and re-inserts them, giving
  the tree a chance to migrate entries between nodes before splitting.

The class reuses the R-tree node layout and inherits search, deletion and
the :class:`~repro.trees.base.GeneralizationTree` protocol, so every
SELECT / JOIN / kNN algorithm runs on it unchanged -- which is exactly
what the ablation benchmark exploits.
"""

from __future__ import annotations

import math

from repro.errors import TreeError
from repro.geometry.rect import Rect
from repro.predicates.dispatch import SpatialObject
from repro.storage.record import RecordId
from repro.trees.rtree import RTree, RTreeEntry, RTreeNode


def _overlap_with_siblings(candidate: Rect, entries: list[RTreeEntry], skip: int) -> float:
    total = 0.0
    for i, other in enumerate(entries):
        if i == skip:
            continue
        inter = candidate.intersection(other.mbr)
        if inter is not None:
            total += inter.area()
    return total


class RStarTree(RTree):
    """R*-tree with forced reinsertion and margin-driven splits."""

    def __init__(
        self,
        max_entries: int = 10,
        min_entries: int | None = None,
        reinsert_fraction: float = 0.3,
    ) -> None:
        if min_entries is None:
            min_entries = max(1, int(math.ceil(0.4 * max_entries)))
            min_entries = min(min_entries, max_entries // 2)
        super().__init__(max_entries, min_entries, split="quadratic")
        if not 0.0 < reinsert_fraction < 1.0:
            raise TreeError(
                f"reinsert fraction must be in (0, 1), got {reinsert_fraction}"
            )
        self.reinsert_fraction = reinsert_fraction
        self._reinserting = False

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, obj: SpatialObject, tid: RecordId) -> None:
        entry = RTreeEntry(mbr=obj.mbr(), obj=obj, tid=tid)
        self._size += 1
        self._insert_data_entry(entry, allow_reinsert=not self._reinserting)

    def _insert_data_entry(self, entry: RTreeEntry, allow_reinsert: bool) -> None:
        leaf = self._choose_subtree(entry.mbr)
        leaf.entries.append(entry)
        if len(leaf.entries) > self.max_entries:
            self._overflow(leaf, allow_reinsert)
        else:
            self._adjust_mbrs_upward(leaf)

    def _choose_subtree(self, rect: Rect) -> RTreeNode:
        node = self._root
        while not node.is_leaf:
            children_are_leaves = all(
                e.child is not None and e.child.is_leaf for e in node.entries
            )
            if children_are_leaves:
                # Minimize overlap enlargement; ties by area enlargement,
                # then by area.
                def overlap_key(indexed: tuple[int, RTreeEntry]):
                    i, e = indexed
                    before = _overlap_with_siblings(e.mbr, node.entries, i)
                    after = _overlap_with_siblings(
                        e.mbr.union(rect), node.entries, i
                    )
                    return (
                        after - before,
                        e.mbr.enlargement(rect),
                        e.mbr.area(),
                    )

                _, best = min(enumerate(node.entries), key=overlap_key)
            else:
                best = min(
                    node.entries,
                    key=lambda e: (e.mbr.enlargement(rect), e.mbr.area()),
                )
            assert best.child is not None
            node = best.child
        return node

    # ------------------------------------------------------------------
    # Overflow treatment
    # ------------------------------------------------------------------

    def _overflow(self, node: RTreeNode, allow_reinsert: bool) -> None:
        if allow_reinsert and node.is_leaf and node.parent is not None:
            self._forced_reinsert(node)
        else:
            self._rstar_split_and_adjust(node)

    def _forced_reinsert(self, node: RTreeNode) -> None:
        """Evict the farthest entries and insert them again from the top."""
        center = node.mbr().centerpoint()
        ranked = sorted(
            node.entries,
            key=lambda e: e.mbr.centerpoint().squared_distance_to(center),
            reverse=True,
        )
        count = max(1, int(self.reinsert_fraction * len(ranked)))
        evicted = ranked[:count]
        node.entries = ranked[count:]
        self._adjust_mbrs_upward(node)
        self._reinserting = True
        try:
            for e in evicted:
                self._insert_data_entry(e, allow_reinsert=False)
        finally:
            self._reinserting = False

    def _rstar_split_and_adjust(self, node: RTreeNode) -> None:
        sibling = self._rstar_split(node)
        parent = node.parent
        if parent is None:
            new_root = RTreeNode(is_leaf=False)
            for child in (node, sibling):
                child.parent = new_root
                new_root.entries.append(RTreeEntry(mbr=child.mbr(), child=child))
            self._root = new_root
            return
        for e in parent.entries:
            if e.child is node:
                e.mbr = node.mbr()
                break
        sibling.parent = parent
        parent.entries.append(RTreeEntry(mbr=sibling.mbr(), child=sibling))
        if len(parent.entries) > self.max_entries:
            self._rstar_split_and_adjust(parent)
        else:
            self._adjust_mbrs_upward(parent)

    # ------------------------------------------------------------------
    # The R*-split
    # ------------------------------------------------------------------

    def _rstar_split(self, node: RTreeNode) -> RTreeNode:
        """Split by minimum-margin axis, minimum-overlap distribution."""
        entries = node.entries
        m = self.min_entries
        best_axis_cost = None
        best_groups: tuple[list[RTreeEntry], list[RTreeEntry]] | None = None

        for axis in ("x", "y"):
            if axis == "x":
                sortings = [
                    sorted(entries, key=lambda e: (e.mbr.xmin, e.mbr.xmax)),
                    sorted(entries, key=lambda e: (e.mbr.xmax, e.mbr.xmin)),
                ]
            else:
                sortings = [
                    sorted(entries, key=lambda e: (e.mbr.ymin, e.mbr.ymax)),
                    sorted(entries, key=lambda e: (e.mbr.ymax, e.mbr.ymin)),
                ]
            margin_total = 0.0
            axis_best: tuple[float, float, list, list] | None = None
            for ordering in sortings:
                for k in range(m, len(ordering) - m + 1):
                    left = ordering[:k]
                    right = ordering[k:]
                    mbr_l = Rect.union_of(e.mbr for e in left)
                    mbr_r = Rect.union_of(e.mbr for e in right)
                    margin_total += mbr_l.perimeter() + mbr_r.perimeter()
                    inter = mbr_l.intersection(mbr_r)
                    overlap = inter.area() if inter is not None else 0.0
                    area = mbr_l.area() + mbr_r.area()
                    candidate = (overlap, area, left, right)
                    if axis_best is None or candidate[:2] < axis_best[:2]:
                        axis_best = candidate
            assert axis_best is not None
            if best_axis_cost is None or margin_total < best_axis_cost:
                best_axis_cost = margin_total
                best_groups = (axis_best[2], axis_best[3])

        assert best_groups is not None
        group_a, group_b = best_groups
        sibling = RTreeNode(is_leaf=node.is_leaf)
        node.entries = list(group_a)
        sibling.entries = list(group_b)
        if not node.is_leaf:
            for e in sibling.entries:
                assert e.child is not None
                e.child.parent = sibling
        return sibling
