"""ASCII rendering of generalization trees (debugging / teaching aid).

Prints the hierarchy the way Figures 2 and 3 draw it: one line per node
with its region extent, payload marker and child indentation, plus a
compact per-level summary for large trees.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.trees.base import GeneralizationTree


def render_tree(
    tree: GeneralizationTree,
    *,
    max_depth: int | None = None,
    max_children: int = 8,
    label: Callable[[Any], str] | None = None,
) -> str:
    """A multi-line drawing of the tree.

    ``max_depth`` truncates deep trees; ``max_children`` elides wide
    sibling lists (an ellipsis line reports how many were hidden);
    ``label`` customizes the per-node text (default: region MBR extent
    plus a ``*`` marker for application objects).
    """
    if tree.is_empty():
        return "(empty tree)"

    def default_label(node: Any) -> str:
        mbr = tree.region(node).mbr()
        marker = "*" if tree.tid(node) is not None else " "
        return (
            f"{marker} [{mbr.xmin:.6g}, {mbr.ymin:.6g}] .. "
            f"[{mbr.xmax:.6g}, {mbr.ymax:.6g}]"
        )

    describe = label if label is not None else default_label
    lines: list[str] = []

    def walk(node: Any, prefix: str, connector: str, depth: int) -> None:
        lines.append(f"{prefix}{connector}{describe(node)}")
        if max_depth is not None and depth >= max_depth:
            children = tree.children(node)
            if children:
                lines.append(f"{prefix}    ... {len(children)} children pruned")
            return
        children = tree.children(node)
        shown = children[:max_children]
        hidden = len(children) - len(shown)
        child_prefix = prefix + ("    " if connector in ("", "`-- ") else "|   ")
        for i, child in enumerate(shown):
            last = i == len(shown) - 1 and hidden == 0
            walk(child, child_prefix, "`-- " if last else "|-- ", depth + 1)
        if hidden > 0:
            lines.append(f"{child_prefix}`-- ... {hidden} more children")

    walk(tree.root(), "", "", 0)
    return "\n".join(lines)


def level_summary(tree: GeneralizationTree) -> str:
    """One line per level: node count and application-object count."""
    if tree.is_empty():
        return "(empty tree)"
    lines = ["level  nodes  app-objects"]
    level = [tree.root()]
    depth = 0
    while level:
        app = sum(1 for n in level if tree.tid(n) is not None)
        lines.append(f"{depth:>5}  {len(level):>5}  {app:>11}")
        level = [c for n in level for c in tree.children(n)]
        depth += 1
    return "\n".join(lines)
