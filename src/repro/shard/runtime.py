"""The shard runtime: standing workers over per-shard durable storage.

Each shard pairs two halves:

* a **durable half** owned by the runtime (parent side): its own
  :class:`~repro.storage.disk.SimulatedDisk`, write-ahead log, buffer
  pool, per-table :class:`~repro.relational.relation.Relation` heap
  files, and a cumulative :class:`~repro.storage.costs.CostMeter`.  All
  mutations hit this half first (logged, WAL ``sync="always"``) -- it is
  what survives a crash and what :func:`repro.wal.recover` replays;
* a **volatile half**: a standing worker (a real child process, or an
  in-process stand-in when process support is unavailable or determinism
  is preferred) holding the hot entry lists that serve selects and
  shard-local joins.

Killing a shard therefore loses only the volatile half.  The supervisor
(:mod:`repro.shard.supervisor`) replays the WAL, bumps the shard's
*generation*, spawns a fresh worker and reloads it -- and every reply
carries the generation it was computed under, so a router can never
consume a stale answer from a pre-crash incarnation.

``dispatch`` is the single chokepoint every routed request flows
through.  It assigns a global, monotonically increasing *dispatch
index*, which is the coordinate the fault plan's ``kill_shard_at``
schedule keys on: kills fire deterministically at exact request
boundaries, which is what lets the differential oracle enumerate every
boundary exhaustively.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any, Iterable

from repro.core.cancel import CancellationToken, check_cancel
from repro.errors import ShardCrashed, ShardError, ShardUnavailable
from repro.geometry.rect import Rect
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.parallel.partitioner import Entry
from repro.relational.relation import Relation
from repro.relational.schema import Column, ColumnType, Schema
from repro.shard.keyspace import ShardMap
from repro.shard.worker import ShardWorkerState, shard_worker_main
from repro.storage.buffer import BufferPool
from repro.storage.costs import CostMeter
from repro.storage.disk import SimulatedDisk
from repro.storage.record import RecordId
from repro.wal.log import WriteAheadLog

#: Exceptions that mean "this platform cannot start worker processes" --
#: the same set the parallel pool degrades on.
_SPAWN_ERRORS = (OSError, PermissionError, ValueError, ImportError)


class InlineTransport:
    """In-process stand-in for a worker: same ops, same reply triples.

    The deterministic default: no pickling, no scheduling jitter, and a
    ``kill`` flips a dead flag so every later request raises
    :class:`ShardCrashed` exactly like a dead pipe would.  A ``stall``
    op past the request timeout is treated as a hang: the caller would
    have given up waiting, so the incarnation is marked dead.
    """

    mode = "inline"

    def __init__(
        self, shard_id: int, generation: int, shard_map: ShardMap
    ) -> None:
        self.shard_id = shard_id
        self.generation = generation
        self.state = ShardWorkerState(shard_id, shard_map, generation)
        self._dead_reason: str | None = None

    def request(
        self, op: str, payload: dict[str, Any], timeout: float | None
    ) -> tuple[str, int, dict[str, Any]]:
        if self._dead_reason is not None:
            raise ShardCrashed(
                f"shard {self.shard_id} gen {self.generation} is dead "
                f"({self._dead_reason})"
            )
        if op == "crash":
            self._dead_reason = "crash op"
            raise ShardCrashed(
                f"shard {self.shard_id} gen {self.generation} crashed on demand"
            )
        if op == "stall":
            seconds = payload.get("seconds", 0.0)
            if timeout is not None and seconds > timeout:
                self._dead_reason = f"stalled {seconds}s past {timeout}s timeout"
                raise ShardCrashed(
                    f"shard {self.shard_id} gen {self.generation} "
                    f"hung past its {timeout}s deadline"
                )
            return "ok", self.generation, {"stalled": seconds}
        try:
            return "ok", self.generation, self.state.apply(op, payload)
        except Exception as exc:
            return "err", self.generation, {
                "type": type(exc).__name__, "message": str(exc),
            }

    def kill(self) -> None:
        self._dead_reason = "killed"

    def close(self) -> None:
        self._dead_reason = "closed"

    def alive(self) -> bool:
        return self._dead_reason is None


class ProcessTransport:
    """A standing worker process behind a duplex pipe.

    Crash detection is at the transport boundary: an EOF/broken pipe on
    the connection (the process died) or a reply missing its poll
    deadline (the process hung) both surface as :class:`ShardCrashed`.
    The transport never retries -- failover policy belongs to the
    router, recovery to the supervisor.
    """

    mode = "process"

    def __init__(
        self, shard_id: int, generation: int, shard_map: ShardMap
    ) -> None:
        self.shard_id = shard_id
        self.generation = generation
        ctx = multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=shard_worker_main,
            args=(child_conn, shard_id, generation, shard_map),
            daemon=True,
            name=f"shard-{shard_id}-gen{generation}",
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    def request(
        self, op: str, payload: dict[str, Any], timeout: float | None
    ) -> tuple[str, int, dict[str, Any]]:
        try:
            self.conn.send((op, payload))
            if not self.conn.poll(timeout):
                raise ShardCrashed(
                    f"shard {self.shard_id} gen {self.generation}: no reply "
                    f"to {op!r} within {timeout}s (hung or dead)"
                )
            return self.conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise ShardCrashed(
                f"shard {self.shard_id} gen {self.generation}: pipe to "
                f"worker broke during {op!r} ({type(exc).__name__})"
            ) from exc

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def close(self) -> None:
        """Graceful shutdown; escalates so no child ever outlives us."""
        try:
            if self.process.is_alive():
                self.conn.send(("exit", {}))
                if self.conn.poll(1.0):
                    self.conn.recv()
        except (EOFError, BrokenPipeError, OSError):
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=1.0)
        if self.process.is_alive():  # pragma: no cover - still stuck
            self.process.kill()
            self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def alive(self) -> bool:
        return self.process.is_alive()


class ShardHandle:
    """One shard: durable substrate + the current worker incarnation.

    ``metrics`` is the shard's *own* registry -- the fleet-aggregation
    source.  :meth:`ShardRuntime.fleet_metrics` merges every shard's
    snapshot into one registry under ``shard=<id>`` labels, which is how
    per-shard counters surface in the service's ``stats``.
    """

    def __init__(
        self,
        shard_id: int,
        zrange: tuple[int, int],
        *,
        memory_pages: int,
    ) -> None:
        self.shard_id = shard_id
        self.zrange = zrange
        self.generation = 0
        self.restarts = 0
        self.dispatches = 0
        self.meter = CostMeter()
        self.metrics = MetricsRegistry()
        self.disk = SimulatedDisk()
        self.pool = BufferPool(self.disk, memory_pages, self.meter)
        self.wal = WriteAheadLog(self.disk, self.meter)
        self.pool.wal = self.wal
        self.relations: dict[str, Relation] = {}
        self.transport: InlineTransport | ProcessTransport | None = None

    def describe(self) -> dict[str, Any]:
        return {
            "shard": self.shard_id,
            "zrange": list(self.zrange),
            "generation": self.generation,
            "restarts": self.restarts,
            "dispatches": self.dispatches,
            "mode": self.transport.mode if self.transport else "down",
            "alive": bool(self.transport and self.transport.alive()),
            "tables": sorted(self.relations),
            "rows": sum(len(r) for r in self.relations.values()),
            "wal_last_lsn": self.wal.last_lsn,
        }


class ShardRuntime:
    """The standing shard fleet: storage, workers, and the dispatch gate.

    ``processes=False`` (default) runs every shard on the inline
    transport -- fully deterministic, no IPC.  ``processes=True`` spawns
    real worker processes and degrades shard-by-shard to inline (with
    ``degrade_reason`` recorded) where the platform refuses, mirroring
    the parallel pool's policy of degrading loudly, never silently.

    The runtime is also a context manager; ``close()`` guarantees no
    worker process outlives it.
    """

    def __init__(
        self,
        universe: Rect,
        n_shards: int,
        *,
        bits: int = 4,
        processes: bool = False,
        fault_plan: Any = None,
        metrics: Any = None,
        flight: FlightRecorder | None = None,
        request_timeout: float = 5.0,
        memory_pages: int = 512,
    ) -> None:
        self.shard_map = ShardMap.split_uniform(universe, n_shards, bits=bits)
        self.processes = processes
        self.plan = fault_plan
        self.metrics = metrics
        #: Optional incident log; the query service hands its own in via
        #: ``attach_shards`` so fleet events land next to service events.
        self.flight = flight
        self.request_timeout = request_timeout
        self.memory_pages = memory_pages
        self.degrade_reason: str | None = None
        #: table -> spatial column the entries are built from.
        self.columns: dict[str, str] = {}
        self._insert_counters: dict[str, int] = {}
        self._dispatch_index = 0
        self.shards = [
            ShardHandle(i, self.shard_map.zrange(i), memory_pages=memory_pages)
            for i in range(n_shards)
        ]
        for shard in self.shards:
            shard.transport = self._spawn_transport(shard.shard_id, 0)
        self._closed = False
        # Late imports break the runtime <-> supervisor/router cycle.
        from repro.shard.router import ShardRouter
        from repro.shard.supervisor import ShardSupervisor

        self.supervisor = ShardSupervisor(self)
        self.router = ShardRouter(self)

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _spawn_transport(
        self, shard_id: int, generation: int
    ) -> InlineTransport | ProcessTransport:
        if self.processes:
            try:
                return ProcessTransport(shard_id, generation, self.shard_map)
            except _SPAWN_ERRORS as exc:
                # Same contract as the parallel pool: degrade to the
                # in-process path and say why, never silently.
                self.degrade_reason = f"{type(exc).__name__}: {exc}"
        return InlineTransport(shard_id, generation, self.shard_map)

    def kill_shard(self, shard_id: int) -> None:
        """Kill the shard's current worker incarnation (volatile half only).

        The durable half is untouched -- exactly what a process crash
        does.  The next request to the shard raises
        :class:`ShardCrashed`; the supervisor restarts it from the WAL.
        """
        shard = self.shards[shard_id]
        if shard.transport is not None:
            shard.transport.kill()
        if self.flight is not None:
            self.flight.record(
                "shard_kill", shard=shard_id, generation=shard.generation
            )

    def close(self) -> None:
        """Stop every worker; idempotent; leaves no child processes."""
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            if shard.transport is not None:
                shard.transport.close()

    def __enter__(self) -> "ShardRuntime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The dispatch gate
    # ------------------------------------------------------------------

    def dispatch(
        self,
        shard: ShardHandle,
        op: str,
        payload: dict[str, Any],
        *,
        cancel: CancellationToken | None = None,
        timeout: float | None = None,
        meter: CostMeter | None = None,
    ) -> dict[str, Any]:
        """Send one op to one shard; the only path routed requests take.

        Applies, in order: cooperative cancellation, the fault plan's
        shard-kill schedule (keyed on the global dispatch index assigned
        here), the transport request with its timeout, the stale-
        generation check, and worker-meter absorption.  Raises
        :class:`ShardCrashed` for transport-level death and
        :class:`ShardError` for worker-side errors (which do *not* mean
        the shard is down).

        ``meter`` is the per-query meter of the request that caused this
        dispatch: the worker's reply meter (its per-request delta) is
        absorbed into it *and* into the shard's cumulative meter, which
        is what extends the trace conservation law across the process
        boundary -- a killed dispatch yields no reply, hence no delta,
        and its re-dispatch yields exactly one.
        """
        if self._closed:
            raise ShardError("shard runtime is closed")
        check_cancel(cancel)
        index = self._dispatch_index
        self._dispatch_index += 1
        shard.dispatches += 1
        if self.metrics is not None:
            self.metrics.counter("shard.dispatches", op=op).inc()
        shard.metrics.counter("shard.ops", op=op).inc()
        if self.plan is not None:
            victim = self.plan.take_shard_kill(index, shard.shard_id)
            if victim is not None:
                self.kill_shard(victim)
        if shard.transport is None:  # pragma: no cover - defensive
            raise ShardCrashed(f"shard {shard.shard_id} has no worker")
        status, generation, result = shard.transport.request(
            op, payload, self.request_timeout if timeout is None else timeout
        )
        if generation != shard.generation:
            # A reply computed by a pre-crash incarnation: never consume.
            raise ShardCrashed(
                f"stale reply from shard {shard.shard_id}: generation "
                f"{generation}, current {shard.generation}"
            )
        if status == "err":
            raise ShardError(
                f"shard {shard.shard_id}: {result.get('type')}: "
                f"{result.get('message')}"
            )
        delta = result.pop("meter", None)
        if delta is not None:
            shard.meter.absorb(delta)
            if meter is not None:
                meter.absorb(delta)
            for key, value in delta.snapshot().items():
                if key != "total" and value:
                    shard.metrics.counter(f"shard.cost.{key}").inc(int(value))
            shard.metrics.gauge("shard.cost.total").set(shard.meter.total())
        return result

    def _mutate(
        self,
        shard: ShardHandle,
        op: str,
        payload: dict[str, Any],
        *,
        cancel: CancellationToken | None = None,
    ) -> None:
        """Ship a volatile mutation to a worker, crash-tolerantly.

        Mutations commit durably (heap + WAL) *before* this dispatch, so
        a crash here loses only the volatile copy -- and a restart
        rebuilds the worker from the durable heap, which already holds
        the row.  Re-dispatching the lost op after the restart would
        double-apply it; the restart alone *is* the recovery.  A shard
        whose fresh incarnation dies during the reload is genuinely
        unavailable.
        """
        try:
            self.dispatch(shard, op, payload, cancel=cancel)
        except ShardCrashed:
            try:
                self.supervisor.restart(shard)
            except ShardCrashed as exc:
                raise ShardUnavailable(
                    f"shard {shard.shard_id} failed to restart after a "
                    f"crashed {op!r}: {exc}",
                    shard_id=shard.shard_id,
                    attempts=1,
                ) from exc

    # ------------------------------------------------------------------
    # Data definition and mutation (durable first, then volatile)
    # ------------------------------------------------------------------

    def _extended_schema(self, schema: Schema) -> Schema:
        """The source schema prefixed with the logical tuple identity.

        ``pid``/``slot`` persist the *logical* :class:`RecordId` of each
        row (the source relation's tid, or a runtime-assigned id for
        live inserts), so results from shard-local heaps are byte-
        identical to the unsharded oracle's -- no id translation layer.
        """
        for column in schema.columns:
            if column.name in ("pid", "slot"):
                raise ShardError(
                    f"column name {column.name!r} is reserved by the shard "
                    "runtime"
                )
        return Schema([
            Column("pid", ColumnType.INT),
            Column("slot", ColumnType.INT),
            *schema.columns,
        ])

    def create_table(self, name: str, schema: Schema, column: str) -> None:
        """Register a sharded table: one relation per shard, same WAL rules
        as any other relation, plus the empty volatile tables."""
        if name in self.columns:
            raise ShardError(f"table {name!r} already exists")
        if column not in schema.column_names:
            raise ShardError(
                f"table {name!r} has no column {column!r} to shard on"
            )
        extended = self._extended_schema(schema)
        self.columns[name] = column
        self._insert_counters[name] = 0
        for shard in self.shards:
            shard.relations[name] = Relation(
                f"{name}@{shard.shard_id}", extended, shard.pool,
                wal=shard.wal,
            )
            self._mutate(shard, "create", {"table": name})

    def load_relation(
        self, relation: Relation, column: str, *, table: str | None = None
    ) -> int:
        """Bulk-load an existing relation into the fleet.

        Every row is replicated -- durably and volatilely -- into each
        shard whose key range its MBR touches; the source tid rides
        along as the logical identity.  Returns the row count loaded.
        """
        name = relation.name if table is None else table
        self.create_table(name, relation.schema, column)
        batches: dict[int, tuple[list[Entry], list[list[Any]]]] = {
            shard.shard_id: ([], []) for shard in self.shards
        }
        count = 0
        for t in relation.scan():
            count += 1
            geom = t[column]
            mbr = geom.mbr()
            row = [t.tid.page_id, t.tid.slot, *t.values]
            for shard_id in self.shard_map.covering_shards(mbr):
                entries, rows = batches[shard_id]
                entries.append((t.tid, mbr, geom))
                rows.append(row)
        for shard in self.shards:
            entries, rows = batches[shard.shard_id]
            shard.relations[name].insert_all(rows)
            if entries:
                self._mutate(
                    shard, "load", {"table": name, "entries": entries}
                )
        return count

    def insert(self, table: str, values: Iterable[Any]) -> RecordId:
        """Insert one row; returns its runtime-assigned logical tid.

        Runtime tids use page id ``-1`` so they can never collide with a
        bulk-loaded source tid (heap page ids are non-negative).
        """
        column = self._column_of(table)
        values = list(values)
        self._insert_counters[table] += 1
        tid = RecordId(-1, self._insert_counters[table])
        source = self._source_schema(table)
        geom = values[source.index_of(column)]
        mbr = geom.mbr()
        for shard_id in self.shard_map.covering_shards(mbr):
            shard = self.shards[shard_id]
            shard.relations[table].insert([tid.page_id, tid.slot, *values])
            self._mutate(
                shard, "insert",
                {"table": table, "entry": (tid, mbr, geom)},
            )
        return tid

    def delete(self, table: str, tid: RecordId) -> int:
        """Delete a logical tuple everywhere it was replicated.

        Returns the number of shards that held a replica.  Durable
        deletes go by pid/slot scan (logged per shard); volatile deletes
        are broadcast -- a shard without the tuple deletes zero rows.
        """
        self._column_of(table)
        hit = 0
        for shard in self.shards:
            rel = shard.relations[table]
            victims = [
                t.tid for t in rel.scan()
                if t["pid"] == tid.page_id and t["slot"] == tid.slot
            ]
            for victim in victims:
                rel.delete(victim)
            self._mutate(shard, "delete", {"table": table, "tid": tid})
            if victims:
                hit += 1
        return hit

    def _column_of(self, table: str) -> str:
        try:
            return self.columns[table]
        except KeyError:
            raise ShardError(f"no sharded table {table!r}") from None

    def _source_schema(self, table: str) -> Schema:
        # Any shard's relation carries the extended schema; strip the
        # identity prefix back off.
        extended = self.shards[0].relations[table].schema
        return Schema(list(extended.columns)[2:])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """One self-describing snapshot of the whole fleet."""
        return {
            "n_shards": len(self.shards),
            "bits": self.shard_map.bits,
            "processes": self.processes,
            "degrade_reason": self.degrade_reason,
            "tables": sorted(self.columns),
            "dispatches": self._dispatch_index,
            "restarts": sum(s.restarts for s in self.shards),
            "shards": [s.describe() for s in self.shards],
        }

    def meter_snapshot(self) -> dict[str, float]:
        return CostMeter.merge([s.meter for s in self.shards]).snapshot()

    def fleet_metrics(self, into: MetricsRegistry | None = None) -> MetricsRegistry:
        """Merge every shard's registry into one, labelled ``shard=<id>``.

        Counters max-merge and gauges/histograms adopt the shard's
        state (see :meth:`MetricsRegistry.absorb_snapshot`), so calling
        this on every ``stats`` request is safe -- re-absorbing the same
        fleet never double-counts.
        """
        registry = into if into is not None else MetricsRegistry()
        for shard in self.shards:
            registry.absorb_snapshot(
                shard.metrics.snapshot(), shard=str(shard.shard_id)
            )
        return registry
