"""The shard router: distributed selects/joins with failover.

Routing follows the replication geometry: a SELECT fans out to every
shard whose key range the query window touches (all shards for
operators without MBR-intersection semantics) and deduplicates by
logical tid -- replicas may match on several shards.  A JOIN runs as
independent shard-local partition joins whose reference-point ownership
test *is* the boundary exchange: each shard holds replicas of every
entry touching its range, so pairs straddling a shard boundary are
computed by the one shard owning the pair's reference point, and the
router only concatenates.

Failover is per shard and bounded: a :class:`~repro.errors.ShardCrashed`
from the dispatch gate triggers a supervisor restart and a re-dispatch,
at most ``retries`` times per shard per query.  The degraded-result
policy is explicit and all-or-nothing -- a query either transparently
survives (every shard eventually answered from a live generation) or
raises a typed :class:`~repro.errors.ShardUnavailable`.  No partial
answer is ever returned, silently or otherwise.

Cancellation (PR 7 tokens) is checked before every dispatch *and* every
failover attempt: a deadline-expired query stops failing over instead of
burning its remaining budget on restarts.

Tracing: when the caller hands ``select``/``join`` a
:class:`~repro.obs.context.TraceContext`, the router carries its wire
form in every dispatch payload and **grafts** the remote span records
each reply ships back into the caller's tracer -- so a sharded query
renders (and conserves cost) as one tree.  Killed dispatches return no
spans and no meter delta; the re-dispatch after failover returns exactly
one of each, which is why the conservation law survives mid-query
crashes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.cancel import CancellationToken, check_cancel
from repro.errors import JoinError, ShardCrashed, ShardUnavailable
from repro.geometry.rect import Rect
from repro.join.result import JoinResult, SelectResult
from repro.obs.context import TraceContext
from repro.predicates.theta import Overlaps, ThetaOperator
from repro.storage.costs import CostMeter
from repro.storage.record import RecordId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.obs.trace import NullTracer, Tracer
    from repro.shard.runtime import ShardHandle, ShardRuntime


class ShardRouter:
    """Executes distributed queries against the fleet, absorbing crashes."""

    def __init__(self, runtime: "ShardRuntime", *, retries: int = 2) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.runtime = runtime
        self.retries = retries

    # ------------------------------------------------------------------
    # Failover core
    # ------------------------------------------------------------------

    def _unavailable(
        self, shard: "ShardHandle", message: str, attempts: int,
        cause: BaseException,
    ) -> ShardUnavailable:
        """A typed unavailability error carrying the flight-recorder tail.

        The last few incident events ride on the exception
        (``flight_events``), so the error a client eventually sees
        already names the kills/restarts that caused it.
        """
        exc = ShardUnavailable(
            message, shard_id=shard.shard_id, attempts=attempts
        )
        if self.runtime.flight is not None:
            exc.flight_events = self.runtime.flight.tail(6)
        exc.__cause__ = cause
        return exc

    def _call(
        self,
        shard: "ShardHandle",
        op: str,
        payload: dict[str, Any],
        cancel: CancellationToken | None,
        *,
        meter: CostMeter | None = None,
        tracer: "Tracer | NullTracer | None" = None,
    ) -> dict[str, Any]:
        """One op against one shard, with restart + re-dispatch on crash.

        Worker-side errors (a bad table name, say) propagate untouched:
        the shard is healthy, failing over would re-ask the same wrong
        question.  Only transport-level :class:`ShardCrashed` triggers
        the failover path.

        ``meter`` collects the worker's reply delta (see
        :meth:`ShardRuntime.dispatch`); ``tracer`` receives the reply's
        remote spans as a graft under its active span.
        """
        runtime = self.runtime
        attempts = 0
        while True:
            check_cancel(cancel)
            try:
                result = runtime.dispatch(
                    shard, op, payload, cancel=cancel, meter=meter
                )
                if tracer is not None and "spans" in result:
                    tracer.graft(result.pop("spans"))
                return result
            except ShardCrashed as exc:
                attempts += 1
                if attempts > self.retries:
                    raise self._unavailable(
                        shard,
                        f"shard {shard.shard_id} unavailable after "
                        f"{attempts} attempt(s): {exc}",
                        attempts, exc,
                    ) from exc
                if runtime.metrics is not None:
                    runtime.metrics.counter(
                        "shard.failovers", shard=str(shard.shard_id)
                    ).inc()
                if runtime.flight is not None:
                    runtime.flight.record(
                        "failover",
                        shard=shard.shard_id,
                        op=op,
                        attempt=attempts,
                        generation=shard.generation,
                    )
                check_cancel(cancel)
                try:
                    runtime.supervisor.restart(shard)
                except ShardCrashed as restart_exc:
                    raise self._unavailable(
                        shard,
                        f"shard {shard.shard_id} failed to restart: "
                        f"{restart_exc}",
                        attempts, restart_exc,
                    ) from restart_exc

    # ------------------------------------------------------------------
    # Distributed queries
    # ------------------------------------------------------------------

    def select(
        self,
        table: str,
        window: Rect,
        theta: ThetaOperator,
        *,
        cancel: CancellationToken | None = None,
        with_payloads: bool = True,
        trace: TraceContext | None = None,
        meter: CostMeter | None = None,
        tracer: "Tracer | NullTracer | None" = None,
    ) -> SelectResult:
        """``{t : theta(window, t.column)}`` across the fleet.

        ``overlaps`` routes by the window's covering shards (replication
        guarantees any matching entry has a replica there); every other
        operator broadcasts.  Matches are deduplicated by logical tid
        and returned in sorted tid order -- deterministic regardless of
        which replicas answered.
        """
        runtime = self.runtime
        runtime._column_of(table)
        if isinstance(theta, Overlaps):
            shard_ids = runtime.shard_map.covering_shards(window.mbr())
        else:
            shard_ids = list(range(len(runtime.shards)))
        payload: dict[str, Any] = {
            "table": table, "window": window, "theta": theta,
        }
        if trace is not None:
            payload["trace"] = trace.to_wire()
        tids: set[RecordId] = set()
        for shard_id in shard_ids:
            result = self._call(
                runtime.shards[shard_id], "select", payload, cancel,
                meter=meter, tracer=tracer,
            )
            tids.update(result["tids"])
        ordered = sorted(tids)
        payloads: dict[RecordId, Any] = {}
        if with_payloads and ordered:
            payloads = self._lookup(table, set(ordered))
        return SelectResult(
            strategy=(
                f"shard-select[{len(shard_ids)}/{len(runtime.shards)}]"
            ),
            matches=[(tid, payloads.get(tid)) for tid in ordered],
        )

    def join(
        self,
        table_r: str,
        table_s: str,
        theta: ThetaOperator,
        *,
        cancel: CancellationToken | None = None,
        trace: TraceContext | None = None,
        meter: CostMeter | None = None,
        tracer: "Tracer | NullTracer | None" = None,
        interval=None,
    ) -> JoinResult:
        """Distributed join: shard-local sweeps, reference-point dedup.

        Gated to ``overlaps`` like the other partition strategies: the
        reference-point rule is only sound for predicates that imply MBR
        intersection.

        ``interval`` (an :class:`~repro.intermediate.filter.IntervalSpec`)
        rides in the dispatch payload; each worker builds its own
        raster-interval filter on that grid and resolves sure hits and
        misses without exact evaluation.  ``None`` keeps the exact path.
        """
        runtime = self.runtime
        runtime._column_of(table_r)
        runtime._column_of(table_s)
        if not isinstance(theta, Overlaps):
            raise JoinError(
                "sharded join supports only the 'overlaps' operator "
                "(reference-point deduplication requires MBR intersection)"
            )
        payload: dict[str, Any] = {
            "table_r": table_r, "table_s": table_s, "theta": theta,
        }
        if interval is not None:
            payload["interval"] = interval
        if trace is not None:
            payload["trace"] = trace.to_wire()
        pairs: list[tuple[RecordId, RecordId]] = []
        for shard in runtime.shards:
            result = self._call(
                shard, "join", payload, cancel,
                meter=meter, tracer=tracer,
            )
            pairs.extend(result["pairs"])
        pairs.sort()
        return JoinResult(
            strategy=f"shard-partition[{len(runtime.shards)}]",
            pairs=pairs,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _lookup(
        self, table: str, tids: set[RecordId]
    ) -> dict[RecordId, Any]:
        """Source-row payloads for matched tids, from the durable heaps.

        Reads the parent-side relations (any replica serves), so it
        needs no worker round-trip and works even mid-failover.
        """
        found: dict[RecordId, Any] = {}
        for shard in self.runtime.shards:
            if len(found) == len(tids):
                break
            for t in shard.relations[table].scan():
                tid = RecordId(t["pid"], t["slot"])
                if tid in tids and tid not in found:
                    found[tid] = t
        return found
