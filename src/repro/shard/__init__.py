"""Supervised shard runtime: standing z-order shards that survive crashes.

The subsystem generalizes :mod:`repro.parallel` (one worker pool per
query) to a *standing* fleet: each shard owns a contiguous z-order key
range with its own durable heap files, write-ahead log, buffer pool and
cost meter, and serves queries from a long-lived worker.  A supervisor
health-checks the fleet and restarts crashed shards through
:func:`repro.wal.recover`; a router executes distributed selects and
joins with bounded failover.  See ``docs/sharding.md`` for the
architecture and the degraded-result policy.
"""

from repro.errors import ShardCrashed, ShardError, ShardUnavailable
from repro.shard.keyspace import ShardMap
from repro.shard.router import ShardRouter
from repro.shard.runtime import ShardHandle, ShardRuntime
from repro.shard.supervisor import ShardSupervisor

__all__ = [
    "ShardCrashed",
    "ShardError",
    "ShardHandle",
    "ShardMap",
    "ShardRouter",
    "ShardRuntime",
    "ShardSupervisor",
    "ShardUnavailable",
]
