"""The shard worker: the compute half of one standing shard.

A worker holds the *volatile* copy of its shard's data -- per-table entry
lists ``(tid, mbr, geometry)`` replicated from the durable, parent-side
heap/WAL -- and evaluates selections and shard-local partition joins
against it.  Killing the worker process loses nothing durable: the
supervisor replays the shard's WAL into a fresh relation image and
reloads a new worker from it.

The same :class:`ShardWorkerState` drives both transports: the process
transport runs it behind a pipe in :func:`shard_worker_main`, the inline
transport calls it directly.  Replies are ``(status, generation,
payload)`` triples; the worker echoes the generation it was spawned with
so a router can discard stale replies from a pre-crash incarnation.

Join evaluation reuses the generalized plane-sweep kernel
(:func:`~repro.parallel.plane_sweep.sweep_sorted`) with shard ownership
of the reference point as the dedup predicate: each qualifying pair is
reported by exactly one shard of the fleet.

Tracing: when a dispatch payload carries a ``"trace"`` context (see
:class:`~repro.obs.context.TraceContext`), select/join ops record their
work as spans on a throwaway per-request :class:`~repro.obs.Tracer`
whose process label is this incarnation's ``shard<id>g<gen>``, and the
reply carries ``"spans"`` -- exported records the router grafts into
the session's trace tree.  Requests without a context pay nothing: no
tracer is created.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro.errors import ShardError
from repro.obs.context import TraceContext
from repro.obs.trace import Tracer
from repro.parallel.partitioner import Entry
from repro.parallel.plane_sweep import sweep_sorted
from repro.predicates.theta import Overlaps
from repro.shard.keyspace import ShardMap
from repro.storage.costs import CostMeter


class ShardWorkerState:
    """Volatile per-shard state plus the op dispatch table.

    ``generation`` is this worker incarnation's number; it qualifies the
    trace process label (``shard2g1``) so spans recorded by a pre-crash
    incarnation can never share a uid with its successor's.
    """

    def __init__(self, shard_id: int, shard_map: ShardMap,
                 generation: int = 0) -> None:
        self.shard_id = shard_id
        self.shard_map = shard_map
        self.generation = generation
        self.tables: dict[str, list[Entry]] = {}
        #: Interval filters by spec: a join payload carrying an
        #: ``IntervalSpec`` reuses (or builds) this incarnation's filter
        #: for that grid, so replica geometries are rasterized once per
        #: worker lifetime, not once per request.
        self._interval_filters: dict[Any, Any] = {}
        #: Span ids minted by this incarnation so far.  Each traced
        #: request gets a throwaway tracer seeded here, so two requests
        #: served by the same worker never export colliding uids.
        self._span_seq = 0

    @property
    def process_label(self) -> str:
        """The trace process label of this worker incarnation."""
        return f"shard{self.shard_id}g{self.generation}"

    def _request_tracer(
        self, payload: dict[str, Any]
    ) -> tuple[Tracer | None, TraceContext | None]:
        """A per-request tracer when the payload carries a trace context.

        The context is read with ``get`` (never popped): the inline
        transport hands the router's own payload dict straight in, and a
        failover re-dispatch must still see it.
        """
        wire = payload.get("trace")
        if wire is None:
            return None, None
        ctx = wire if isinstance(wire, TraceContext) \
            else TraceContext.from_wire(wire)
        return Tracer(process=self.process_label,
                      first_id=self._span_seq), ctx

    def _export_spans(self, tracer: Tracer) -> list[dict[str, Any]]:
        """Export a request tracer's spans, advancing the id sequence."""
        self._span_seq = tracer._next_id
        return tracer.to_records()

    def _table(self, name: str) -> list[Entry]:
        try:
            return self.tables[name]
        except KeyError:
            raise ShardError(
                f"shard {self.shard_id} has no table {name!r}"
            ) from None

    def apply(self, op: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Execute one op; raises for unknown ops / missing tables."""
        if op == "ping":
            return {"pong": True, "shard": self.shard_id}
        if op == "create":
            self.tables.setdefault(payload["table"], [])
            return {"created": payload["table"]}
        if op == "load":
            entries = self.tables.setdefault(payload["table"], [])
            entries.extend(payload["entries"])
            return {"loaded": len(payload["entries"])}
        if op == "insert":
            self._table(payload["table"]).append(payload["entry"])
            return {"inserted": True}
        if op == "delete":
            entries = self._table(payload["table"])
            tid = payload["tid"]
            kept = [e for e in entries if e[0] != tid]
            removed = len(entries) - len(kept)
            self.tables[payload["table"]] = kept
            return {"deleted": removed}
        if op == "select":
            return self._select(payload)
        if op == "join":
            return self._join(payload)
        if op == "stall":
            # Only meaningful on the process transport, where the parent's
            # poll timeout expires while this sleep holds the reply back.
            time.sleep(payload.get("seconds", 0.0))
            return {"stalled": payload.get("seconds", 0.0)}
        if op == "exit":
            return {"bye": True}
        raise ShardError(f"shard {self.shard_id}: unknown op {op!r}")

    def _select(self, payload: dict[str, Any]) -> dict[str, Any]:
        """``{t : theta(window, t.geom)}`` over this shard's replicas.

        The router deduplicates across shards by tid, so replicated
        entries may match on several shards.  ``overlaps`` gets an MBR
        prefilter (a necessary condition); other operators evaluate
        exactly on every entry -- their truth is not implied by MBR
        intersection.
        """
        window = payload["window"]
        theta = payload["theta"]
        meter = CostMeter()
        tracer, ctx = self._request_tracer(payload)
        tids = []
        prefilter = isinstance(theta, Overlaps)

        def scan(entries: list[Entry]) -> None:
            for tid, mbr, geom in entries:
                if prefilter:
                    meter.record_filter_eval()
                    if (
                        mbr.xmin > window.xmax or window.xmin > mbr.xmax
                        or mbr.ymin > window.ymax or window.ymin > mbr.ymax
                    ):
                        continue
                meter.record_exact_eval()
                if theta(window, geom):
                    tids.append(tid)

        entries = self._table(payload["table"])
        if tracer is None:
            scan(entries)
            return {"tids": tids, "meter": meter}
        with tracer.span(
            "shard.select", meter=meter,
            shard=self.shard_id, generation=self.generation,
            trace_id=ctx.trace_id, seq=ctx.seq, table=payload["table"],
        ) as span:
            scan(entries)
            span.set_tag("matches", len(tids))
        return {"tids": tids, "meter": meter,
                "spans": self._export_spans(tracer)}

    def _interval_refiner(self, payload: dict[str, Any], theta: Any) -> Any:
        """This incarnation's interval filter for the payload's spec.

        Payloads without an ``"interval"`` key keep the exact path
        (``None`` refiner).  The spec travels over the wire, not the
        filter: each worker builds and memoizes its own approximations,
        so a restarted incarnation rasterizes afresh rather than
        trusting pre-crash state.
        """
        spec = payload.get("interval")
        if spec is None:
            return None
        flt = self._interval_filters.get(spec)
        if flt is None:
            from repro.intermediate.filter import IntervalFilter

            flt = IntervalFilter(theta, spec)
            self._interval_filters[spec] = flt
        return flt

    def _join(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Shard-local partition join: sweep the x-sorted replica lists,
        keeping only pairs whose reference point this shard owns."""
        theta = payload["theta"]
        meter = CostMeter()
        tracer, ctx = self._request_tracer(payload)
        refiner = self._interval_refiner(payload, theta)
        owner = self.shard_map.owner_shard
        me = self.shard_id

        def owns(x: float, y: float) -> bool:
            return owner(x, y) == me

        if tracer is None:
            entries_r = sorted(
                self._table(payload["table_r"]), key=lambda e: e[1].xmin
            )
            entries_s = sorted(
                self._table(payload["table_s"]), key=lambda e: e[1].xmin
            )
            pairs = sweep_sorted(entries_r, entries_s, theta, meter, owns,
                                 refiner)
            return {"pairs": pairs, "meter": meter}
        with tracer.span(
            "shard.join", meter=meter,
            shard=self.shard_id, generation=self.generation,
            trace_id=ctx.trace_id, seq=ctx.seq,
        ) as span:
            with tracer.span("shard.join.sort", meter=meter):
                entries_r = sorted(
                    self._table(payload["table_r"]), key=lambda e: e[1].xmin
                )
                entries_s = sorted(
                    self._table(payload["table_s"]), key=lambda e: e[1].xmin
                )
            with tracer.span("shard.join.sweep", meter=meter) as sweep:
                pairs = sweep_sorted(entries_r, entries_s, theta, meter, owns,
                                     refiner)
                sweep.set_tag("pairs", len(pairs))
            span.set_tag("pairs", len(pairs))
        return {"pairs": pairs, "meter": meter,
                "spans": self._export_spans(tracer)}


def shard_worker_main(
    conn: Any, shard_id: int, generation: int, shard_map: ShardMap
) -> None:
    """Process entrypoint: serve ops off the pipe until exit/crash/EOF.

    ``crash`` dies via ``os._exit`` *without replying* -- the poisoned-
    IPC case the parent detects as an EOF/timeout.  Worker-side errors
    are replied as ``("err", generation, {...})`` and keep the loop
    alive: a bad request must not look like a crashed shard.
    """
    state = ShardWorkerState(shard_id, shard_map, generation)
    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):
            break
        if op == "crash":
            os._exit(1)
        try:
            result = state.apply(op, payload)
        except Exception as exc:  # reply, don't die: not a crash
            try:
                conn.send(
                    ("err", generation,
                     {"type": type(exc).__name__, "message": str(exc)})
                )
            except (BrokenPipeError, OSError):
                break
            continue
        try:
            conn.send(("ok", generation, result))
        except (BrokenPipeError, OSError):
            break
        if op == "exit":
            break
    conn.close()
