"""Z-order keyspace partitioning for the shard runtime.

A :class:`ShardMap` divides the universe into ``2^bits x 2^bits`` grid
cells, orders the cells along the Peano/z-order curve (Figure 1 of the
paper), and cuts the curve into contiguous intervals -- one standing
shard per interval.  Every shard therefore owns a compact set of cells,
and routing a point is two integer operations: quantize to a cell,
bisect the cut points.

Replication and deduplication mirror :class:`~repro.parallel.partitioner.
GridSpec` exactly: an MBR is replicated to every shard whose cell region
it touches (closed-set corner semantics, clamped at the universe border)
and a candidate pair is owned by the single shard owning its reference
point.  Because cell assignment is the same clamped floor in both
directions, the owner cell of a reference point always lies inside the
corner ranges of both MBRs -- so the owning shard is guaranteed to hold
both entries, and each qualifying pair is reported exactly once across
the shard fleet with no dedup pass.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.errors import ShardError
from repro.geometry.rect import Rect
from repro.geometry.zorder import interleave


@dataclass(frozen=True, slots=True)
class ShardMap:
    """An immutable cut of the z-order curve into shard key ranges.

    ``boundaries`` are the strictly increasing interior cut points: shard
    ``i`` owns the z-value interval ``[boundaries[i-1], boundaries[i])``
    (with 0 and ``4^bits`` as the outer limits).  Immutable so the map
    can be shipped to worker processes once and shared by reference.
    """

    universe: Rect
    bits: int
    boundaries: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ShardError(f"bits must be >= 1, got {self.bits}")
        if self.universe.width <= 0 or self.universe.height <= 0:
            raise ShardError(
                f"shard universe must have positive area, got {self.universe}"
            )
        total = 1 << (2 * self.bits)
        previous = 0
        for b in self.boundaries:
            if not previous < b < total:
                raise ShardError(
                    f"boundaries must be strictly increasing in (0, {total}), "
                    f"got {self.boundaries}"
                )
            previous = b

    @classmethod
    def split_uniform(
        cls, universe: Rect, n_shards: int, *, bits: int = 4
    ) -> "ShardMap":
        """Cut the curve into ``n_shards`` equal-length cell intervals."""
        if n_shards < 1:
            raise ShardError(f"n_shards must be >= 1, got {n_shards}")
        total = 1 << (2 * bits)
        if n_shards > total:
            raise ShardError(
                f"cannot split {total} z-cells into {n_shards} shards; "
                f"raise bits"
            )
        boundaries = tuple(
            (i * total) // n_shards for i in range(1, n_shards)
        )
        return cls(universe=universe, bits=bits, boundaries=boundaries)

    @property
    def n_shards(self) -> int:
        return len(self.boundaries) + 1

    @property
    def cells_per_axis(self) -> int:
        return 1 << self.bits

    def cell_of(self, x: float, y: float) -> tuple[int, int]:
        """Grid cell owning point ``(x, y)``; clamped at the border so
        protruding geometries still have an owner (GridSpec semantics)."""
        n = self.cells_per_axis
        u = self.universe
        gx = min(n - 1, max(0, int((x - u.xmin) / u.width * n)))
        gy = min(n - 1, max(0, int((y - u.ymin) / u.height * n)))
        return gx, gy

    def z_of(self, x: float, y: float) -> int:
        gx, gy = self.cell_of(x, y)
        return interleave(gx, gy, self.bits)

    def owner_shard(self, x: float, y: float) -> int:
        """The unique shard owning point ``(x, y)``."""
        return bisect_right(self.boundaries, self.z_of(x, y))

    def zrange(self, shard_id: int) -> tuple[int, int]:
        """Closed z-value interval ``[lo, hi]`` owned by ``shard_id``."""
        if not 0 <= shard_id < self.n_shards:
            raise ShardError(
                f"shard id {shard_id} out of range for {self.n_shards} shards"
            )
        lo = 0 if shard_id == 0 else self.boundaries[shard_id - 1]
        total = 1 << (2 * self.bits)
        hi = (
            total - 1
            if shard_id == self.n_shards - 1
            else self.boundaries[shard_id] - 1
        )
        return lo, hi

    def covering_shards(self, mbr: Rect) -> list[int]:
        """Sorted shard ids whose cell region intersects ``mbr``.

        Closed-set corner semantics, exactly like
        :meth:`GridSpec.covering_cells`: an MBR on a cell seam is
        replicated to both neighbours, so the owner of any reference
        point on the seam holds both entries of the pair.
        """
        gx0, gy0 = self.cell_of(mbr.xmin, mbr.ymin)
        gx1, gy1 = self.cell_of(mbr.xmax, mbr.ymax)
        shards: set[int] = set()
        for gy in range(gy0, gy1 + 1):
            for gx in range(gx0, gx1 + 1):
                z = interleave(gx, gy, self.bits)
                shards.add(bisect_right(self.boundaries, z))
        return sorted(shards)

    def describe(self) -> str:
        ranges = ", ".join(
            f"s{i}=[{lo},{hi}]"
            for i, (lo, hi) in (
                (i, self.zrange(i)) for i in range(self.n_shards)
            )
        )
        return (
            f"ShardMap({self.n_shards} shards over "
            f"{self.cells_per_axis}x{self.cells_per_axis} z-cells: {ranges})"
        )
