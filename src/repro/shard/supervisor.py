"""The shard supervisor: heartbeats, crash detection, WAL-backed restart.

Crash detection covers the three ways a shard dies:

* **exit** -- the worker process terminated (EOF on the pipe);
* **hang** -- a reply missed its deadline (the poll timeout);
* **poisoned IPC** -- the pipe broke mid-message.

All three surface as :class:`~repro.errors.ShardCrashed` at the
transport, so the supervisor has exactly one recovery path:
:meth:`ShardSupervisor.restart`.  It replays the shard's write-ahead log
with PR 3's :func:`repro.wal.recover` -- the same code path that
recovers a whole database from a crashed disk image -- adopts the
recovered substrate, bumps the shard *generation* (the epoch stamp that
makes stale pre-crash replies detectable), spawns a fresh worker and
reloads its volatile tables from the recovered heaps.

Heartbeats are lightweight ``ping`` probes with their own (short)
timeout.  They deliberately bypass the runtime's dispatch gate: probes
must not consume dispatch indices, or the fault plan's kill schedule
would depend on supervision cadence and the exhaustive kill-at-every-
boundary oracle would lose determinism.  A seeded fault plan can drop
probes (``heartbeat_drop_rate``); only ``miss_threshold`` *consecutive*
misses declare the shard dead, so a drop-prone network below the burst
cap never triggers a spurious restart.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.errors import ShardCrashed
from repro.storage.record import RecordId
from repro.wal.recovery import recover

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.shard.runtime import ShardHandle, ShardRuntime


class ShardSupervisor:
    """Health-checks the fleet and restarts crashed shards."""

    def __init__(
        self,
        runtime: "ShardRuntime",
        *,
        miss_threshold: int = 3,
        heartbeat_timeout: float = 1.0,
    ) -> None:
        if miss_threshold < 1:
            raise ValueError(
                f"miss_threshold must be >= 1, got {miss_threshold}"
            )
        self.runtime = runtime
        self.miss_threshold = miss_threshold
        self.heartbeat_timeout = heartbeat_timeout
        self._misses: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------

    def heartbeat(self, shard: "ShardHandle") -> bool:
        """One ping probe; True when the shard answered from the current
        generation within the heartbeat deadline."""
        runtime = self.runtime
        plan = runtime.plan
        if plan is not None and plan.draw_heartbeat_drop(shard.shard_id):
            # The probe was lost on the (simulated) wire: the shard may
            # be perfectly healthy, so this only counts toward the
            # consecutive-miss threshold.
            self._note(shard, ok=False)
            if runtime.metrics is not None:
                runtime.metrics.counter(
                    "shard.heartbeat_drops", shard=str(shard.shard_id)
                ).inc()
            return False
        started = time.perf_counter()
        try:
            status, generation, _ = shard.transport.request(
                "ping", {}, self.heartbeat_timeout
            )
            ok = status == "ok" and generation == shard.generation
        except ShardCrashed:
            ok = False
        if runtime.metrics is not None:
            from repro.obs.metrics import DURATION_BUCKETS

            runtime.metrics.histogram(
                "shard.heartbeat_seconds", buckets=DURATION_BUCKETS
            ).observe(time.perf_counter() - started)
        self._note(shard, ok=ok)
        if ok and plan is not None:
            plan.note_heartbeat_ok(shard.shard_id)
        return ok

    def _note(self, shard: "ShardHandle", *, ok: bool) -> None:
        if ok:
            self._misses[shard.shard_id] = 0
        else:
            self._misses[shard.shard_id] = (
                self._misses.get(shard.shard_id, 0) + 1
            )

    def misses(self, shard_id: int) -> int:
        return self._misses.get(shard_id, 0)

    # ------------------------------------------------------------------
    # Crash handling
    # ------------------------------------------------------------------

    def check(self, shard: "ShardHandle") -> bool:
        """Probe one shard; restart it after ``miss_threshold``
        consecutive misses.  Returns True when a restart happened."""
        if self.heartbeat(shard):
            return False
        if self._misses.get(shard.shard_id, 0) < self.miss_threshold:
            return False
        self.restart(shard)
        return True

    def check_all(self) -> list[int]:
        """One supervision sweep; returns the ids of restarted shards."""
        return [
            shard.shard_id
            for shard in self.runtime.shards
            if self.check(shard)
        ]

    def restart(self, shard: "ShardHandle") -> None:
        """Bring a crashed (or suspect) shard back from its WAL.

        The sequence is the whole crash-recovery story in one method:
        kill any remnant of the old incarnation, replay the durable log
        into a fresh substrate, bump the generation, spawn a new worker
        and reload it from the recovered heaps.  The worker reload goes
        straight through the transport -- not the dispatch gate -- so
        restarts never consume dispatch indices (kills stay pinned to
        query boundaries) and never recurse into the kill schedule.
        """
        runtime = self.runtime
        started = time.perf_counter()
        if shard.transport is not None:
            shard.transport.kill()
        relations, report = recover(
            shard.disk,
            memory_pages=runtime.memory_pages,
            meter=shard.meter,
        )
        # Adopt the recovered substrate: recover() rebuilds onto a fresh
        # disk and returns its WAL/pool on the report.
        shard.wal = report.wal
        shard.pool = report.buffer_pool
        shard.disk = report.buffer_pool.disk
        shard.relations = {
            name.rsplit("@", 1)[0]: rel for name, rel in relations.items()
        }
        shard.generation += 1
        shard.restarts += 1
        if runtime.flight is not None:
            runtime.flight.record(
                "wal_recovery",
                shard=shard.shard_id,
                replayed=report.records_replayed,
                last_lsn=report.last_lsn,
            )
        shard.transport = runtime._spawn_transport(
            shard.shard_id, shard.generation
        )
        self._reload_worker(shard)
        self._misses[shard.shard_id] = 0
        if runtime.flight is not None:
            runtime.flight.record(
                "shard_restart",
                shard=shard.shard_id,
                generation=shard.generation,
                restarts=shard.restarts,
            )
        if runtime.plan is not None:
            runtime.plan.note_shard_restart(shard.shard_id)
        if runtime.metrics is not None:
            runtime.metrics.counter(
                "shard.restarts", shard=str(shard.shard_id)
            ).inc()
            runtime.metrics.gauge(
                "shard.generation", shard=str(shard.shard_id)
            ).set(shard.generation)
            runtime.metrics.histogram("shard.restart_seconds").observe(
                time.perf_counter() - started
            )

    def _reload_worker(self, shard: "ShardHandle") -> None:
        """Rebuild the new incarnation's volatile tables from the
        recovered durable heaps (logical tids ride in pid/slot)."""
        runtime = self.runtime
        for table, rel in sorted(shard.relations.items()):
            column = runtime.columns[table]
            entries = []
            for t in rel.scan():
                geom = t[column]
                entries.append(
                    (RecordId(t["pid"], t["slot"]), geom.mbr(), geom)
                )
            self._worker_call(shard, "create", {"table": table})
            if entries:
                self._worker_call(
                    shard, "load", {"table": table, "entries": entries}
                )

    def _worker_call(self, shard: "ShardHandle", op: str, payload: dict) -> None:
        status, generation, result = shard.transport.request(
            op, payload, self.runtime.request_timeout
        )
        if status != "ok" or generation != shard.generation:
            raise ShardCrashed(
                f"shard {shard.shard_id}: reload {op!r} failed "
                f"(status={status}, generation={generation})"
            )
