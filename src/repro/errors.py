"""Exception hierarchy for the spatial-joins reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package.

    ``retryable`` is the client-facing contract of every error: True
    means the failed request was *not executed* (or is otherwise safe to
    re-issue verbatim) and a retry may succeed.  Subclasses override the
    class attribute or set an instance attribute where retryability is
    per-instance (e.g. :class:`ServerBusy`).
    """

    retryable = False


class GeometryError(ReproError):
    """Invalid geometric input (degenerate polygon, negative radius, ...)."""


class PredicateError(ReproError):
    """A theta/Theta operator was applied to unsupported operand types."""


class StorageError(ReproError):
    """Simulated-disk layer failure (bad page id, record overflow, ...)."""


class TransientStorageError(StorageError):
    """A page access that failed *this time* but may succeed on retry.

    The fault-injection layer raises this for flaky reads/writes; the
    buffer pool absorbs it with bounded retries.  Anything that escapes
    the pool did so only after the retry budget was exhausted.
    """


class PermanentStorageError(StorageError):
    """A page that is gone for good -- retrying cannot bring it back.

    Raised for injected permanent page losses.  The buffer pool does not
    retry these; recovery, if any, happens at the execution layer
    (strategy fallback or chunk re-execution).
    """


class TornPageError(TransientStorageError):
    """A read found a page whose checksum does not match its content.

    Models a torn (partially persisted) write detected on the next read.
    It is transient: the simulated recovery path restores the page from
    its in-memory twin, so a retry succeeds.
    """


class CrashError(StorageError):
    """The simulated device crashed: its durable image is frozen.

    Raised by a :class:`~repro.faults.disk.FaultyDisk` once a scheduled
    crash point is reached, and for every access afterwards.  It is *not*
    transient -- no retry can talk to a crashed disk.  The only way
    forward is :func:`repro.wal.recover` over the frozen image.
    """


class WALError(StorageError):
    """Write-ahead-log protocol violation.

    Most importantly: an attempt to flush a dirty data page whose log
    record has not yet reached the disk (the WAL rule), or malformed log
    state encountered outside recovery (recovery itself degrades
    gracefully -- a torn tail is truncated, not raised).
    """


class WorkerError(ReproError):
    """A parallel worker chunk crashed or timed out.

    The pool recovers by re-executing the chunk sequentially; this error
    escapes only when that recovery itself fails.
    """


class BufferPoolError(StorageError):
    """Buffer-pool misuse: over-pinning, eviction of a pinned page, ..."""


class RecordError(StorageError):
    """Record (de)serialization failure or out-of-range record id."""


class SchemaError(ReproError):
    """Relation schema violation (unknown column, wrong value type, ...)."""


class RelationError(ReproError):
    """Relation-level failure (duplicate tuple id, missing index, ...)."""


class BTreeError(ReproError):
    """B+-tree structural error or invalid key operation."""


class TreeError(ReproError):
    """Generalization-tree structural error (containment violation, ...)."""


class JoinError(ReproError):
    """Spatial join execution failure (missing index, bad strategy, ...)."""


class ExecutionError(JoinError):
    """Every strategy in the executor's fallback chain failed.

    Carries the per-attempt report so callers can see what was tried and
    why each attempt died.
    """

    def __init__(self, message: str, report: object | None = None) -> None:
        super().__init__(message)
        self.report = report


class QueryCancelled(ReproError):
    """The query's :class:`~repro.core.cancel.CancellationToken` fired.

    Raised by cooperative checks at strategy-attempt, partition-chunk
    and tree-level boundaries once the token was cancelled (by a drain,
    an explicit client abort, or the service watchdog).  Never
    retryable: the caller asked for the work to stop, so re-issuing the
    identical request would be self-defeating.  Cancellation unwinds
    through the executor's fallback chain without triggering fallbacks
    and vetoes cache admission of any partial or post-deadline result.
    """

    retryable = False


class DeadlineExceeded(QueryCancelled):
    """The query outlived its deadline and was cancelled.

    A :class:`QueryCancelled` whose cause is the request's own
    ``deadline_ms`` budget.  Also not retryable -- the same request
    would burn the same budget; callers should raise the deadline or
    reduce the work instead.
    """


class ServerError(ReproError):
    """Base class for multi-session query-service failures."""


class ServerBusy(ServerError):
    """Admission control shed this query: the service is at capacity.

    Raised when the in-flight query limit is reached or a session
    exhausted its query budget.  The request was *not* executed; the
    client may retry later.  ``retryable`` distinguishes overload (try
    again) from an exhausted per-session budget (open a new session).
    """

    def __init__(self, message: str, *, retryable: bool = True) -> None:
        super().__init__(message)
        self.retryable = retryable


class SessionError(ServerError):
    """Session lifecycle misuse (closed session, unknown session id)."""


class ShuttingDown(ServerError):
    """The service is draining: new queries are refused, retryably.

    Sent to in-flight sessions for requests that arrive after
    :meth:`~repro.server.service.QueryService.begin_drain` -- the
    request was *not* executed and another server (or this one, after a
    restart) can serve it, so the error is always retryable.
    """

    retryable = True


class SnapshotConflict(ServerError):
    """A reader's pinned epoch moved and its retry budget ran out.

    Epoch-pinned reads are optimistic: a concurrent writer bumping an
    operand relation's modification epoch invalidates the attempt and
    the reader re-executes at a fresh pin.  This error surfaces only
    after the bounded retries were all invalidated in turn.  Retryable:
    the conflicting writers have (by then) committed, so a fresh attempt
    pins a fresh epoch and usually validates.
    """

    retryable = True

    def __init__(self, message: str, *, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class ProtocolError(ServerError):
    """Malformed request/reply line, or a server-side error on the wire.

    On the client, every ``ERR`` reply surfaces as a ProtocolError
    carrying the server's exception type name (``server_type``) and its
    retryable flag as transmitted.  A ProtocolError with
    ``server_type=None`` is *transport-level*: a malformed or truncated
    reply line, a broken connection -- the request's outcome is unknown
    and only idempotent requests may be safely retried.
    """

    def __init__(self, message: str, *, retryable: bool = False,
                 server_type: str | None = None) -> None:
        super().__init__(message)
        self.retryable = retryable
        self.server_type = server_type


class ShardError(ReproError):
    """Base class for shard-runtime failures."""


class ShardCrashed(ShardError):
    """One shard *incarnation* died mid-request (exit, hang, poisoned IPC).

    Transport-level: the supervisor restarts the shard from its WAL and
    the router re-dispatches, so this error is normally absorbed by
    failover and never reaches callers.  Retryable by definition -- the
    request was not answered and the restarted incarnation can serve it.
    """

    retryable = True


class ShardUnavailable(ShardError):
    """A shard stayed down past the router's failover budget.

    The degraded-result contract of the shard runtime: a distributed
    query either transparently survives shard crashes (restart +
    re-dispatch) or raises this typed error -- it never returns a silent
    partial answer.  Retryable: the supervisor keeps restarting the
    shard, so a later attempt may find it healthy again.
    """

    retryable = True

    def __init__(self, message: str, *, shard_id: int = -1,
                 attempts: int = 0) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.attempts = attempts


class CostModelError(ReproError):
    """Invalid cost-model parameterization (p out of range, n < 1, ...)."""


class ObservabilityError(ReproError):
    """Tracer/metrics misuse (unbalanced spans, metric type collision)."""


class WorkloadError(ReproError):
    """Synthetic workload generation failure (inconsistent parameters)."""


class IntermediateError(ReproError):
    """Raster-interval approximation misuse (mismatched universes,
    malformed interval sets, corrupt serialized approximations)."""
