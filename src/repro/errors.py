"""Exception hierarchy for the spatial-joins reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GeometryError(ReproError):
    """Invalid geometric input (degenerate polygon, negative radius, ...)."""


class PredicateError(ReproError):
    """A theta/Theta operator was applied to unsupported operand types."""


class StorageError(ReproError):
    """Simulated-disk layer failure (bad page id, record overflow, ...)."""


class TransientStorageError(StorageError):
    """A page access that failed *this time* but may succeed on retry.

    The fault-injection layer raises this for flaky reads/writes; the
    buffer pool absorbs it with bounded retries.  Anything that escapes
    the pool did so only after the retry budget was exhausted.
    """


class PermanentStorageError(StorageError):
    """A page that is gone for good -- retrying cannot bring it back.

    Raised for injected permanent page losses.  The buffer pool does not
    retry these; recovery, if any, happens at the execution layer
    (strategy fallback or chunk re-execution).
    """


class TornPageError(TransientStorageError):
    """A read found a page whose checksum does not match its content.

    Models a torn (partially persisted) write detected on the next read.
    It is transient: the simulated recovery path restores the page from
    its in-memory twin, so a retry succeeds.
    """


class CrashError(StorageError):
    """The simulated device crashed: its durable image is frozen.

    Raised by a :class:`~repro.faults.disk.FaultyDisk` once a scheduled
    crash point is reached, and for every access afterwards.  It is *not*
    transient -- no retry can talk to a crashed disk.  The only way
    forward is :func:`repro.wal.recover` over the frozen image.
    """


class WALError(StorageError):
    """Write-ahead-log protocol violation.

    Most importantly: an attempt to flush a dirty data page whose log
    record has not yet reached the disk (the WAL rule), or malformed log
    state encountered outside recovery (recovery itself degrades
    gracefully -- a torn tail is truncated, not raised).
    """


class WorkerError(ReproError):
    """A parallel worker chunk crashed or timed out.

    The pool recovers by re-executing the chunk sequentially; this error
    escapes only when that recovery itself fails.
    """


class BufferPoolError(StorageError):
    """Buffer-pool misuse: over-pinning, eviction of a pinned page, ..."""


class RecordError(StorageError):
    """Record (de)serialization failure or out-of-range record id."""


class SchemaError(ReproError):
    """Relation schema violation (unknown column, wrong value type, ...)."""


class RelationError(ReproError):
    """Relation-level failure (duplicate tuple id, missing index, ...)."""


class BTreeError(ReproError):
    """B+-tree structural error or invalid key operation."""


class TreeError(ReproError):
    """Generalization-tree structural error (containment violation, ...)."""


class JoinError(ReproError):
    """Spatial join execution failure (missing index, bad strategy, ...)."""


class ExecutionError(JoinError):
    """Every strategy in the executor's fallback chain failed.

    Carries the per-attempt report so callers can see what was tried and
    why each attempt died.
    """

    def __init__(self, message: str, report: object | None = None) -> None:
        super().__init__(message)
        self.report = report


class ServerError(ReproError):
    """Base class for multi-session query-service failures."""


class ServerBusy(ServerError):
    """Admission control shed this query: the service is at capacity.

    Raised when the in-flight query limit is reached or a session
    exhausted its query budget.  The request was *not* executed; the
    client may retry later.  ``retryable`` distinguishes overload (try
    again) from an exhausted per-session budget (open a new session).
    """

    def __init__(self, message: str, *, retryable: bool = True) -> None:
        super().__init__(message)
        self.retryable = retryable


class SessionError(ServerError):
    """Session lifecycle misuse (closed session, unknown session id)."""


class SnapshotConflict(ServerError):
    """A reader's pinned epoch moved and its retry budget ran out.

    Epoch-pinned reads are optimistic: a concurrent writer bumping an
    operand relation's modification epoch invalidates the attempt and
    the reader re-executes at a fresh pin.  This error surfaces only
    after the bounded retries were all invalidated in turn.
    """

    def __init__(self, message: str, *, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class ProtocolError(ServerError):
    """Malformed request line on the server's wire protocol."""


class CostModelError(ReproError):
    """Invalid cost-model parameterization (p out of range, n < 1, ...)."""


class ObservabilityError(ReproError):
    """Tracer/metrics misuse (unbalanced spans, metric type collision)."""


class WorkloadError(ReproError):
    """Synthetic workload generation failure (inconsistent parameters)."""
