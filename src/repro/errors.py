"""Exception hierarchy for the spatial-joins reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GeometryError(ReproError):
    """Invalid geometric input (degenerate polygon, negative radius, ...)."""


class PredicateError(ReproError):
    """A theta/Theta operator was applied to unsupported operand types."""


class StorageError(ReproError):
    """Simulated-disk layer failure (bad page id, record overflow, ...)."""


class BufferPoolError(StorageError):
    """Buffer-pool misuse: over-pinning, eviction of a pinned page, ..."""


class RecordError(StorageError):
    """Record (de)serialization failure or out-of-range record id."""


class SchemaError(ReproError):
    """Relation schema violation (unknown column, wrong value type, ...)."""


class RelationError(ReproError):
    """Relation-level failure (duplicate tuple id, missing index, ...)."""


class BTreeError(ReproError):
    """B+-tree structural error or invalid key operation."""


class TreeError(ReproError):
    """Generalization-tree structural error (containment violation, ...)."""


class JoinError(ReproError):
    """Spatial join execution failure (missing index, bad strategy, ...)."""


class CostModelError(ReproError):
    """Invalid cost-model parameterization (p out of range, n < 1, ...)."""


class WorkloadError(ReproError):
    """Synthetic workload generation failure (inconsistent parameters)."""
