"""JSON persistence for geometries and relations.

Reproducible experiments need datasets that can be saved, shared and
reloaded bit-exactly.  This module serializes every geometry type and
whole relations (schema + rows) to plain JSON, and restores them onto a
fresh simulated disk.  Indices are rebuilt rather than stored -- they are
derived state, and rebuilding exercises the same code paths as the
original load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.polyline import PolyLine
from repro.geometry.rect import Rect
from repro.relational.relation import Relation
from repro.relational.schema import Column, ColumnType, Schema
from repro.storage.buffer import BufferPool
from repro.storage.costs import CostMeter
from repro.storage.disk import SimulatedDisk


class PersistenceError(ReproError):
    """Malformed snapshot data."""


# ----------------------------------------------------------------------
# Geometry <-> dict
# ----------------------------------------------------------------------

def geometry_to_dict(obj: Any) -> dict:
    """A JSON-safe representation of any supported geometry."""
    if isinstance(obj, Point):
        return {"type": "point", "x": obj.x, "y": obj.y}
    if isinstance(obj, Rect):
        return {
            "type": "rect",
            "xmin": obj.xmin, "ymin": obj.ymin,
            "xmax": obj.xmax, "ymax": obj.ymax,
        }
    if isinstance(obj, Polygon):
        return {
            "type": "polygon",
            "vertices": [[v.x, v.y] for v in obj.vertices],
            "centerpoint": [obj.centerpoint().x, obj.centerpoint().y],
        }
    if isinstance(obj, PolyLine):
        return {
            "type": "polyline",
            "vertices": [[v.x, v.y] for v in obj.vertices],
        }
    raise PersistenceError(f"cannot serialize geometry of type {type(obj).__name__}")


def geometry_from_dict(data: dict) -> Any:
    """Inverse of :func:`geometry_to_dict`."""
    try:
        kind = data["type"]
    except (TypeError, KeyError):
        raise PersistenceError(f"geometry dict missing 'type': {data!r}") from None
    try:
        if kind == "point":
            return Point(data["x"], data["y"])
        if kind == "rect":
            return Rect(data["xmin"], data["ymin"], data["xmax"], data["ymax"])
        if kind == "polygon":
            center = data.get("centerpoint")
            return Polygon(
                [Point(x, y) for x, y in data["vertices"]],
                centerpoint=Point(*center) if center else None,
            )
        if kind == "polyline":
            return PolyLine([Point(x, y) for x, y in data["vertices"]])
    except (TypeError, KeyError, ValueError) as exc:
        # Name the geometry type and the offending field/shape -- a bare
        # KeyError('x') out of a 10k-row snapshot load is undebuggable.
        raise PersistenceError(
            f"malformed {kind!r} geometry: {type(exc).__name__}: {exc}"
        ) from exc
    raise PersistenceError(f"unknown geometry type {kind!r}")


# ----------------------------------------------------------------------
# Relation <-> dict
# ----------------------------------------------------------------------

def relation_to_dict(relation: Relation) -> dict:
    """Schema and rows of a relation, JSON-safe."""
    columns = [
        {"name": c.name, "type": c.type.value} for c in relation.schema.columns
    ]
    rows = []
    for t in relation.scan():
        row = []
        for column, value in zip(relation.schema.columns, t.values):
            row.append(geometry_to_dict(value) if column.type.is_spatial else value)
        rows.append(row)
    return {
        "name": relation.name,
        "record_size": relation.record_size,
        "utilization": relation.utilization,
        "columns": columns,
        "rows": rows,
    }


def relation_from_dict(
    data: dict,
    buffer_pool: BufferPool | None = None,
    *,
    memory_pages: int = 4000,
) -> Relation:
    """Rebuild a relation (onto a fresh disk unless a pool is given)."""
    if buffer_pool is None:
        buffer_pool = BufferPool(SimulatedDisk(), memory_pages, CostMeter())
    try:
        schema = Schema(
            [Column(c["name"], ColumnType(c["type"])) for c in data["columns"]]
        )
        relation = Relation(
            data["name"],
            schema,
            buffer_pool,
            record_size=data.get("record_size", 300),
            utilization=data.get("utilization", 0.75),
        )
        for i, row in enumerate(data["rows"]):
            if len(row) != len(schema.columns):
                raise PersistenceError(
                    f"row {i} of relation {data['name']!r} has {len(row)} "
                    f"values for {len(schema.columns)} schema columns"
                )
            values = [
                geometry_from_dict(v) if col.type.is_spatial else v
                for col, v in zip(schema.columns, row)
            ]
            relation.insert(values)
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"malformed relation snapshot: {exc}") from exc
    return relation


# ----------------------------------------------------------------------
# File-level snapshots
# ----------------------------------------------------------------------

def save_snapshot(path: str | Path, relations: dict[str, Relation]) -> None:
    """Write several relations to one JSON snapshot file."""
    payload = {
        "format": "repro-snapshot",
        "version": 1,
        "relations": {key: relation_to_dict(rel) for key, rel in relations.items()},
    }
    Path(path).write_text(json.dumps(payload))


def load_snapshot(
    path: str | Path,
    *,
    shared_pool: bool = True,
    memory_pages: int = 4000,
) -> dict[str, Relation]:
    """Load a snapshot; relations share one disk unless ``shared_pool=False``."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"cannot read snapshot {path}: {exc}") from exc
    if payload.get("format") != "repro-snapshot":
        raise PersistenceError(f"{path} is not a repro snapshot")
    pool = (
        BufferPool(SimulatedDisk(), memory_pages, CostMeter())
        if shared_pool
        else None
    )
    out: dict[str, Relation] = {}
    for key, data in payload["relations"].items():
        out[key] = relation_from_dict(
            data, buffer_pool=pool, memory_pages=memory_pages
        )
    return out
