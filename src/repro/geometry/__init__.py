"""Geometry kernel: the spatial data types the paper's joins operate on.

The paper (Section 2.2) defines spatial joins over columns of spatial data
types -- points, lines, polygons -- related by spatial operators.  This
subpackage provides those types from scratch, together with the exact
geometric tests the theta-operators of Table 1 need:

* :class:`~repro.geometry.point.Point` -- immutable 2-D point.
* :class:`~repro.geometry.rect.Rect` -- axis-aligned rectangle (MBR algebra).
* :class:`~repro.geometry.segment.Segment` -- line segment with robust
  orientation-based intersection tests.
* :class:`~repro.geometry.polygon.Polygon` -- simple polygon with area,
  centroid, point-in-polygon, overlap, containment and distance tests.
* :class:`~repro.geometry.polyline.PolyLine` -- open chain of segments.
* :mod:`~repro.geometry.zorder` -- Peano / z-order curve (Figure 1),
  substrate for the Orenstein sort-merge strategy.

All geometries expose ``mbr()`` returning their minimum bounding
:class:`Rect`; the Theta-filters in :mod:`repro.predicates` operate on these.
"""

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment
from repro.geometry.polygon import Polygon
from repro.geometry.polyline import PolyLine
from repro.geometry.zorder import (
    ZCell,
    decompose_rect,
    interleave,
    deinterleave,
    z_value,
)
from repro.geometry.algorithms import (
    clip_polygon,
    convex_hull,
    hull_polygon,
    intersection_area,
)

__all__ = [
    "Point",
    "Rect",
    "Segment",
    "Polygon",
    "PolyLine",
    "ZCell",
    "decompose_rect",
    "interleave",
    "deinterleave",
    "z_value",
    "convex_hull",
    "hull_polygon",
    "clip_polygon",
    "intersection_area",
]
