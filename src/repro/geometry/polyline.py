"""Open polylines -- the "lines" spatial data type of Section 2.2.

Road networks and boundaries in cartographic workloads are polylines; the
reachability operator ("reachable from o2 in x minutes") buffers them.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment


class PolyLine:
    """An open chain of line segments through at least two vertices."""

    __slots__ = ("_vertices", "_mbr")

    def __init__(self, vertices: Sequence[Point]) -> None:
        verts = tuple(vertices)
        if len(verts) < 2:
            raise GeometryError(f"a polyline needs at least 2 vertices, got {len(verts)}")
        self._vertices = verts
        self._mbr = Rect.from_points(verts)

    @property
    def vertices(self) -> tuple[Point, ...]:
        return self._vertices

    def segments(self) -> Iterable[Segment]:
        """The chain's segments, in order."""
        for a, b in zip(self._vertices, self._vertices[1:]):
            yield Segment(a, b)

    def length(self) -> float:
        """Total arc length."""
        return sum(s.length() for s in self.segments())

    def mbr(self) -> Rect:
        """Minimum bounding rectangle."""
        return self._mbr

    def centerpoint(self) -> Point:
        """Point halfway along the arc length (a natural 1-D centroid)."""
        target = self.length() / 2.0
        walked = 0.0
        for seg in self.segments():
            seg_len = seg.length()
            if walked + seg_len >= target:
                if seg_len == 0.0:
                    return seg.start
                return seg.point_at((target - walked) / seg_len)
            walked += seg_len
        return self._vertices[-1]

    def distance_to_point(self, p: Point) -> float:
        """Distance from ``p`` to the closest point of the chain."""
        return min(s.distance_to_point(p) for s in self.segments())

    def intersects(self, other: "PolyLine") -> bool:
        """True if any pair of segments from the two chains intersects."""
        if not self._mbr.intersects(other._mbr):
            return False
        other_segs = list(other.segments())
        return any(s1.intersects(s2) for s1 in self.segments() for s2 in other_segs)

    def translated(self, dx: float, dy: float) -> "PolyLine":
        """A new polyline shifted by ``(dx, dy)``."""
        return PolyLine([v.translated(dx, dy) for v in self._vertices])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolyLine):
            return NotImplemented
        return self._vertices == other._vertices

    def __hash__(self) -> int:
        return hash(self._vertices)

    def __repr__(self) -> str:
        return f"PolyLine({len(self._vertices)} vertices, length={self.length():.4g})"
