"""Hilbert curve encoding -- "any other spatial ordering" (Section 2.2).

After exhibiting the z-order counterexample, the paper asserts that
"similar examples can be constructed for any other spatial ordering."
The Hilbert curve is the strongest candidate ordering (it preserves
neighborhood better than the Peano curve on average), so the repository
implements it too and demonstrates -- in tests and a benchmark -- that
adjacent cells with arbitrarily large curve distance still exist.

Standard iterative bit-twiddling implementation: ``hilbert_index``
maps grid coordinates to the curve position and ``hilbert_coords``
inverts it.
"""

from __future__ import annotations

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


def _rotate(n: int, x: int, y: int, rx: int, ry: int) -> tuple[int, int]:
    if ry == 0:
        if rx == 1:
            x = n - 1 - x
            y = n - 1 - y
        x, y = y, x
    return x, y


def hilbert_index(x: int, y: int, bits: int) -> int:
    """Position of grid cell ``(x, y)`` on the order-``bits`` Hilbert curve."""
    if bits < 0:
        raise GeometryError(f"bit count must be non-negative, got {bits}")
    n = 1 << bits
    if not (0 <= x < n and 0 <= y < n):
        raise GeometryError(f"grid coordinates ({x}, {y}) out of range for {bits} bits")
    d = 0
    s = n >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        x, y = _rotate(s, x, y, rx, ry)
        s >>= 1
    return d


def hilbert_coords(d: int, bits: int) -> tuple[int, int]:
    """Inverse of :func:`hilbert_index`."""
    n = 1 << bits
    if not 0 <= d < n * n:
        raise GeometryError(f"curve position {d} out of range for {bits} bits")
    x = y = 0
    t = d
    s = 1
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        x, y = _rotate(s, x, y, rx, ry)
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return x, y


def hilbert_value(p: Point, universe: Rect, bits: int) -> int:
    """Hilbert position of the grid cell containing ``p`` (cf.
    :func:`~repro.geometry.zorder.z_value`)."""
    if universe.width <= 0 or universe.height <= 0:
        raise GeometryError("universe rectangle must have positive area")
    if not universe.contains_point(p):
        raise GeometryError(f"point {p} outside universe {universe}")
    cells = 1 << bits
    gx = min(int((p.x - universe.xmin) / universe.width * cells), cells - 1)
    gy = min(int((p.y - universe.ymin) / universe.height * cells), cells - 1)
    return hilbert_index(gx, gy, bits)


def window_runs(bits: int, index_fn, wx: int, wy: int, width: int) -> int:
    """Contiguous curve segments covering a square query window.

    The classic clustering measure (Moon et al.): fewer runs mean fewer
    random seeks for a range query over curve-sorted data.  ``index_fn``
    is any grid linearization taking ``(x, y, bits)``.
    """
    cells = sorted(
        index_fn(x, y, bits)
        for x in range(wx, wx + width)
        for y in range(wy, wy + width)
    )
    if not cells:
        return 0
    runs = 1
    for a, b in zip(cells, cells[1:]):
        if b != a + 1:
            runs += 1
    return runs


def average_window_runs(bits: int, index_fn, width: int) -> float:
    """Mean :func:`window_runs` over all placements of a width^2 window.

    The Hilbert curve beats the Peano/z-order curve on this clustering
    measure, even though its worst adjacent-cell gap is no better -- both
    facts are exercised by the test suite.
    """
    n = 1 << bits
    if width > n:
        raise GeometryError(f"window width {width} exceeds grid size {n}")
    total = 0
    count = 0
    for x in range(n - width + 1):
        for y in range(n - width + 1):
            total += window_runs(bits, index_fn, x, y, width)
            count += 1
    return total / count


def worst_adjacent_gap(bits: int, index_fn) -> tuple[int, tuple[int, int], tuple[int, int]]:
    """The largest curve-distance between edge-adjacent grid cells.

    ``index_fn(x, y, bits)`` is any grid linearization.  Returns the gap
    and the offending cell pair -- the quantitative form of the paper's
    "no total ordering preserves spatial proximity".
    """
    n = 1 << bits
    worst = (0, (0, 0), (0, 0))
    for x in range(n):
        for y in range(n):
            here = index_fn(x, y, bits)
            for dx, dy in ((1, 0), (0, 1)):
                nx, ny = x + dx, y + dy
                if nx < n and ny < n:
                    gap = abs(index_fn(nx, ny, bits) - here)
                    if gap > worst[0]:
                        worst = (gap, (x, y), (nx, ny))
    return worst
