"""Simple polygons: the ``lake.larea`` data type of the paper's example.

Implements the exact geometric tests that back the theta-operators of
Table 1 for polygonal operands: overlap, inclusion, containment, distance
between closest points, and centerpoint (center of gravity, which the
paper says may also be user-defined -- see ``Polygon(..., centerpoint=)``).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment

_EPS = 1e-12


class Polygon:
    """A simple (non-self-intersecting) polygon with at least three vertices.

    Vertices may be listed clockwise or counter-clockwise; the constructor
    normalizes nothing but all measures are orientation-independent.  The
    polygon is treated as a closed region (boundary included), matching the
    closed-set semantics of the rectangle algebra.
    """

    __slots__ = ("_vertices", "_mbr", "_centerpoint", "_area")

    def __init__(self, vertices: Sequence[Point], centerpoint: Point | None = None) -> None:
        verts = list(vertices)
        if len(verts) < 3:
            raise GeometryError(f"a polygon needs at least 3 vertices, got {len(verts)}")
        # Drop a closing vertex that duplicates the first one.
        if verts[0] == verts[-1] and len(verts) > 3:
            verts = verts[:-1]
        self._vertices: tuple[Point, ...] = tuple(verts)
        self._mbr = Rect.from_points(self._vertices)
        self._area = self._signed_area()
        # Exact zero only: legitimately thin polygons (slivers) have tiny
        # but nonzero area and must not be rejected.
        if self._area == 0.0:
            raise GeometryError("polygon is degenerate (zero area)")
        # The paper notes that in cartographic applications the centerpoint
        # is often defined explicitly by the user; otherwise we use the
        # center of gravity.
        self._centerpoint = centerpoint if centerpoint is not None else self._centroid()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_rect(cls, rect: Rect) -> "Polygon":
        """Polygon with the same extent as ``rect``."""
        if rect.area() <= 0:
            raise GeometryError("cannot build a polygon from a degenerate rectangle")
        return cls(list(rect.corners()))

    @classmethod
    def regular(cls, center: Point, radius: float, sides: int) -> "Polygon":
        """Regular ``sides``-gon inscribed in a circle of ``radius``."""
        if sides < 3:
            raise GeometryError(f"a regular polygon needs at least 3 sides, got {sides}")
        if radius <= 0:
            raise GeometryError(f"radius must be positive, got {radius}")
        verts = [
            Point(
                center.x + radius * math.cos(2.0 * math.pi * i / sides),
                center.y + radius * math.sin(2.0 * math.pi * i / sides),
            )
            for i in range(sides)
        ]
        return cls(verts, centerpoint=center)

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------

    @property
    def vertices(self) -> tuple[Point, ...]:
        return self._vertices

    def _signed_area(self) -> float:
        """Shoelace formula; positive for counter-clockwise vertex order."""
        total = 0.0
        verts = self._vertices
        for i, a in enumerate(verts):
            b = verts[(i + 1) % len(verts)]
            total += a.x * b.y - b.x * a.y
        return total / 2.0

    def area(self) -> float:
        """Unsigned area."""
        return abs(self._area)

    def perimeter(self) -> float:
        return sum(seg.length() for seg in self.edges())

    def _centroid(self) -> Point:
        """Center of gravity via the standard shoelace-weighted formula."""
        cx = cy = 0.0
        verts = self._vertices
        for i, a in enumerate(verts):
            b = verts[(i + 1) % len(verts)]
            w = a.x * b.y - b.x * a.y
            cx += (a.x + b.x) * w
            cy += (a.y + b.y) * w
        factor = 1.0 / (6.0 * self._area)
        return Point(cx * factor, cy * factor)

    def centerpoint(self) -> Point:
        """The polygon's centerpoint (centroid unless user-supplied)."""
        return self._centerpoint

    def mbr(self) -> Rect:
        """Minimum bounding rectangle."""
        return self._mbr

    def edges(self) -> Iterable[Segment]:
        """The boundary segments, in vertex order."""
        verts = self._vertices
        for i, a in enumerate(verts):
            yield Segment(a, verts[(i + 1) % len(verts)])

    def is_convex(self) -> bool:
        """True if all turns along the boundary have the same sign."""
        from repro.geometry.segment import orientation

        verts = self._vertices
        n = len(verts)
        sign = 0
        for i in range(n):
            o = orientation(verts[i], verts[(i + 1) % n], verts[(i + 2) % n])
            if o == 0:
                continue
            if sign == 0:
                sign = o
            elif o != sign:
                return False
        return True

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """Point-in-polygon with boundary points counted as inside.

        Ray-crossing algorithm; boundary membership is checked explicitly
        first so the result is deterministic for points on edges.
        """
        if not self._mbr.contains_point(p):
            return False
        for edge in self.edges():
            if edge.contains_point(p):
                return True
        inside = False
        verts = self._vertices
        j = len(verts) - 1
        for i, vi in enumerate(verts):
            vj = verts[j]
            if (vi.y > p.y) != (vj.y > p.y):
                x_cross = vj.x + (p.y - vj.y) * (vi.x - vj.x) / (vi.y - vj.y)
                if p.x < x_cross:
                    inside = not inside
            j = i
        return inside

    def overlaps(self, other: "Polygon") -> bool:
        """True if the closed regions share at least one point.

        Two simple polygons overlap iff (a) any pair of boundary edges
        intersects, or (b) one polygon contains a vertex of the other
        (full containment with no edge crossings).
        """
        if not self._mbr.intersects(other._mbr):
            return False
        other_edges = list(other.edges())
        for e1 in self.edges():
            for e2 in other_edges:
                if e1.intersects(e2):
                    return True
        return self.contains_point(other._vertices[0]) or other.contains_point(self._vertices[0])

    def contains_polygon(self, other: "Polygon") -> bool:
        """True if ``other`` lies entirely within this polygon.

        All vertices of ``other`` must be inside and no boundary edge of
        ``other`` may properly cross a boundary edge of this polygon.
        """
        if not self._mbr.contains_rect(other._mbr):
            return False
        if not all(self.contains_point(v) for v in other._vertices):
            return False
        # Vertices inside but an edge poking out can only happen through an
        # edge crossing of the two boundaries that is not a mere touch.  For
        # simple polygons, checking proper crossings via midpoints of the
        # intersected sub-edges would be exact; here we use the standard
        # conservative test: every edge midpoint of `other` must be inside.
        return all(self.contains_point(e.midpoint()) for e in other.edges())

    def contains_rect(self, rect: Rect) -> bool:
        """True if the rectangle lies entirely within the polygon."""
        if rect.area() <= 0:
            return self.contains_point(rect.centerpoint())
        return self.contains_polygon(Polygon.from_rect(rect))

    def intersects_rect(self, rect: Rect) -> bool:
        """True if the polygon and the rectangle share at least one point."""
        if not self._mbr.intersects(rect):
            return False
        if rect.area() <= 0:
            return self.contains_point(rect.centerpoint())
        return self.overlaps(Polygon.from_rect(rect))

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------

    def distance_to_point(self, p: Point) -> float:
        """Distance from ``p`` to the closest point of the (closed) polygon."""
        if self.contains_point(p):
            return 0.0
        return min(e.distance_to_point(p) for e in self.edges())

    def distance_to_polygon(self, other: "Polygon") -> float:
        """Distance between the closest points of two closed polygons."""
        if self.overlaps(other):
            return 0.0
        return min(
            e1.distance_to_segment(e2) for e1 in self.edges() for e2 in other.edges()
        )

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def translated(self, dx: float, dy: float) -> "Polygon":
        """A new polygon shifted by ``(dx, dy)``."""
        return Polygon(
            [v.translated(dx, dy) for v in self._vertices],
            centerpoint=self._centerpoint.translated(dx, dy),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self._vertices == other._vertices

    def __hash__(self) -> int:
        return hash(self._vertices)

    def __repr__(self) -> str:
        return f"Polygon({len(self._vertices)} vertices, area={self.area():.4g})"
