"""Line segments with robust orientation-based intersection tests.

Polygon overlap tests (the workhorse of the paper's ``overlaps``
theta-operator) reduce to segment/segment intersection plus
point-in-polygon; this module provides the segment half.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.rect import Rect

# Tolerance for the collinearity test.  Coordinates in this library are
# workload-scaled (unit square to a few thousand units), so an absolute
# epsilon is adequate.
_EPS = 1e-12


def orientation(a: Point, b: Point, c: Point) -> int:
    """Orientation of the ordered triple ``(a, b, c)``.

    Returns ``+1`` for counter-clockwise, ``-1`` for clockwise and ``0``
    for (numerically) collinear points.
    """
    cross = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    if cross > _EPS:
        return 1
    if cross < -_EPS:
        return -1
    return 0


def _on_segment(a: Point, b: Point, p: Point) -> bool:
    """True if collinear point ``p`` lies within the bounding box of ``ab``."""
    return (
        min(a.x, b.x) - _EPS <= p.x <= max(a.x, b.x) + _EPS
        and min(a.y, b.y) - _EPS <= p.y <= max(a.y, b.y) + _EPS
    )


@dataclass(frozen=True, slots=True)
class Segment:
    """Closed line segment between two distinct-or-equal endpoints."""

    start: Point
    end: Point

    def length(self) -> float:
        return self.start.distance_to(self.end)

    def midpoint(self) -> Point:
        return Point((self.start.x + self.end.x) / 2.0, (self.start.y + self.end.y) / 2.0)

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of the segment."""
        return Rect(
            min(self.start.x, self.end.x),
            min(self.start.y, self.end.y),
            max(self.start.x, self.end.x),
            max(self.start.y, self.end.y),
        )

    def centerpoint(self) -> Point:
        return self.midpoint()

    def contains_point(self, p: Point) -> bool:
        """True if ``p`` lies on the closed segment."""
        return orientation(self.start, self.end, p) == 0 and _on_segment(self.start, self.end, p)

    def intersects(self, other: "Segment") -> bool:
        """True if the closed segments share at least one point.

        Uses the classical orientation test with full handling of the
        collinear-overlap special cases.
        """
        p1, q1 = self.start, self.end
        p2, q2 = other.start, other.end
        o1 = orientation(p1, q1, p2)
        o2 = orientation(p1, q1, q2)
        o3 = orientation(p2, q2, p1)
        o4 = orientation(p2, q2, q1)

        if o1 != o2 and o3 != o4:
            return True
        if o1 == 0 and _on_segment(p1, q1, p2):
            return True
        if o2 == 0 and _on_segment(p1, q1, q2):
            return True
        if o3 == 0 and _on_segment(p2, q2, p1):
            return True
        if o4 == 0 and _on_segment(p2, q2, q1):
            return True
        return False

    def distance_to_point(self, p: Point) -> float:
        """Distance from ``p`` to the closest point of the segment."""
        vx = self.end.x - self.start.x
        vy = self.end.y - self.start.y
        wx = p.x - self.start.x
        wy = p.y - self.start.y
        seg_len_sq = vx * vx + vy * vy
        if seg_len_sq <= _EPS:
            return self.start.distance_to(p)
        t = max(0.0, min(1.0, (wx * vx + wy * vy) / seg_len_sq))
        closest = Point(self.start.x + t * vx, self.start.y + t * vy)
        return closest.distance_to(p)

    def distance_to_segment(self, other: "Segment") -> float:
        """Distance between the closest points of the two segments."""
        if self.intersects(other):
            return 0.0
        return min(
            self.distance_to_point(other.start),
            self.distance_to_point(other.end),
            other.distance_to_point(self.start),
            other.distance_to_point(self.end),
        )

    def point_at(self, t: float) -> Point:
        """Point at parameter ``t`` in [0, 1] along the segment."""
        if not 0.0 <= t <= 1.0:
            raise GeometryError(f"segment parameter must be in [0, 1], got {t}")
        return Point(
            self.start.x + t * (self.end.x - self.start.x),
            self.start.y + t * (self.end.y - self.start.y),
        )

    def is_degenerate(self) -> bool:
        """True if both endpoints coincide (numerically)."""
        return self.length() <= math.sqrt(_EPS)
