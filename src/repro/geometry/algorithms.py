"""Computational-geometry algorithms: convex hulls and polygon clipping.

Supporting machinery for the more complex spatial objects the paper's
introduction motivates ("polyhedra or curves of complex shapes"):

* :func:`convex_hull` -- Andrew's monotone chain, O(n log n);
* :func:`clip_polygon` -- Sutherland-Hodgman clipping of any simple
  polygon against a convex clip polygon;
* :func:`intersection_area` -- exact overlap area of a simple polygon
  with a convex region (via clipping), useful for area-weighted
  refinements and workload statistics.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect

_EPS = 1e-12


def convex_hull(points: Sequence[Point]) -> list[Point]:
    """The convex hull in counter-clockwise order (collinear points
    dropped).  Returns fewer than 3 points for degenerate input."""
    unique = sorted(set(points), key=lambda p: (p.x, p.y))
    if len(unique) <= 2:
        return unique

    def cross(o: Point, a: Point, b: Point) -> float:
        return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)

    # Exact zero comparison: an epsilon here can misclassify thin-but-real
    # turns as collinear and drop true hull vertices (the x-order of
    # near-collinear points need not be their order along the line).
    lower: list[Point] = []
    for p in unique:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0.0:
            lower.pop()
        lower.append(p)
    upper: list[Point] = []
    for p in reversed(unique):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0.0:
            upper.pop()
        upper.append(p)
    return lower[:-1] + upper[:-1]


def hull_polygon(points: Sequence[Point]) -> Polygon:
    """The convex hull as a :class:`Polygon`; raises for degenerate input."""
    hull = convex_hull(points)
    if len(hull) < 3:
        raise GeometryError(
            f"convex hull of {len(points)} points is degenerate"
        )
    return Polygon(hull)


def _ccw_vertices(poly: Polygon) -> list[Point]:
    verts = list(poly.vertices)
    area2 = sum(
        a.x * b.y - b.x * a.y
        for a, b in zip(verts, verts[1:] + verts[:1])
    )
    return verts if area2 > 0 else list(reversed(verts))


def clip_polygon(subject: Polygon, clip: Polygon) -> Polygon | None:
    """Sutherland-Hodgman: ``subject`` clipped to convex ``clip``.

    Returns the clipped polygon, or None when the intersection is empty
    or degenerate (zero area).  ``clip`` must be convex.
    """
    if not clip.is_convex():
        raise GeometryError("clip polygon must be convex for Sutherland-Hodgman")
    output = list(subject.vertices)
    clip_verts = _ccw_vertices(clip)

    for a, b in zip(clip_verts, clip_verts[1:] + clip_verts[:1]):
        if not output:
            return None
        edge_dx = b.x - a.x
        edge_dy = b.y - a.y

        def inside(p: Point) -> bool:
            return edge_dx * (p.y - a.y) - edge_dy * (p.x - a.x) >= -_EPS

        def intersect(p: Point, q: Point) -> Point:
            # Line p->q against the infinite clip edge a->b.
            dpx, dpy = q.x - p.x, q.y - p.y
            denom = edge_dx * dpy - edge_dy * dpx
            if abs(denom) < _EPS:
                return q  # parallel: endpoints handled by inside()
            t = (edge_dx * (a.y - p.y) - edge_dy * (a.x - p.x)) / denom
            return Point(p.x + t * dpx, p.y + t * dpy)

        clipped: list[Point] = []
        for i, current in enumerate(output):
            previous = output[i - 1]
            if inside(current):
                if not inside(previous):
                    clipped.append(intersect(previous, current))
                clipped.append(current)
            elif inside(previous):
                clipped.append(intersect(previous, current))
        output = clipped

    # Drop consecutive duplicates before building the result polygon.
    cleaned: list[Point] = []
    for p in output:
        if not cleaned or p.distance_to(cleaned[-1]) > 1e-9:
            cleaned.append(p)
    if len(cleaned) >= 2 and cleaned[0].distance_to(cleaned[-1]) <= 1e-9:
        cleaned.pop()
    if len(cleaned) < 3:
        return None
    try:
        return Polygon(cleaned)
    except GeometryError:
        return None  # zero-area sliver


def intersection_area(subject: Polygon, clip: Polygon | Rect) -> float:
    """Exact area of ``subject``'s overlap with a convex region."""
    if isinstance(clip, Rect):
        if clip.area() <= 0:
            return 0.0
        clip = Polygon.from_rect(clip)
    result = clip_polygon(subject, clip)
    return result.area() if result is not None else 0.0
