"""Peano curve / z-ordering (Figure 1) and quadtree cell decomposition.

The paper discusses z-ordering twice: as the canonical example of why no
total order preserves spatial proximity (objects ``o32`` and ``o54`` in
Figure 1 are close in space but far apart on the curve), and as the one
exception where a sort-merge join works -- Orenstein's strategy for the
``overlaps`` operator, in which every object is decomposed into z-order
grid cells and overlapping cell intervals are detected by a merge.

This module provides:

* ``interleave`` / ``deinterleave`` -- bit interleaving between ``(x, y)``
  grid coordinates and z-values;
* ``z_value`` -- map a point in a universe rectangle to its z-value at a
  given resolution;
* :class:`ZCell` -- a quadtree cell identified by ``(level, prefix)`` whose
  extent is a contiguous z-value interval;
* ``decompose_rect`` -- minimal quadtree decomposition of a rectangle into
  z-cells down to a maximum level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


def interleave(x: int, y: int, bits: int) -> int:
    """Interleave the low ``bits`` bits of grid coordinates into a z-value.

    Bit ``i`` of ``x`` lands at position ``2i`` and bit ``i`` of ``y`` at
    position ``2i + 1``, so the y-coordinate is the more significant
    direction (rows of the Figure 1 grid group together).
    """
    if bits < 0:
        raise GeometryError(f"bit count must be non-negative, got {bits}")
    if x < 0 or y < 0 or x >= (1 << bits) or y >= (1 << bits):
        raise GeometryError(f"grid coordinates ({x}, {y}) out of range for {bits} bits")
    z = 0
    for i in range(bits):
        z |= ((x >> i) & 1) << (2 * i)
        z |= ((y >> i) & 1) << (2 * i + 1)
    return z


def deinterleave(z: int, bits: int) -> tuple[int, int]:
    """Inverse of :func:`interleave`: split a z-value back into ``(x, y)``."""
    if z < 0 or z >= (1 << (2 * bits)):
        raise GeometryError(f"z-value {z} out of range for {bits} bits")
    x = y = 0
    for i in range(bits):
        x |= ((z >> (2 * i)) & 1) << i
        y |= ((z >> (2 * i + 1)) & 1) << i
    return x, y


def z_value(p: Point, universe: Rect, bits: int) -> int:
    """Z-value of the grid cell containing ``p`` at resolution ``2^bits``.

    The universe rectangle is divided into a ``2^bits x 2^bits`` grid;
    points on the far edges are clamped into the last cell.
    """
    if universe.width <= 0 or universe.height <= 0:
        raise GeometryError("universe rectangle must have positive area")
    if not universe.contains_point(p):
        raise GeometryError(f"point {p} outside universe {universe}")
    cells = 1 << bits
    gx = min(int((p.x - universe.xmin) / universe.width * cells), cells - 1)
    gy = min(int((p.y - universe.ymin) / universe.height * cells), cells - 1)
    return interleave(gx, gy, bits)


@dataclass(frozen=True, slots=True, order=True)
class ZCell:
    """A quadtree cell: ``prefix`` is the z-value of the cell at ``level``.

    A cell at level L covers the contiguous z-value interval
    ``[prefix << 2(max-L), (prefix + 1) << 2(max-L) - 1]`` at any finer
    resolution ``max >= L``.  Cells sort by ``(level, prefix)`` but the
    merge join orders them by interval start -- see :meth:`interval`.
    """

    level: int
    prefix: int

    def __post_init__(self) -> None:
        if self.level < 0:
            raise GeometryError(f"cell level must be non-negative, got {self.level}")
        if self.prefix < 0 or self.prefix >= (1 << (2 * self.level)):
            raise GeometryError(f"prefix {self.prefix} out of range for level {self.level}")

    def interval(self, max_level: int) -> tuple[int, int]:
        """Closed z-value interval covered by this cell at ``max_level``."""
        if max_level < self.level:
            raise GeometryError(
                f"max_level {max_level} below cell level {self.level}"
            )
        shift = 2 * (max_level - self.level)
        lo = self.prefix << shift
        hi = ((self.prefix + 1) << shift) - 1
        return lo, hi

    def contains(self, other: "ZCell") -> bool:
        """True if ``other`` is this cell or lies inside it (prefix relation)."""
        if other.level < self.level:
            return False
        return (other.prefix >> (2 * (other.level - self.level))) == self.prefix

    def overlaps(self, other: "ZCell") -> bool:
        """Quadtree cells overlap iff one is an ancestor-or-self of the other."""
        return self.contains(other) or other.contains(self)

    def children(self) -> Iterator["ZCell"]:
        """The four sub-cells one level down, in z-order."""
        for q in range(4):
            yield ZCell(self.level + 1, (self.prefix << 2) | q)

    def parent(self) -> "ZCell":
        """The enclosing cell one level up."""
        if self.level == 0:
            raise GeometryError("the root cell has no parent")
        return ZCell(self.level - 1, self.prefix >> 2)

    def extent(self, universe: Rect) -> Rect:
        """The cell's rectangle within ``universe``."""
        gx, gy = deinterleave(self.prefix, self.level)
        cells = 1 << self.level
        w = universe.width / cells
        h = universe.height / cells
        return Rect(
            universe.xmin + gx * w,
            universe.ymin + gy * h,
            universe.xmin + (gx + 1) * w,
            universe.ymin + (gy + 1) * h,
        )


def _grid_range(
    lo: float, hi: float, u_lo: float, u_hi: float, cells: int, closed: bool
) -> tuple[int, int]:
    """Inclusive index range of grid cells covering ``[lo, hi]``.

    With ``closed=False`` cells are half-open ``[u_lo + i*w, u_lo +
    (i+1)*w)`` (last cell closed at ``u_hi``): a boundary exactly on an
    interior seam does not spill into the neighbor, giving minimal
    decompositions.  With ``closed=True`` cells are closed sets, so a
    rectangle whose edge lies on a seam also covers the touching
    neighbor -- the semantics the exact ``overlaps`` predicate uses.
    """
    width = (u_hi - u_lo) / cells
    g_lo = min(int((lo - u_lo) / width), cells - 1)
    g_hi = min(int((hi - u_lo) / width), cells - 1)
    on_lo_seam = u_lo + g_lo * width == lo
    on_hi_seam = u_lo + g_hi * width == hi
    if closed:
        if on_lo_seam and g_lo > 0:
            g_lo -= 1  # the seam line belongs to the left cell too
    else:
        if hi > lo and g_hi > g_lo and on_hi_seam:
            g_hi -= 1  # do not spill into the next cell
    return g_lo, g_hi


def decompose_rect(
    rect: Rect, universe: Rect, max_level: int, closed: bool = False
) -> list[ZCell]:
    """Quadtree decomposition of ``rect`` into z-cells.

    A cell is emitted whole when its index range lies inside the target
    range; otherwise it is split until ``max_level``.  The result -- the
    cells Orenstein's strategy stores for the object -- is sorted by
    z-interval start.  ``closed`` selects boundary semantics (see
    :func:`_grid_range`): the merge join uses ``closed=True`` so that
    objects merely touching at a seam still produce candidate pairs.
    """
    if max_level < 0:
        raise GeometryError(f"max_level must be non-negative, got {max_level}")
    if universe.width <= 0 or universe.height <= 0:
        raise GeometryError("universe rectangle must have positive area")
    clipped = rect.intersection(universe)
    if clipped is None:
        return []

    cells = 1 << max_level
    gx_lo, gx_hi = _grid_range(
        clipped.xmin, clipped.xmax, universe.xmin, universe.xmax, cells, closed
    )
    gy_lo, gy_hi = _grid_range(
        clipped.ymin, clipped.ymax, universe.ymin, universe.ymax, cells, closed
    )

    out: list[ZCell] = []
    stack = [ZCell(0, 0)]
    while stack:
        cell = stack.pop()
        # The cell's index range at max_level resolution.
        cx, cy = deinterleave(cell.prefix, cell.level)
        span = 1 << (max_level - cell.level)
        cx_lo, cx_hi = cx * span, (cx + 1) * span - 1
        cy_lo, cy_hi = cy * span, (cy + 1) * span - 1
        if cx_hi < gx_lo or cx_lo > gx_hi or cy_hi < gy_lo or cy_lo > gy_hi:
            continue
        inside = (
            gx_lo <= cx_lo and cx_hi <= gx_hi and gy_lo <= cy_lo and cy_hi <= gy_hi
        )
        if inside or cell.level >= max_level:
            out.append(cell)
        else:
            stack.extend(cell.children())
    out.sort(key=lambda c: c.interval(max_level)[0])
    return out
