"""Axis-aligned rectangles: the MBR algebra underlying R-trees.

Guttman's R-tree (Figure 2 of the paper) is a hierarchy of nested
rectangles; every Theta-filter in Table 1 reduces to a test on minimum
bounding rectangles.  This module provides the complete rectangle algebra
those filters need: intersection, containment, enlargement, distances
between closest points, buffers and tangent quadrants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import GeometryError
from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """Closed axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``.

    Degenerate rectangles (zero width and/or height) are allowed: a point's
    MBR is a degenerate rectangle.  ``xmin > xmax`` is rejected.
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        for v in (self.xmin, self.ymin, self.xmax, self.ymax):
            if not math.isfinite(v):
                raise GeometryError(f"rectangle coordinates must be finite, got {self!r}")
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise GeometryError(
                f"rectangle has negative extent: x [{self.xmin}, {self.xmax}], "
                f"y [{self.ymin}, {self.ymax}]"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Rect":
        """Smallest rectangle enclosing ``points`` (at least one required)."""
        it = iter(points)
        try:
            first = next(it)
        except StopIteration:
            raise GeometryError("cannot build a rectangle from zero points") from None
        xmin = xmax = first.x
        ymin = ymax = first.y
        for p in it:
            xmin = min(xmin, p.x)
            xmax = max(xmax, p.x)
            ymin = min(ymin, p.y)
            ymax = max(ymax, p.y)
        return cls(xmin, ymin, xmax, ymax)

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "Rect":
        """Rectangle of the given size centered on ``center``."""
        if width < 0 or height < 0:
            raise GeometryError(f"width/height must be non-negative, got {width} x {height}")
        return cls(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )

    @classmethod
    def union_of(cls, rects: Iterable["Rect"]) -> "Rect":
        """Smallest rectangle enclosing all of ``rects`` (at least one)."""
        it = iter(rects)
        try:
            first = next(it)
        except StopIteration:
            raise GeometryError("cannot build the union of zero rectangles") from None
        xmin, ymin, xmax, ymax = first.xmin, first.ymin, first.xmax, first.ymax
        for r in it:
            xmin = min(xmin, r.xmin)
            ymin = min(ymin, r.ymin)
            xmax = max(xmax, r.xmax)
            ymax = max(ymax, r.ymax)
        return cls(xmin, ymin, xmax, ymax)

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    def area(self) -> float:
        """Area of the rectangle (zero for degenerate rectangles)."""
        return self.width * self.height

    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    def centerpoint(self) -> Point:
        """Center of gravity; the paper's centerpoint-based operators use it."""
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four corners, counter-clockwise from the lower-left."""
        return (
            Point(self.xmin, self.ymin),
            Point(self.xmax, self.ymin),
            Point(self.xmax, self.ymax),
            Point(self.xmin, self.ymax),
        )

    def mbr(self) -> "Rect":
        """A rectangle is its own minimum bounding rectangle."""
        return self

    def __iter__(self) -> Iterator[float]:
        yield self.xmin
        yield self.ymin
        yield self.xmax
        yield self.ymax

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def intersects(self, other: "Rect") -> bool:
        """True if the closed rectangles share at least one point.

        Touching edges count as intersection; the paper's ``overlaps``
        Theta-filter must be conservative, and closed-set semantics keep it
        so for objects that merely touch.
        """
        return (
            self.xmin <= other.xmax
            and other.xmin <= self.xmax
            and self.ymin <= other.ymax
            and other.ymin <= self.ymax
        )

    def contains_point(self, p: Point) -> bool:
        """True if ``p`` lies inside or on the boundary."""
        return self.xmin <= p.x <= self.xmax and self.ymin <= p.y <= self.ymax

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely within this rectangle."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlap rectangle, or ``None`` if the rectangles are disjoint."""
        xmin = max(self.xmin, other.xmin)
        ymin = max(self.ymin, other.ymin)
        xmax = min(self.xmax, other.xmax)
        ymax = min(self.ymax, other.ymax)
        if xmin > xmax or ymin > ymax:
            return None
        return Rect(xmin, ymin, xmax, ymax)

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle enclosing both operands."""
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to also cover ``other``.

        This is the quantity Guttman's ChooseLeaf minimizes when inserting
        into an R-tree.
        """
        return self.union(other).area() - self.area()

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------

    def distance_to_point(self, p: Point) -> float:
        """Distance from ``p`` to the closest point of the rectangle."""
        dx = max(self.xmin - p.x, 0.0, p.x - self.xmax)
        dy = max(self.ymin - p.y, 0.0, p.y - self.ymax)
        return math.hypot(dx, dy)

    def min_distance_to(self, other: "Rect") -> float:
        """Distance between the closest points of the two rectangles.

        Zero when the rectangles intersect.  This is the measure the
        ``within distance d`` Theta-filter of Table 1 uses ("measured between
        closest points").
        """
        dx = max(other.xmin - self.xmax, 0.0, self.xmin - other.xmax)
        dy = max(other.ymin - self.ymax, 0.0, self.ymin - other.ymax)
        return math.hypot(dx, dy)

    def max_distance_to(self, other: "Rect") -> float:
        """Distance between the farthest points of the two rectangles.

        Useful for lower-bounding matches (e.g. the "between 50 and 100
        kilometers from" operator the NO-LOC distribution motivates).
        """
        dx = max(abs(other.xmax - self.xmin), abs(self.xmax - other.xmin))
        dy = max(abs(other.ymax - self.ymin), abs(self.ymax - other.ymin))
        return math.hypot(dx, dy)

    # ------------------------------------------------------------------
    # Derived regions
    # ------------------------------------------------------------------

    def buffer(self, d: float) -> "Rect":
        """The rectangle grown by ``d`` on every side.

        This is the (conservative, rectangular) analogue of the paper's
        "x-minute buffer" and "10 kilometer buffer" constructions.  ``d``
        must be non-negative.
        """
        if d < 0:
            raise GeometryError(f"buffer distance must be non-negative, got {d}")
        return Rect(self.xmin - d, self.ymin - d, self.xmax + d, self.ymax + d)

    def shrunk(self, d: float) -> "Rect | None":
        """The rectangle shrunk by ``d`` on every side, or None if it vanishes."""
        if d < 0:
            raise GeometryError(f"shrink distance must be non-negative, got {d}")
        xmin, ymin = self.xmin + d, self.ymin + d
        xmax, ymax = self.xmax - d, self.ymax - d
        if xmin > xmax or ymin > ymax:
            return None
        return Rect(xmin, ymin, xmax, ymax)

    def northwest_quadrant(self, bound: float = 1e12) -> "Rect":
        """The NW quadrant formed by this rectangle's tangents (Figure 5).

        The paper defines the Theta-filter for ``to the Northwest of`` as:
        o1' overlaps the NW quadrant formed by the *right vertical* and the
        *lower horizontal* tangent on o2'.  That quadrant is the half-open
        region ``x <= xmax, y >= ymin``; we clip it to a large-but-finite
        bound so it remains a Rect.
        """
        return Rect(-bound, self.ymin, self.xmax, bound)

    def quadrant(self, direction: str, bound: float = 1e12) -> "Rect":
        """Tangent quadrant in one of the four diagonal directions.

        ``direction`` is one of ``"nw"``, ``"ne"``, ``"sw"``, ``"se"``.  The
        NW case matches Figure 5; the other three are the symmetric
        constructions needed for the generalized directional operators.
        """
        if direction == "nw":
            return Rect(-bound, self.ymin, self.xmax, bound)
        if direction == "ne":
            return Rect(self.xmin, self.ymin, bound, bound)
        if direction == "sw":
            return Rect(-bound, -bound, self.xmax, self.ymax)
        if direction == "se":
            return Rect(self.xmin, -bound, bound, self.ymax)
        raise GeometryError(f"unknown quadrant direction {direction!r}")

    def translated(self, dx: float, dy: float) -> "Rect":
        """A new rectangle shifted by ``(dx, dy)``."""
        return Rect(self.xmin + dx, self.ymin + dy, self.xmax + dx, self.ymax + dy)

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Plain-tuple view ``(xmin, ymin, xmax, ymax)``."""
        return (self.xmin, self.ymin, self.xmax, self.ymax)
