"""Immutable 2-D point, the simplest spatial data type in the paper.

The ``house.hlocation`` column in the paper's running example (query (2),
"find all houses within 10 kilometers from a lake") is of type point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.errors import GeometryError


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the Euclidean plane.

    Points are immutable and hashable so they can serve as dictionary keys
    (e.g. in the z-order grid of Figure 1) and be shared freely between
    relations and index nodes.
    """

    x: float
    y: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise GeometryError(f"point coordinates must be finite, got ({self.x}, {self.y})")

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance; avoids the sqrt when only comparing."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 distance, used by the reachability operator's grid buffers."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """A new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def is_northwest_of(self, other: "Point") -> bool:
        """Strict north-west test: smaller x (west) and larger y (north).

        This is the centerpoint semantics of the paper's ``to the Northwest
        of`` operator (Table 1 measures it between centerpoints).
        """
        return self.x < other.x and self.y > other.y

    def mbr(self) -> "Rect":  # noqa: F821 - resolved at runtime
        """Degenerate minimum bounding rectangle of a point."""
        from repro.geometry.rect import Rect

        return Rect(self.x, self.y, self.x, self.y)

    def centerpoint(self) -> "Point":
        """A point is its own centerpoint (center of gravity)."""
        return self

    def as_tuple(self) -> tuple[float, float]:
        """Plain-tuple view, handy for serialization."""
        return (self.x, self.y)
