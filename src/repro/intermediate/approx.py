"""Raster-interval object approximations on the z-order curve.

The second-tier filter between the Theta-filter and exact refinement
(Georgiadis / Tzirita Zacharatou / Mamoulis; Kipf et al.'s adaptive
geospatial joins): each geometry is decomposed into sorted, disjoint,
coalesced intervals of z-order cells, every interval flagged

* **FULL**    -- every cell of the interval lies entirely inside the
  geometry (closed containment), or
* **PARTIAL** -- every cell merely intersects the geometry (boundary
  cells).

Interval intersection then resolves candidate pairs without touching the
exact geometric kernel:

* a common cell where either side is FULL is a **sure hit** -- the FULL
  side covers the whole cell and the other side meets it;
* no common cell at all is a **sure miss** -- each geometry is contained
  in its cover, and the covers are disjoint;
* only PARTIAL/PARTIAL overlap is **ambiguous** and falls through to the
  exact predicate.

Soundness of the miss guarantee relies on *closed* cell semantics: a
cover cell is any cell whose closed extent intersects the geometry, so
two objects touching exactly on a grid seam still share a cover cell
(the same convention :func:`repro.geometry.zorder.decompose_rect` uses
with ``closed=True`` for the z-order merge join).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import IntermediateError

#: Classification verdicts of :func:`classify`.
SURE_MISS = -1
AMBIGUOUS = 0
SURE_HIT = 1

#: Serialization header: magic, version, level, interval count, universe.
_HEADER = struct.Struct("<4sBBI4d")
#: One interval record: lo, hi (z-values at ``level``), FULL flag.
_RECORD = struct.Struct("<QQB")
_MAGIC = b"IAPX"
_VERSION = 1

#: Finest supported grid: z-values must fit the serializer's u64.
MAX_LEVEL = 30


@dataclass(frozen=True, slots=True)
class IntervalApprox:
    """One object's interval set at resolution ``2^level x 2^level``.

    ``intervals`` holds ``(lo, hi, full)`` triples of closed z-value
    ranges at ``level``, sorted by ``lo``, pairwise disjoint, and
    coalesced (no two adjacent ranges share a flag).  ``universe`` is
    the grid's data universe as a plain tuple -- approximations built
    over different universes are incomparable and :func:`classify`
    refuses to relate them.
    """

    level: int
    universe: tuple[float, float, float, float]
    intervals: tuple[tuple[int, int, bool], ...]

    def __post_init__(self) -> None:
        if not 0 <= self.level <= MAX_LEVEL:
            raise IntermediateError(
                f"approximation level must be in [0, {MAX_LEVEL}], "
                f"got {self.level}"
            )
        if len(self.universe) != 4:
            raise IntermediateError(
                f"universe must be a 4-tuple, got {self.universe!r}"
            )
        top = (1 << (2 * self.level)) - 1
        prev_hi = None
        prev_full = None
        for lo, hi, full in self.intervals:
            if not 0 <= lo <= hi <= top:
                raise IntermediateError(
                    f"interval [{lo}, {hi}] out of range for level {self.level}"
                )
            if prev_hi is not None:
                if lo <= prev_hi:
                    raise IntermediateError(
                        f"intervals not sorted/disjoint at [{lo}, {hi}]"
                    )
                if lo == prev_hi + 1 and bool(full) == prev_full:
                    raise IntermediateError(
                        f"adjacent intervals with equal flag not coalesced "
                        f"at [{lo}, {hi}]"
                    )
            prev_hi = hi
            prev_full = bool(full)

    @property
    def cell_count(self) -> int:
        """Total finest-level cells covered by the interval set."""
        return sum(hi - lo + 1 for lo, hi, _ in self.intervals)

    @property
    def full_cell_count(self) -> int:
        """Finest-level cells flagged FULL (entirely inside the object)."""
        return sum(hi - lo + 1 for lo, hi, full in self.intervals if full)

    def __len__(self) -> int:
        return len(self.intervals)

    def scaled(self, level: int) -> tuple[tuple[int, int, bool], ...]:
        """The interval set re-expressed at a finer ``level``.

        Each closed range ``[lo, hi]`` at the native level covers
        ``[lo << s, ((hi + 1) << s) - 1]`` at resolution ``level``
        (``s = 2 * (level - self.level)``) -- the same arithmetic as
        :meth:`repro.geometry.zorder.ZCell.interval`.
        """
        if level < self.level:
            raise IntermediateError(
                f"cannot scale level-{self.level} approximation down to "
                f"level {level}"
            )
        if level == self.level:
            return self.intervals
        shift = 2 * (level - self.level)
        return tuple(
            (lo << shift, ((hi + 1) << shift) - 1, full)
            for lo, hi, full in self.intervals
        )

    # ------------------------------------------------------------------
    # Compact serialized form (persisted beside the relation)
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Fixed-width binary record: header + one 17-byte row per interval."""
        out = [_HEADER.pack(
            _MAGIC, _VERSION, self.level, len(self.intervals), *self.universe
        )]
        out += [
            _RECORD.pack(lo, hi, 1 if full else 0)
            for lo, hi, full in self.intervals
        ]
        return b"".join(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "IntervalApprox":
        """Inverse of :meth:`to_bytes`; validates magic, version, length."""
        if len(data) < _HEADER.size:
            raise IntermediateError("serialized approximation truncated")
        magic, version, level, count, *universe = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise IntermediateError(f"bad approximation magic {magic!r}")
        if version != _VERSION:
            raise IntermediateError(f"unsupported approximation version {version}")
        if len(data) != _HEADER.size + count * _RECORD.size:
            raise IntermediateError(
                f"serialized approximation length mismatch: expected "
                f"{count} interval records"
            )
        intervals = tuple(
            (lo, hi, bool(full))
            for lo, hi, full in _RECORD.iter_unpack(data[_HEADER.size:])
        )
        return cls(level=level, universe=tuple(universe), intervals=intervals)


def classify(a: IntervalApprox, b: IntervalApprox) -> int:
    """Merge-style interval-join kernel for one candidate pair.

    Returns :data:`SURE_HIT`, :data:`SURE_MISS` or :data:`AMBIGUOUS`.
    One linear pass over both sorted interval lists (after rescaling to
    the finer of the two levels): the first overlapping range pair with
    a FULL flag on either side decides HIT immediately; overlap of two
    PARTIAL ranges is remembered and reported as AMBIGUOUS only if no
    deciding pair follows; no overlap anywhere is a MISS.
    """
    if a.universe != b.universe:
        raise IntermediateError(
            f"cannot classify approximations over different universes: "
            f"{a.universe} vs {b.universe}"
        )
    level = max(a.level, b.level)
    ia = a.scaled(level)
    ib = b.scaled(level)
    i = j = 0
    ambiguous = False
    while i < len(ia) and j < len(ib):
        alo, ahi, afull = ia[i]
        blo, bhi, bfull = ib[j]
        if ahi < blo:
            i += 1
            continue
        if bhi < alo:
            j += 1
            continue
        if afull or bfull:
            return SURE_HIT
        ambiguous = True
        if ahi <= bhi:
            i += 1
        else:
            j += 1
    return AMBIGUOUS if ambiguous else SURE_MISS
