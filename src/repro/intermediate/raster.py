"""Rasterizer: geometry -> FULL/PARTIAL z-order cell intervals.

Builds the :class:`~repro.intermediate.approx.IntervalApprox` of one
geometry by refining the minimal quadtree decomposition of its MBR (the
same curve machinery the z-order merge join uses, ``closed=True`` seam
semantics included):

* a cell entirely inside the geometry (closed containment via
  :func:`~repro.predicates.dispatch.exact_contains`) is emitted whole as
  a FULL interval -- no descent below it;
* a cell that merely intersects the geometry is split until
  ``max_level``, where it is emitted PARTIAL;
* a cell not intersecting the geometry at all is dropped, and with it
  its entire subtree (cell extents nest exactly, so a miss at a coarse
  cell is a miss for every descendant).

The invariants the test battery pins:

* every FULL cell is contained in the geometry;
* every closed cell intersecting the geometry is in the cover
  (``FULL union PARTIAL``) -- hence the geometry is contained in its
  cover, which is what makes the sure-miss verdict sound.

A geometry whose MBR pokes outside the universe cannot be approximated
soundly (clipping would break the containment-in-cover guarantee); the
rasterizer returns ``None`` and the filter treats the pair as ambiguous.
"""

from __future__ import annotations

from repro.errors import GeometryError
from repro.geometry.rect import Rect
from repro.geometry.zorder import ZCell, decompose_rect
from repro.intermediate.approx import MAX_LEVEL, IntervalApprox
from repro.predicates.dispatch import (
    SpatialObject,
    exact_contains,
    exact_overlaps,
)


def _coalesce(
    raw: list[tuple[int, int, bool]]
) -> tuple[tuple[int, int, bool], ...]:
    """Merge z-adjacent intervals carrying the same flag.

    Input arrives sorted by ``lo`` and pairwise disjoint (distinct
    quadtree cells have disjoint z-ranges); only adjacency can be
    merged.
    """
    out: list[tuple[int, int, bool]] = []
    for lo, hi, full in raw:
        if out and out[-1][2] == full and out[-1][1] + 1 == lo:
            out[-1] = (out[-1][0], hi, full)
        else:
            out.append((lo, hi, full))
    return tuple(out)


def rasterize(
    geom: SpatialObject, universe: Rect, max_level: int
) -> IntervalApprox | None:
    """The interval approximation of ``geom``, or ``None`` if unusable.

    ``None`` means the geometry cannot be soundly approximated on this
    grid: its MBR is not contained in ``universe`` (or the universe is
    degenerate).  Callers must then fall through to the exact predicate.
    """
    if not 0 <= max_level <= MAX_LEVEL:
        raise GeometryError(
            f"max_level must be in [0, {MAX_LEVEL}], got {max_level}"
        )
    if universe.width <= 0 or universe.height <= 0:
        return None
    mbr = geom.mbr()
    if not universe.contains_rect(mbr):
        return None

    raw: list[tuple[int, int, bool]] = []
    # The minimal closed-seam decomposition of the MBR is the candidate
    # cell set; refine each candidate against the geometry itself.
    # Cells are visited in z-interval order (decompose_rect sorts, and
    # children recurse in z-order), so ``raw`` comes out sorted.
    stack: list[ZCell]
    for cell in decompose_rect(mbr, universe, max_level, closed=True):
        stack = [cell]
        pending: list[tuple[int, int, bool]] = []
        while stack:
            cur = stack.pop()
            extent = cur.extent(universe)
            if exact_contains(geom, extent):
                pending.append((*cur.interval(max_level), True))
                continue
            if not exact_overlaps(geom, extent):
                continue
            if cur.level >= max_level:
                pending.append((*cur.interval(max_level), False))
            else:
                # LIFO stack: push children reversed so they pop in
                # ascending z-order.
                stack.extend(reversed(list(cur.children())))
        raw.extend(pending)

    return IntervalApprox(
        level=max_level,
        universe=universe.as_tuple(),
        intervals=_coalesce(raw),
    )
