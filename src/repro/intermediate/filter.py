"""The second-tier refiner: ``Theta-filter -> interval filter -> exact``.

Join strategies refine candidate pairs through a *refiner* object with a
single ``matches(a, b, meter)`` method.  Two implementations:

* :class:`ExactRefiner` -- the historical path: charge one exact
  evaluation and run the predicate.  Strategies construct it themselves
  when no interval filter is passed, so a filter-off run is
  instruction-for-instruction identical to the pre-filter code.
* :class:`IntervalFilter` -- probes the raster-interval approximations
  first; only ambiguous pairs (PARTIAL/PARTIAL cell overlap) fall
  through to the exact predicate.  Sure hits and sure misses skip it,
  and the saved evaluations are metered (``interval_evals_saved``).

Both are picklable: the partition join ships its refiner to worker
processes, and the shard router ships an :class:`IntervalSpec` in the
join payload for the worker to build its own filter from.

The filter applies to the ``overlaps`` operator only -- the verdict
algebra (FULL cell met => intersection; disjoint covers => no
intersection) is an intersection argument and proves nothing about
other predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import IntermediateError
from repro.geometry.rect import Rect
from repro.intermediate.approx import (
    AMBIGUOUS,
    SURE_HIT,
    SURE_MISS,
    IntervalApprox,
    classify,
)
from repro.intermediate.raster import rasterize
from repro.predicates.dispatch import SpatialObject
from repro.predicates.theta import Overlaps, ThetaOperator
from repro.storage.costs import CostMeter

#: Default decomposition depth of executor-built filters: a 64 x 64 grid
#: -- fine enough to resolve the synthetic workloads' extents, coarse
#: enough that per-object interval lists stay a handful of entries.
DEFAULT_INTERVAL_LEVEL = 6


@dataclass(frozen=True, slots=True)
class IntervalSpec:
    """The grid a filter rasterizes on: data universe + quadtree depth.

    Hashable (keys the executor's per-grid approximation stores) and
    picklable (travels in shard join payloads).
    """

    universe: Rect
    level: int = DEFAULT_INTERVAL_LEVEL

    def __post_init__(self) -> None:
        if self.level < 0:
            raise IntermediateError(
                f"interval level must be non-negative, got {self.level}"
            )


class ExactRefiner:
    """The unfiltered exact-refinement path, as a refiner object.

    ``matches`` does exactly what every strategy's refine site did
    before the interval tier existed: one ``record_exact_eval`` and one
    predicate call.  ``theta`` may be a :class:`ThetaOperator` or any
    binary predicate callable (the z-order merge passes its hardwired
    ``exact_overlaps``).
    """

    __slots__ = ("theta",)

    #: No interval tier: lets callers ask "did a filter actually run?"
    active = False

    def __init__(self, theta: Callable[[SpatialObject, SpatialObject], bool]):
        self.theta = theta

    def matches(
        self, a: SpatialObject, b: SpatialObject, meter: CostMeter
    ) -> bool:
        meter.record_exact_eval()
        return self.theta(a, b)


class IntervalFilter:
    """Second-tier refiner backed by raster-interval approximations.

    ``tables`` optionally seeds the per-geometry approximation memo
    (e.g. from an :class:`~repro.intermediate.store.ApproximationStore`
    so relation-resident objects are rasterized once per epoch, not once
    per query).  Unknown geometries -- tree node regions, ad-hoc query
    windows -- are rasterized on demand and memoized by value (all
    geometry types hash by value).

    A geometry the rasterizer refuses (MBR outside the universe) maps to
    ``None`` in the memo; pairs involving it are refined exactly, so an
    out-of-universe object can never corrupt the result.
    """

    __slots__ = ("theta", "spec", "_approx")

    active = True

    def __init__(
        self,
        theta: ThetaOperator,
        spec: IntervalSpec,
        tables: dict[SpatialObject, IntervalApprox | None] | None = None,
    ) -> None:
        if not isinstance(theta, Overlaps):
            raise IntermediateError(
                "the raster-interval filter applies to the 'overlaps' "
                f"operator only, got {getattr(theta, 'name', theta)!r}"
            )
        self.theta = theta
        self.spec = spec
        self._approx: dict[SpatialObject, IntervalApprox | None] = (
            dict(tables) if tables else {}
        )

    def approx_for(self, geom: SpatialObject) -> IntervalApprox | None:
        """The geometry's approximation, rasterizing and memoizing on miss."""
        try:
            return self._approx[geom]
        except KeyError:
            apx = rasterize(geom, self.spec.universe, self.spec.level)
            self._approx[geom] = apx
            return apx

    def classify_pair(self, a: SpatialObject, b: SpatialObject) -> int:
        """The kernel verdict for one pair; AMBIGUOUS when unapproximable."""
        apx_a = self.approx_for(a)
        apx_b = self.approx_for(b)
        if apx_a is None or apx_b is None:
            return AMBIGUOUS
        return classify(apx_a, apx_b)

    def matches(
        self, a: SpatialObject, b: SpatialObject, meter: CostMeter
    ) -> bool:
        apx_a = self.approx_for(a)
        apx_b = self.approx_for(b)
        if apx_a is None or apx_b is None:
            # Unapproximable operand: no probe charged, straight to exact.
            meter.record_exact_eval()
            return self.theta(a, b)
        meter.record_interval_probe()
        verdict = classify(apx_a, apx_b)
        if verdict == SURE_HIT:
            meter.record_interval_sure_hit()
            meter.record_interval_saved()
            return True
        if verdict == SURE_MISS:
            meter.record_interval_saved()
            return False
        meter.record_exact_eval()
        return self.theta(a, b)
