"""Raster-interval second-tier filtering (``Theta -> interval -> exact``).

The package provides the intermediate approximation layer between the
Theta-filter (MBR tests) and exact geometric refinement: per-object
FULL/PARTIAL z-order cell intervals (:mod:`~repro.intermediate.raster`,
:mod:`~repro.intermediate.approx`), the merge-style pair classification
kernel (:func:`~repro.intermediate.approx.classify`), the refiner
objects join strategies thread through their refine sites
(:mod:`~repro.intermediate.filter`), and epoch-invalidated per-relation
approximation tables with sidecar persistence
(:mod:`~repro.intermediate.store`).
"""

from repro.intermediate.approx import (
    AMBIGUOUS,
    SURE_HIT,
    SURE_MISS,
    IntervalApprox,
    classify,
)
from repro.intermediate.filter import (
    DEFAULT_INTERVAL_LEVEL,
    ExactRefiner,
    IntervalFilter,
    IntervalSpec,
)
from repro.intermediate.raster import rasterize
from repro.intermediate.store import ApproximationStore, sidecar_path

__all__ = [
    "AMBIGUOUS",
    "SURE_HIT",
    "SURE_MISS",
    "IntervalApprox",
    "classify",
    "DEFAULT_INTERVAL_LEVEL",
    "ExactRefiner",
    "IntervalFilter",
    "IntervalSpec",
    "rasterize",
    "ApproximationStore",
    "sidecar_path",
]
