"""Per-relation approximation tables: epoch-invalidated, persistable.

An :class:`ApproximationStore` holds, per ``(relation uid, column)``, the
mapping ``geometry -> IntervalApprox`` of every object stored in that
column, rasterized on one fixed :class:`~repro.intermediate.filter.IntervalSpec`
grid.  Invalidation follows the PR 5 query-cache convention: the
relation's ``modification_count`` is pinned when the table is built, and
a lookup under a moved epoch rebuilds -- a mutated relation can never be
filtered through stale approximations.

Tables can be persisted *beside the relation* as a JSON sidecar
(``<snapshot>.intervals.json``) carrying the spec, the pinned epoch and
each geometry's compact serialized approximation (base64 of
:meth:`~repro.intermediate.approx.IntervalApprox.to_bytes`).  Loading
verifies format, spec and epoch; a stale or mismatched sidecar is
reported as such and ignored rather than trusted.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import IntermediateError
from repro.geometry.rect import Rect
from repro.intermediate.approx import IntervalApprox
from repro.intermediate.filter import IntervalSpec
from repro.intermediate.raster import rasterize
from repro.persistence import geometry_from_dict, geometry_to_dict
from repro.predicates.dispatch import SpatialObject
from repro.relational.relation import Relation

_SIDECAR_FORMAT = "repro-intervals"
_SIDECAR_SUFFIX = ".intervals.json"


@dataclass(slots=True)
class _StoreEntry:
    """One relation-column's table plus the epoch it was built under."""

    epoch: int
    table: dict[SpatialObject, IntervalApprox | None]


@dataclass(slots=True)
class ApproximationStore:
    """Builds and caches per-relation approximation tables on one grid."""

    spec: IntervalSpec
    #: Tables rebuilt because none existed or the epoch moved.
    builds: int = 0
    #: Lookups served from a still-fresh table.
    fresh_hits: int = 0
    _entries: dict[tuple[int, str], _StoreEntry] = field(default_factory=dict)

    def table_for(
        self, relation: Relation, column: str
    ) -> dict[SpatialObject, IntervalApprox | None]:
        """The column's geometry->approximation map at the current epoch.

        Rebuilds when the relation's ``modification_count`` no longer
        matches the pinned epoch (the relation mutated) or no table
        exists yet.  Objects sharing a geometry value share one entry.
        """
        key = (relation.uid, column)
        entry = self._entries.get(key)
        if entry is not None and entry.epoch == relation.modification_count:
            self.fresh_hits += 1
            return entry.table
        epoch = relation.modification_count
        table: dict[SpatialObject, IntervalApprox | None] = {}
        for t in relation.scan():
            geom = t[column]
            if geom not in table:
                table[geom] = rasterize(geom, self.spec.universe, self.spec.level)
        self._entries[key] = _StoreEntry(epoch=epoch, table=table)
        self.builds += 1
        return table

    def invalidate(self, relation: Relation, column: str | None = None) -> None:
        """Drop cached tables for a relation (one column or all)."""
        if column is not None:
            self._entries.pop((relation.uid, column), None)
            return
        for key in [k for k in self._entries if k[0] == relation.uid]:
            del self._entries[key]

    # ------------------------------------------------------------------
    # Sidecar persistence (beside the relation snapshot)
    # ------------------------------------------------------------------

    def save_sidecar(
        self, path: str | Path, relation: Relation, column: str
    ) -> Path:
        """Write the column's table as ``<path>.intervals.json``.

        ``path`` is the relation's snapshot path (or any stem); the
        sidecar records the spec and the relation epoch the table was
        built under so a later load can refuse stale data.
        """
        table = self.table_for(relation, column)
        sidecar = sidecar_path(path)
        payload = {
            "format": _SIDECAR_FORMAT,
            "relation": relation.name,
            "column": column,
            "epoch": relation.modification_count,
            "spec": {
                "universe": list(self.spec.universe.as_tuple()),
                "level": self.spec.level,
            },
            "items": [
                {
                    "geometry": geometry_to_dict(geom),
                    "approx": (
                        None if apx is None
                        else base64.b64encode(apx.to_bytes()).decode("ascii")
                    ),
                }
                for geom, apx in table.items()
            ],
        }
        sidecar.write_text(json.dumps(payload))
        return sidecar

    def load_sidecar(
        self, path: str | Path, relation: Relation, column: str
    ) -> bool:
        """Adopt a sidecar's table if it matches spec, column and epoch.

        Returns ``True`` when the table was adopted.  A missing sidecar,
        a different grid spec, or a pinned epoch that no longer matches
        the relation's ``modification_count`` returns ``False`` -- the
        caller rebuilds from the live data instead.  A sidecar that
        *claims* the right epoch but is structurally corrupt raises
        :class:`~repro.errors.IntermediateError`.
        """
        sidecar = sidecar_path(path)
        if not sidecar.exists():
            return False
        try:
            payload = json.loads(sidecar.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise IntermediateError(
                f"unreadable interval sidecar {sidecar}: {exc}"
            ) from exc
        if payload.get("format") != _SIDECAR_FORMAT:
            raise IntermediateError(
                f"not an interval sidecar: {sidecar} "
                f"(format={payload.get('format')!r})"
            )
        spec = payload.get("spec", {})
        if (
            payload.get("column") != column
            or spec.get("level") != self.spec.level
            or tuple(spec.get("universe", ())) != self.spec.universe.as_tuple()
        ):
            return False
        if payload.get("epoch") != relation.modification_count:
            return False  # stale: the relation mutated since the save
        try:
            table: dict[SpatialObject, IntervalApprox | None] = {}
            for item in payload["items"]:
                geom = geometry_from_dict(item["geometry"])
                raw = item["approx"]
                table[geom] = (
                    None if raw is None
                    else IntervalApprox.from_bytes(base64.b64decode(raw))
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise IntermediateError(
                f"corrupt interval sidecar {sidecar}: {exc}"
            ) from exc
        self._entries[(relation.uid, column)] = _StoreEntry(
            epoch=relation.modification_count, table=table
        )
        return True


def sidecar_path(path: str | Path) -> Path:
    """The sidecar file that rides beside a relation snapshot path."""
    p = Path(path)
    return p.with_name(p.name + _SIDECAR_SUFFIX)
