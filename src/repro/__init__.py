"""repro -- a reproduction of *Efficient Computation of Spatial Joins*
(Oliver Guenther, ICDE 1993).

The package implements the paper end to end, from scratch:

* the **geometry kernel** and the **theta / Theta operator pairs** of
  Table 1 (:mod:`repro.geometry`, :mod:`repro.predicates`);
* a **simulated storage engine** -- pages, LRU buffer pool, heap and
  BFS-clustered files -- that counts cost in the paper's units
  (:mod:`repro.storage`);
* a minimal **extended-relational layer** (:mod:`repro.relational`) and a
  paged **B+-tree** (:mod:`repro.btree`);
* **generalization trees**: Guttman R-trees, cartographic hierarchies and
  balanced model trees (:mod:`repro.trees`);
* every **join strategy** the paper studies -- Algorithms SELECT and
  JOIN, nested loop, index-supported join, Valduriez join indices,
  Orenstein's z-order sort-merge, and the Section 5 local-join-index
  extension (:mod:`repro.join`);
* the full **analytical cost model** of Section 4 with the UNIFORM,
  NO-LOC and HI-LOC distributions and the sweeps behind Figures 8-13
  (:mod:`repro.costmodel`);
* **synthetic workloads** (:mod:`repro.workloads`) and the high-level
  **query executor / strategy comparison** API (:mod:`repro.core`).

Quickstart::

    from repro import WithinDistance, SpatialQueryExecutor
    from repro.workloads import make_lakes_and_houses

    scenario = make_lakes_and_houses(n_houses=1000, n_lakes=50)
    executor = SpatialQueryExecutor()
    result = executor.join(
        scenario.houses, "hlocation", scenario.lakes, "larea",
        WithinDistance(100.0), strategy="tree",
    )
    print(len(result), "house-lake pairs;", result.stats)
"""

from repro.errors import ReproError
from repro.geometry import Point, Rect, Polygon, PolyLine, Segment
from repro.predicates import (
    Adjacent,
    ContainedIn,
    DistanceBetween,
    DirectionOf,
    Includes,
    NorthwestOf,
    Overlaps,
    ReachableWithin,
    ThetaOperator,
    WithinDistance,
    theta_filter,
)
from repro.relational import Column, ColumnType, Relation, Schema
from repro.storage import BufferPool, CostMeter, SimulatedDisk
from repro.trees import BalancedKTree, CartoTree, GeneralizationTree, RTree
from repro.join import (
    JoinIndex,
    JoinResult,
    LocalJoinIndex,
    SelectResult,
    naive_sortmerge_join,
    nested_loop_join,
    spatial_select,
    tree_join,
    zorder_merge_join,
)
from repro.core import ExecutionReport, SpatialQueryExecutor, StrategyComparison
from repro.costmodel import PAPER_PARAMETERS, ModelParameters
from repro.errors import CrashError, WALError
from repro.faults import FaultPlan, FaultyDisk
from repro.wal import Checkpointer, RecoveryReport, WriteAheadLog, recover

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "Point",
    "Rect",
    "Polygon",
    "PolyLine",
    "Segment",
    "ThetaOperator",
    "WithinDistance",
    "Adjacent",
    "Overlaps",
    "Includes",
    "ContainedIn",
    "NorthwestOf",
    "DirectionOf",
    "ReachableWithin",
    "DistanceBetween",
    "theta_filter",
    "Column",
    "ColumnType",
    "Schema",
    "Relation",
    "SimulatedDisk",
    "BufferPool",
    "CostMeter",
    "GeneralizationTree",
    "RTree",
    "CartoTree",
    "BalancedKTree",
    "spatial_select",
    "tree_join",
    "nested_loop_join",
    "zorder_merge_join",
    "naive_sortmerge_join",
    "JoinIndex",
    "LocalJoinIndex",
    "JoinResult",
    "SelectResult",
    "SpatialQueryExecutor",
    "StrategyComparison",
    "ExecutionReport",
    "FaultPlan",
    "FaultyDisk",
    "CrashError",
    "WALError",
    "WriteAheadLog",
    "Checkpointer",
    "RecoveryReport",
    "recover",
    "ModelParameters",
    "PAPER_PARAMETERS",
    "__version__",
]
