"""The exact theta-operators of Table 1.

Each operator is a callable object ``theta(o1, o2) -> bool`` over spatial
operands; :meth:`ThetaOperator.filter_operator` returns the matching
conservative Theta-filter (the right-hand column of Table 1).

Operator semantics follow the paper exactly:

* ``within distance d`` is measured **between centerpoints**;
* ``to the Northwest of`` is measured **between centerpoints**;
* ``reachable in x minutes`` is modeled as travel at constant speed, i.e.
  closest-point distance at most ``speed * minutes`` (the paper leaves the
  travel model abstract and buffers the target object -- our Theta-filter
  buffers exactly the same way).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import PredicateError
from repro.predicates.dispatch import (
    SpatialObject,
    centerpoint_of,
    exact_contains,
    exact_overlaps,
    min_distance,
)

_DIRECTIONS = ("nw", "ne", "sw", "se")


class ThetaOperator(ABC):
    """An exact spatial predicate ``o1 theta o2``.

    Subclasses implement :meth:`evaluate`; calling the operator delegates
    there.  ``name`` identifies the operator in cost reports and traces.
    """

    #: Human-readable operator name, e.g. ``"overlaps"``.
    name: str = "theta"

    #: True when ``theta(a, b) == theta(b, a)`` for all operands.
    symmetric: bool = False

    @abstractmethod
    def evaluate(self, o1: SpatialObject, o2: SpatialObject) -> bool:
        """Exact truth value of ``o1 theta o2``."""

    def __call__(self, o1: SpatialObject, o2: SpatialObject) -> bool:
        return self.evaluate(o1, o2)

    def filter_operator(self) -> "BigThetaOperator":  # noqa: F821
        """The conservative Theta-filter paired with this operator."""
        from repro.predicates.big_theta import theta_filter

        return theta_filter(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class WithinDistance(ThetaOperator):
    """``o1 within distance d from o2``, measured between centerpoints."""

    symmetric = True

    def __init__(self, d: float) -> None:
        if d < 0:
            raise PredicateError(f"distance bound must be non-negative, got {d}")
        self.d = d
        self.name = f"within_distance({d})"

    def evaluate(self, o1: SpatialObject, o2: SpatialObject) -> bool:
        return centerpoint_of(o1).distance_to(centerpoint_of(o2)) <= self.d


class Overlaps(ThetaOperator):
    """``o1 overlaps o2``: the closed regions share at least one point."""

    name = "overlaps"
    symmetric = True

    def evaluate(self, o1: SpatialObject, o2: SpatialObject) -> bool:
        return exact_overlaps(o1, o2)


class Includes(ThetaOperator):
    """``o1 includes o2``: o2 lies entirely inside o1 (Figure 4)."""

    name = "includes"

    def evaluate(self, o1: SpatialObject, o2: SpatialObject) -> bool:
        return exact_contains(o1, o2)


class ContainedIn(ThetaOperator):
    """``o1 contained in o2``: the converse of :class:`Includes`."""

    name = "contained_in"

    def evaluate(self, o1: SpatialObject, o2: SpatialObject) -> bool:
        return exact_contains(o2, o1)


class NorthwestOf(ThetaOperator):
    """``o1 to the Northwest of o2``, measured between centerpoints.

    Strict semantics: the centerpoint of ``o1`` must be strictly west
    (smaller x) *and* strictly north (larger y) of the centerpoint of
    ``o2``.
    """

    name = "northwest_of"

    def evaluate(self, o1: SpatialObject, o2: SpatialObject) -> bool:
        return centerpoint_of(o1).is_northwest_of(centerpoint_of(o2))


class DirectionOf(ThetaOperator):
    """Generalized diagonal-direction operator between centerpoints.

    ``direction`` selects the quadrant: ``"nw"`` reproduces
    :class:`NorthwestOf`; ``"ne"``, ``"sw"`` and ``"se"`` are the symmetric
    variants needed for full cartographic query support.
    """

    def __init__(self, direction: str) -> None:
        if direction not in _DIRECTIONS:
            raise PredicateError(
                f"direction must be one of {_DIRECTIONS}, got {direction!r}"
            )
        self.direction = direction
        self.name = f"direction_of({direction})"

    def evaluate(self, o1: SpatialObject, o2: SpatialObject) -> bool:
        c1 = centerpoint_of(o1)
        c2 = centerpoint_of(o2)
        west = c1.x < c2.x
        north = c1.y > c2.y
        if self.direction == "nw":
            return west and north
        if self.direction == "ne":
            return (not west and c1.x != c2.x) and north
        if self.direction == "sw":
            return west and (not north and c1.y != c2.y)
        return (not west and c1.x != c2.x) and (not north and c1.y != c2.y)


class ReachableWithin(ThetaOperator):
    """``o1 reachable from o2 in x minutes`` at constant travel speed.

    The exact test is closest-point distance at most ``minutes * speed``.
    The Theta-filter buffers the enclosing object by the same radius,
    which is exactly the "x-minute buffer" construction of Table 1.
    """

    symmetric = True

    def __init__(self, minutes: float, speed: float = 1.0) -> None:
        if minutes < 0:
            raise PredicateError(f"minutes must be non-negative, got {minutes}")
        if speed <= 0:
            raise PredicateError(f"speed must be positive, got {speed}")
        self.minutes = minutes
        self.speed = speed
        self.name = f"reachable_within({minutes}min @ {speed})"

    @property
    def radius(self) -> float:
        """The travel radius ``minutes * speed``."""
        return self.minutes * self.speed

    def evaluate(self, o1: SpatialObject, o2: SpatialObject) -> bool:
        return min_distance(o1, o2) <= self.radius


class Adjacent(ThetaOperator):
    """``o1 adjacent o2``: boundaries touch but interiors do not overlap.

    This is the operator of the paper's sort-merge counterexample
    (Section 2.2, Figure 1): grid cells o3 and o9 are adjacent yet end up
    far apart in any one-dimensional ordering.  The exact test here is
    for rectangle-like operands: the closed regions intersect while the
    interiors do not (the shared part has zero area).
    """

    name = "adjacent"
    symmetric = True

    def evaluate(self, o1: SpatialObject, o2: SpatialObject) -> bool:
        if not exact_overlaps(o1, o2):
            return False
        inter = o1.mbr().intersection(o2.mbr())
        if inter is None:
            return False
        # Touching means the overlap degenerates to an edge or a corner.
        return inter.area() == 0.0


class DistanceBetween(ThetaOperator):
    """``o1 between lo and hi distance from o2`` (centerpoint metric).

    This is the "between 50 and 100 kilometers from" operator the paper
    uses to motivate the NO-LOC distribution: matches between large
    objects are more likely because a band annulus is easier to hit.
    """

    symmetric = True

    def __init__(self, lo: float, hi: float) -> None:
        if lo < 0 or hi < lo:
            raise PredicateError(f"need 0 <= lo <= hi, got lo={lo}, hi={hi}")
        self.lo = lo
        self.hi = hi
        self.name = f"distance_between({lo}, {hi})"

    def evaluate(self, o1: SpatialObject, o2: SpatialObject) -> bool:
        d = centerpoint_of(o1).distance_to(centerpoint_of(o2))
        return self.lo <= d <= self.hi
