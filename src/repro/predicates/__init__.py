"""Spatial predicates: the theta-operators of the paper and their filters.

Section 3.1 pairs every exact spatial predicate ``theta`` with a coarser
operator ``Theta`` such that for enclosing objects ``o1'`` and ``o2'``,
``o1' Theta o2'`` holds whenever they *may* have subobjects with
``o1 theta o2``.  Table 1 lists the pairs; this package implements both
sides plus the dispatch layer that evaluates predicates across the mixed
geometry types (Point / Rect / Polygon / PolyLine).

The crucial contract, tested property-based in the suite, is
**conservativeness**: if ``a theta b`` then ``A Theta B`` for any
enclosing ``A >= a``, ``B >= b``.  A Theta-miss is therefore a safe prune.
"""

from repro.predicates.dispatch import (
    SpatialObject,
    centerpoint_of,
    exact_contains,
    exact_overlaps,
    min_distance,
)
from repro.predicates.theta import (
    Adjacent,
    ContainedIn,
    DistanceBetween,
    DirectionOf,
    Includes,
    NorthwestOf,
    Overlaps,
    ReachableWithin,
    ThetaOperator,
    WithinDistance,
)
from repro.predicates.big_theta import BigThetaOperator, theta_filter

__all__ = [
    "SpatialObject",
    "ThetaOperator",
    "BigThetaOperator",
    "WithinDistance",
    "Adjacent",
    "Overlaps",
    "Includes",
    "ContainedIn",
    "NorthwestOf",
    "DirectionOf",
    "ReachableWithin",
    "DistanceBetween",
    "theta_filter",
    "exact_overlaps",
    "exact_contains",
    "min_distance",
    "centerpoint_of",
]
