"""Type dispatch for exact geometric tests across mixed operand types.

The theta-operators of Table 1 must work for any combination of the
library's spatial types -- a spatial join may relate a point column
(``house.hlocation``) to a polygon column (``lake.larea``).  This module
centralizes the pairwise dispatch so each operator class stays small.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.errors import PredicateError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.polyline import PolyLine
from repro.geometry.rect import Rect


@runtime_checkable
class SpatialObject(Protocol):
    """Anything the predicates can evaluate: exposes an MBR and a centerpoint.

    All four geometry types satisfy this protocol, as do generalization
    tree node payloads.
    """

    def mbr(self) -> Rect: ...

    def centerpoint(self) -> Point: ...


def centerpoint_of(obj: SpatialObject) -> Point:
    """The object's centerpoint (center of gravity unless user-defined)."""
    return obj.centerpoint()


def exact_overlaps(a: SpatialObject, b: SpatialObject) -> bool:
    """True if the closed point sets of ``a`` and ``b`` share a point."""
    # MBR pre-test: cheap rejection for every type combination.
    if not a.mbr().intersects(b.mbr()):
        return False
    if isinstance(a, Point):
        return _point_overlaps(a, b)
    if isinstance(b, Point):
        return _point_overlaps(b, a)
    if isinstance(a, Rect) and isinstance(b, Rect):
        return True  # MBR pre-test already decided it.
    if isinstance(a, Polygon):
        return _polygon_overlaps(a, b)
    if isinstance(b, Polygon):
        return _polygon_overlaps(b, a)
    if isinstance(a, PolyLine) and isinstance(b, PolyLine):
        return a.intersects(b)
    if isinstance(a, Rect) and isinstance(b, PolyLine):
        return _rect_overlaps_polyline(a, b)
    if isinstance(a, PolyLine) and isinstance(b, Rect):
        return _rect_overlaps_polyline(b, a)
    raise PredicateError(f"overlaps unsupported for {type(a).__name__} / {type(b).__name__}")


def _point_overlaps(p: Point, other: SpatialObject) -> bool:
    if isinstance(other, Point):
        return p == other
    if isinstance(other, Rect):
        return other.contains_point(p)
    if isinstance(other, Polygon):
        return other.contains_point(p)
    if isinstance(other, PolyLine):
        return any(s.contains_point(p) for s in other.segments())
    raise PredicateError(f"overlaps unsupported for Point / {type(other).__name__}")


def _polygon_overlaps(poly: Polygon, other: SpatialObject) -> bool:
    if isinstance(other, Polygon):
        return poly.overlaps(other)
    if isinstance(other, Rect):
        return poly.intersects_rect(other)
    if isinstance(other, PolyLine):
        if any(
            e.intersects(s) for e in poly.edges() for s in other.segments()
        ):
            return True
        return poly.contains_point(other.vertices[0])
    raise PredicateError(f"overlaps unsupported for Polygon / {type(other).__name__}")


def _rect_overlaps_polyline(rect: Rect, line: PolyLine) -> bool:
    if any(rect.contains_point(v) for v in line.vertices):
        return True
    return _rect_boundary_hit(rect, line)


def _rect_boundary_hit(rect: Rect, line: PolyLine) -> bool:
    """True if any chain segment crosses the rectangle's boundary."""
    if rect.area() <= 0:
        return any(s.contains_point(rect.centerpoint()) for s in line.segments())
    boundary = list(Polygon.from_rect(rect).edges())
    return any(s.intersects(e) for s in line.segments() for e in boundary)


def exact_contains(a: SpatialObject, b: SpatialObject) -> bool:
    """True if ``a`` (as a closed region) includes all of ``b``.

    Points and polylines have empty interiors: a point includes only an
    identical point, a polyline includes points on it and sub-chains.
    """
    if not a.mbr().contains_rect(b.mbr()):
        return False
    if isinstance(a, Point):
        return isinstance(b, Point) and a == b
    if isinstance(a, Rect):
        return _rect_contains(a, b)
    if isinstance(a, Polygon):
        return _polygon_contains(a, b)
    if isinstance(a, PolyLine):
        if isinstance(b, Point):
            return any(s.contains_point(b) for s in a.segments())
        if isinstance(b, PolyLine):
            return all(
                any(s.contains_point(v) for s in a.segments()) for v in b.vertices
            ) and all(
                any(s.contains_point(sb.midpoint()) for s in a.segments())
                for sb in b.segments()
            )
        return False
    raise PredicateError(f"contains unsupported for {type(a).__name__} / {type(b).__name__}")


def _rect_contains(rect: Rect, other: SpatialObject) -> bool:
    if isinstance(other, Point):
        return rect.contains_point(other)
    if isinstance(other, Rect):
        return rect.contains_rect(other)
    if isinstance(other, (Polygon, PolyLine)):
        return rect.contains_rect(other.mbr())
    raise PredicateError(f"contains unsupported for Rect / {type(other).__name__}")


def _polygon_contains(poly: Polygon, other: SpatialObject) -> bool:
    if isinstance(other, Point):
        return poly.contains_point(other)
    if isinstance(other, Rect):
        return poly.contains_rect(other)
    if isinstance(other, Polygon):
        return poly.contains_polygon(other)
    if isinstance(other, PolyLine):
        return all(poly.contains_point(v) for v in other.vertices) and all(
            poly.contains_point(s.midpoint()) for s in other.segments()
        )
    raise PredicateError(f"contains unsupported for Polygon / {type(other).__name__}")


def min_distance(a: SpatialObject, b: SpatialObject) -> float:
    """Distance between the closest points of ``a`` and ``b``.

    Zero when the objects overlap.  This is the "measured between closest
    points" semantics the Theta column of Table 1 prescribes for the
    within-distance filter.
    """
    if exact_overlaps(a, b):
        return 0.0
    if isinstance(a, Point):
        return _point_distance(a, b)
    if isinstance(b, Point):
        return _point_distance(b, a)
    if isinstance(a, Rect) and isinstance(b, Rect):
        return a.min_distance_to(b)
    # Mixed extended types: measure between boundary segments.
    segs_a = _boundary_segments(a)
    segs_b = _boundary_segments(b)
    return min(sa.distance_to_segment(sb) for sa in segs_a for sb in segs_b)


def _point_distance(p: Point, other: SpatialObject) -> float:
    if isinstance(other, Point):
        return p.distance_to(other)
    if isinstance(other, Rect):
        return other.distance_to_point(p)
    if isinstance(other, Polygon):
        return other.distance_to_point(p)
    if isinstance(other, PolyLine):
        return other.distance_to_point(p)
    raise PredicateError(f"distance unsupported for Point / {type(other).__name__}")


def _boundary_segments(obj: SpatialObject) -> list:
    if isinstance(obj, Polygon):
        return list(obj.edges())
    if isinstance(obj, PolyLine):
        return list(obj.segments())
    if isinstance(obj, Rect):
        if obj.area() <= 0:
            from repro.geometry.segment import Segment

            lo = Point(obj.xmin, obj.ymin)
            hi = Point(obj.xmax, obj.ymax)
            return [Segment(lo, hi)]
        return list(Polygon.from_rect(obj).edges())
    raise PredicateError(f"no boundary segments for {type(obj).__name__}")
