"""The Theta-filters of Table 1: conservative tests on enclosing objects.

For a generalization-tree traversal, ``o1' Theta o2'`` must be true
whenever subobjects ``o1 <= o1'`` and ``o2 <= o2'`` with ``o1 theta o2``
can exist; only then may a traversal prune on a Theta-miss.  All filters
here evaluate on the operands' minimum bounding rectangles, so they are
cheap regardless of how complex the actual geometries are.

Mapping (left: theta, right: Theta -- verbatim from Table 1):

========================================  =========================================
``within distance d`` (centerpoints)      ``within distance d`` (closest points)
``overlaps``                              ``overlaps``
``includes``                              ``overlaps``                (Figure 4)
``contained in``                          ``overlaps``
``to the Northwest of`` (centerpoints)    overlaps NW tangent quadrant (Figure 5)
``reachable in x minutes``                overlaps the x-minute buffer
========================================  =========================================
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import PredicateError
from repro.predicates.dispatch import SpatialObject
from repro.predicates.theta import (
    Adjacent,
    ContainedIn,
    DirectionOf,
    DistanceBetween,
    Includes,
    NorthwestOf,
    Overlaps,
    ReachableWithin,
    ThetaOperator,
    WithinDistance,
)


class BigThetaOperator(ABC):
    """A conservative filter ``o1' Theta o2'`` over enclosing objects."""

    #: Human-readable filter name.
    name: str = "Theta"

    @abstractmethod
    def evaluate(self, o1: SpatialObject, o2: SpatialObject) -> bool:
        """Truth value of the filter on the operands' MBRs."""

    def __call__(self, o1: SpatialObject, o2: SpatialObject) -> bool:
        return self.evaluate(o1, o2)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class MinDistanceFilter(BigThetaOperator):
    """Closest-point MBR distance at most ``d``.

    Filter for ``within distance d``: any pair of centerpoints within
    distance ``d`` forces the enclosing MBRs to pass this test, because
    centerpoints lie inside their objects' MBRs.
    """

    def __init__(self, d: float) -> None:
        if d < 0:
            raise PredicateError(f"distance bound must be non-negative, got {d}")
        self.d = d
        self.name = f"mbr_within_distance({d})"

    def evaluate(self, o1: SpatialObject, o2: SpatialObject) -> bool:
        return o1.mbr().min_distance_to(o2.mbr()) <= self.d


class MBRIntersectsFilter(BigThetaOperator):
    """MBRs share at least one point.

    Filter for ``overlaps``, ``includes`` and ``contained in`` alike:
    Figure 4 shows why inclusion cannot demand more than overlap of the
    enclosing objects.
    """

    name = "mbr_overlaps"

    def evaluate(self, o1: SpatialObject, o2: SpatialObject) -> bool:
        return o1.mbr().intersects(o2.mbr())


class QuadrantOverlapFilter(BigThetaOperator):
    """``o1'`` overlaps the tangent quadrant of ``o2'`` (Figure 5).

    For direction ``"nw"`` the quadrant is bounded by the right vertical
    and the lower horizontal tangent on ``o2'``; the other directions use
    the symmetric tangent pairs.
    """

    def __init__(self, direction: str = "nw") -> None:
        if direction not in ("nw", "ne", "sw", "se"):
            raise PredicateError(f"unknown quadrant direction {direction!r}")
        self.direction = direction
        self.name = f"quadrant_overlap({direction})"

    def evaluate(self, o1: SpatialObject, o2: SpatialObject) -> bool:
        quadrant = o2.mbr().quadrant(self.direction)
        return o1.mbr().intersects(quadrant)


class BufferOverlapFilter(BigThetaOperator):
    """``o1'`` overlaps the ``radius``-buffer of ``o2'``.

    Filter for the reachability operator: the paper's "x-minute buffer"
    becomes a rectangle grown by the travel radius.  Equivalent to a
    closest-point distance test but phrased as the paper phrases it.
    """

    def __init__(self, radius: float) -> None:
        if radius < 0:
            raise PredicateError(f"buffer radius must be non-negative, got {radius}")
        self.radius = radius
        self.name = f"buffer_overlap({radius})"

    def evaluate(self, o1: SpatialObject, o2: SpatialObject) -> bool:
        return o1.mbr().intersects(o2.mbr().buffer(self.radius))


class DistanceBandFilter(BigThetaOperator):
    """Band test for ``between lo and hi from``: the annulus is reachable.

    Passes when some point pair of the MBRs could realize a centerpoint
    distance in ``[lo, hi]``: the closest MBR points must not already be
    farther than ``hi`` and the farthest not closer than ``lo``.
    """

    def __init__(self, lo: float, hi: float) -> None:
        if lo < 0 or hi < lo:
            raise PredicateError(f"need 0 <= lo <= hi, got lo={lo}, hi={hi}")
        self.lo = lo
        self.hi = hi
        self.name = f"distance_band({lo}, {hi})"

    def evaluate(self, o1: SpatialObject, o2: SpatialObject) -> bool:
        r1 = o1.mbr()
        r2 = o2.mbr()
        return r1.min_distance_to(r2) <= self.hi and r1.max_distance_to(r2) >= self.lo


def theta_filter(theta: ThetaOperator) -> BigThetaOperator:
    """The Table 1 Theta-filter for a given theta-operator.

    Raises :class:`~repro.errors.PredicateError` for operator types with no
    registered filter -- callers must not silently fall back to an exact
    (and thus non-conservative-on-aggregates) test.
    """
    if isinstance(theta, WithinDistance):
        return MinDistanceFilter(theta.d)
    if isinstance(theta, (Overlaps, Includes, ContainedIn, Adjacent)):
        # Adjacency implies touching, which implies MBR intersection.
        return MBRIntersectsFilter()
    if isinstance(theta, NorthwestOf):
        return QuadrantOverlapFilter("nw")
    if isinstance(theta, DirectionOf):
        return QuadrantOverlapFilter(theta.direction)
    if isinstance(theta, ReachableWithin):
        return BufferOverlapFilter(theta.radius)
    if isinstance(theta, DistanceBetween):
        return DistanceBandFilter(theta.lo, theta.hi)
    raise PredicateError(f"no Theta-filter registered for {type(theta).__name__}")
