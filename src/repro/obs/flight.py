"""The service flight recorder: a bounded ring of structured events.

Metrics aggregate *how much* (counters, histograms); traces explain *one
request*.  Neither answers "what just happened to the fleet?" when a
query surfaces :class:`~repro.errors.ShardUnavailable` at 3am: was there
a restart?  A generation bump?  A burst of sheds?  The flight recorder
keeps the last ``capacity`` structured events -- restarts, WAL
recoveries, failovers, sheds, deadline hits, snapshot conflicts, drains
-- in a thread-safe ring buffer with **monotonically increasing event
ids**, so a dump is always a consistent, ordered, bounded tail of
recent history.

Recording is cheap (one lock, one deque append) and never fails: the
recorder exists so error paths can afford to call it.  Consumers:

* the ``stats`` protocol op and :meth:`QueryService.stats` dump the
  recent tail;
* :class:`~repro.errors.ShardUnavailable` / ``ServerBusy`` error
  payloads carry the last few events (``flight_events``), so the error
  a client sees already names the restarts/sheds that caused it;
* ``python -m repro obs`` renders the tail in its dashboard.

Event ids survive ring eviction -- ``dropped`` counts evicted events, so
a reader can tell "quiet system" from "so noisy the ring wrapped".
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import ObservabilityError

#: Default ring capacity: enough for a soak's worth of incidents while
#: staying trivially serializable into an error payload or stats reply.
DEFAULT_CAPACITY = 256


@dataclass(slots=True, frozen=True)
class FlightEvent:
    """One recorded incident: id, kind, wall-clock stamp, free-form fields."""

    event_id: int
    kind: str
    wall_time: float
    fields: dict[str, Any] = field(default_factory=dict)

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe view (fields are copied, never aliased)."""
        return {
            "id": self.event_id,
            "kind": self.kind,
            "at": self.wall_time,
            "fields": dict(self.fields),
        }

    def describe(self) -> str:
        parts = [f"#{self.event_id}", self.kind]
        parts += [f"{k}={v}" for k, v in sorted(self.fields.items())]
        return " ".join(parts)


class FlightRecorder:
    """Thread-safe bounded ring of :class:`FlightEvent` records."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ObservabilityError(
                f"flight recorder capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._events: deque[FlightEvent] = deque(maxlen=capacity)
        self._next_id = 1
        self._recorded = 0
        self._lock = threading.Lock()

    def record(self, kind: str, **fields: Any) -> FlightEvent:
        """Append one event; returns it (ids are strictly increasing)."""
        if not kind:
            raise ObservabilityError("flight event kind must be non-empty")
        with self._lock:
            event = FlightEvent(
                event_id=self._next_id,
                kind=kind,
                wall_time=time.time(),
                fields=fields,
            )
            self._next_id += 1
            self._recorded += 1
            self._events.append(event)
        return event

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (including evicted ones)."""
        with self._lock:
            return self._recorded

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        with self._lock:
            return self._recorded - len(self._events)

    def events(
        self,
        *,
        kinds: Iterable[str] | None = None,
        since_id: int = 0,
        limit: int | None = None,
    ) -> list[FlightEvent]:
        """The retained tail, oldest first, optionally filtered.

        ``kinds`` keeps only matching event kinds; ``since_id`` keeps
        events with ``event_id > since_id`` (an incremental-poll cursor);
        ``limit`` keeps the *newest* N of whatever survived the filters.
        """
        wanted = set(kinds) if kinds is not None else None
        with self._lock:
            out = [
                e for e in self._events
                if e.event_id > since_id
                and (wanted is None or e.kind in wanted)
            ]
        if limit is not None and limit >= 0:
            out = out[-limit:] if limit else []
        return out

    def snapshot(
        self,
        *,
        kinds: Iterable[str] | None = None,
        since_id: int = 0,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """JSON-safe view of :meth:`events` (same filters)."""
        return [
            e.snapshot()
            for e in self.events(kinds=kinds, since_id=since_id, limit=limit)
        ]

    def tail(self, n: int = 6) -> list[dict[str, Any]]:
        """The newest ``n`` events, JSON-safe -- what error payloads carry."""
        return self.snapshot(limit=n)

    def render(self, limit: int = 12) -> str:
        """Terminal-friendly listing of the newest events, oldest first."""
        events = self.events(limit=limit)
        if not events:
            return "(flight recorder empty)"
        lines = [e.describe() for e in events]
        dropped = self.dropped
        if dropped:
            lines.insert(0, f"({dropped} older event(s) evicted by the ring)")
        return "\n".join(lines)
