"""A zero-dependency metrics registry: counters, gauges, histograms.

The cost meters answer "how much did this one operation cost"; the
registry answers "how is the *system* behaving" -- buffer hit ratios,
Theta-filter prune rates per tree level, QualPairs list lengths, WAL
sync batch sizes, parallel chunk durations, retry counts.  Components
publish into a registry handed to them (``attach_metrics``-style); no
component creates or requires one, so the un-observed hot paths carry at
most a ``None`` check.

Metrics are keyed by ``(name, labels)`` -- labels are sorted key/value
pairs, so ``counter("join.filter_evals", level=2)`` names one series per
tree level.  Histograms use *fixed* upper-bound buckets declared at
first creation.  Bucket counts are **per interval**: ``snapshot()``
reads them as-is, and ``snapshot(reset=True)`` additionally zeroes the
interval state so a long-running service soak reads disjoint intervals
instead of silently conflating them.  Lifetime totals
(``total_count``/``total_sum``) survive resets, and every snapshot also
carries a Prometheus-style ``cumulative`` view derived from the
interval counts.

Fleet aggregation: a registry can :meth:`~MetricsRegistry.absorb_snapshot`
another registry's snapshot under extra labels (``shard="2"``), which is
how per-shard registries merge into the service registry.  The merge is
*idempotent* -- counters take the max of their value and the incoming
one, gauges and histograms adopt the incoming state -- so re-absorbing
the same fleet never double-counts.

Label cardinality is capped per metric name
(:class:`MetricsRegistry`'s ``max_series_per_name``); blowing the cap
raises :class:`~repro.errors.ObservabilityError` instead of silently
eating memory, because an unbounded label (a session id, a tuple id)
is a bug in the publisher, not load to absorb.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping

from repro.errors import ObservabilityError
from repro.storage.costs import CostMeter

#: Default histogram buckets for wall-clock durations in seconds.
DURATION_BUCKETS: tuple[float, ...] = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)

#: Default histogram buckets for small cardinalities (list lengths, batch
#: sizes): powers of two up to 4096.
SIZE_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)

_LabelKey = tuple[tuple[str, Any], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count.

    Increments run under a per-metric lock: many sessions of the query
    service publish into one shared registry, and a lost update would
    make the soak tests' exact-count assertions flaky.
    """

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: _LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        with self._lock:
            self.value += amount

    def merge_from(self, value: int) -> None:
        """Adopt an external counter reading: keep the max.

        Fleet merges re-absorb the same shard snapshot on every
        ``stats`` call; max-merge makes that idempotent while still
        tracking the (monotone) source counter.
        """
        if value < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot merge negative value {value}"
            )
        with self._lock:
            self.value = max(self.value, int(value))

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A point-in-time value that may move both ways."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed-bucket distribution with count, sum, min and max.

    Bucket counts are **per interval**: :meth:`snapshot` with
    ``reset=True`` zeroes them (and count/sum/min/max) after reading, so
    repeated scrapes see disjoint windows.  ``total_count`` /
    ``total_sum`` accumulate over the histogram's lifetime and survive
    resets.  Quantiles (:meth:`quantile`) interpolate linearly inside
    the fixed buckets -- a coarse but monotone estimator, exact at
    bucket boundaries, which is all an SLO table needs.
    """

    __slots__ = ("name", "labels", "buckets", "bucket_counts", "count",
                 "sum", "min", "max", "total_count", "total_sum", "_lock")

    def __init__(self, name: str, labels: _LabelKey,
                 buckets: tuple[float, ...]) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ObservabilityError(
                f"histogram {name!r} needs sorted, non-empty buckets, "
                f"got {buckets!r}"
            )
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        # One interval per upper bound, plus the overflow interval.
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.total_count = 0
        self.total_sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.bucket_counts[bisect_left(self.buckets, value)] += 1
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self.total_count += 1
            self.total_sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile of the current interval.

        Linear interpolation within the bucket containing the target
        rank, clamped to the observed ``min``/``max``.  Returns ``None``
        on an empty interval.  The overflow bucket has no upper bound,
        so ranks landing there estimate as ``max``.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(
                f"quantile must be in [0, 1], got {q}"
            )
        with self._lock:
            if not self.count:
                return None
            rank = q * self.count
            seen = 0.0
            for i, n in enumerate(self.bucket_counts):
                if not n:
                    continue
                if seen + n >= rank:
                    if i >= len(self.buckets):
                        return self.max
                    hi = self.buckets[i]
                    lo = self.buckets[i - 1] if i > 0 else min(self.min or 0.0, hi)
                    frac = (rank - seen) / n
                    est = lo + (hi - lo) * frac
                    est = max(est, self.min if self.min is not None else est)
                    est = min(est, self.max if self.max is not None else est)
                    return est
                seen += n
            return self.max  # pragma: no cover - rank beyond all counts

    def snapshot(self, reset: bool = False) -> dict[str, Any]:
        """JSON-safe view; ``reset=True`` zeroes the interval after reading.

        ``buckets`` holds the per-interval counts (the historical,
        pinned shape); ``cumulative`` is the derived Prometheus-style
        view where each bound's count includes everything below it;
        ``bounds`` lists the upper bounds so a snapshot is
        self-describing (and mergeable -- see
        :meth:`MetricsRegistry.absorb_snapshot`).
        """
        with self._lock:
            running = 0
            cumulative: dict[str, int] = {}
            for bound, n in zip(self.buckets, self.bucket_counts):
                running += n
                cumulative[f"le_{bound:g}"] = running
            cumulative["overflow"] = running + self.bucket_counts[-1]
            snap = {
                "type": "histogram",
                "labels": dict(self.labels),
                "count": self.count,
                "sum": self.sum,
                "mean": self.mean,
                "min": self.min,
                "max": self.max,
                "buckets": {
                    **{
                        f"le_{bound:g}": n
                        for bound, n in zip(self.buckets, self.bucket_counts)
                    },
                    "overflow": self.bucket_counts[-1],
                },
                "cumulative": cumulative,
                "bounds": list(self.buckets),
                "total_count": self.total_count,
                "total_sum": self.total_sum,
            }
            if reset:
                self.bucket_counts = [0] * (len(self.buckets) + 1)
                self.count = 0
                self.sum = 0.0
                self.min = None
                self.max = None
            return snap

    def load_snapshot(self, snap: Mapping[str, Any]) -> None:
        """Adopt the state of a :meth:`snapshot` dict (fleet merge).

        The source series is authoritative for its own labels, so this
        *replaces* interval and lifetime state -- re-loading the same
        snapshot is a no-op, which keeps fleet aggregation idempotent.
        """
        bounds = tuple(float(b) for b in snap.get("bounds", self.buckets))
        if bounds != self.buckets:
            raise ObservabilityError(
                f"histogram {self.name!r} cannot load snapshot with "
                f"bounds {bounds!r} (has {self.buckets!r})"
            )
        buckets = snap.get("buckets", {})
        with self._lock:
            self.bucket_counts = [
                int(buckets.get(f"le_{bound:g}", 0)) for bound in self.buckets
            ] + [int(buckets.get("overflow", 0))]
            self.count = int(snap.get("count", 0))
            self.sum = float(snap.get("sum", 0.0))
            self.min = snap.get("min")
            self.max = snap.get("max")
            self.total_count = int(snap.get("total_count", self.count))
            self.total_sum = float(snap.get("total_sum", self.sum))


#: Default per-name series cap: generous for legitimate label sets
#: (levels, shards, ops x outcomes) while catching unbounded labels.
DEFAULT_MAX_SERIES_PER_NAME = 64


class MetricsRegistry:
    """Get-or-create home for every published metric series.

    ``max_series_per_name`` bounds label cardinality per metric name:
    creating one series beyond the cap raises
    :class:`~repro.errors.ObservabilityError` naming the metric, which
    turns an unbounded label (session ids, tuple ids) into a loud bug
    instead of a slow leak.
    """

    def __init__(
        self, max_series_per_name: int = DEFAULT_MAX_SERIES_PER_NAME,
    ) -> None:
        if max_series_per_name < 1:
            raise ObservabilityError(
                f"max_series_per_name must be >= 1, got {max_series_per_name}"
            )
        self.max_series_per_name = max_series_per_name
        self._metrics: dict[tuple[str, _LabelKey], Counter | Gauge | Histogram] = {}
        self._series_per_name: dict[str, int] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, labels: Mapping[str, Any],
                       *args) -> Any:
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ObservabilityError(
                        f"metric {name!r} {dict(labels)!r} already registered "
                        f"as {type(existing).__name__}, not {cls.__name__}"
                    )
                return existing
            n_series = self._series_per_name.get(name, 0)
            if n_series >= self.max_series_per_name:
                raise ObservabilityError(
                    f"metric {name!r} exceeds the label-cardinality cap "
                    f"({self.max_series_per_name} series); refusing "
                    f"{dict(labels)!r} -- an unbounded label is a bug in "
                    "the publisher"
                )
            metric = cls(name, key[1], *args)
            self._metrics[key] = metric
            self._series_per_name[name] = n_series + 1
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, buckets: Iterable[float] | None = None,
                  **labels: Any) -> Histogram:
        chosen = tuple(buckets) if buckets is not None else SIZE_BUCKETS
        return self._get_or_create(Histogram, name, labels, chosen)

    def absorb_meter(self, meter: CostMeter, prefix: str = "cost",
                     **labels: Any) -> None:
        """Publish one meter's counters as ``<prefix>.<field>`` counters.

        This is how a finished operation's CostMeter flows into the
        registry next to the online metrics the components published
        while it ran.
        """
        for key, value in meter.snapshot().items():
            if key == "total":
                self.gauge(f"{prefix}.total", **labels).set(value)
            else:
                self.counter(f"{prefix}.{key}", **labels).inc(int(value))

    def absorb_snapshot(
        self, snapshot: Mapping[str, list[dict[str, Any]]], **labels: Any,
    ) -> None:
        """Merge another registry's :meth:`snapshot` under extra labels.

        This is the fleet-aggregation primitive: each shard's registry
        snapshot merges into the service registry with a ``shard=<id>``
        label.  The merge is idempotent -- counters max-merge
        (:meth:`Counter.merge_from`), gauges and histograms adopt the
        incoming state -- so absorbing the same fleet on every ``stats``
        call never double-counts.  Extra labels must not collide with
        the source series' own labels.
        """
        for name, series_list in snapshot.items():
            for snap in series_list:
                source_labels = snap.get("labels", {})
                clash = set(source_labels) & set(labels)
                if clash:
                    raise ObservabilityError(
                        f"absorb_snapshot label(s) {sorted(clash)} collide "
                        f"with source labels of metric {name!r}"
                    )
                merged = {**source_labels, **labels}
                kind = snap.get("type")
                if kind == "counter":
                    self.counter(name, **merged).merge_from(int(snap["value"]))
                elif kind == "gauge":
                    self.gauge(name, **merged).set(float(snap["value"]))
                elif kind == "histogram":
                    bounds = snap.get("bounds")
                    hist = self.histogram(
                        name,
                        buckets=tuple(bounds) if bounds else None,
                        **merged,
                    )
                    hist.load_snapshot(snap)
                else:
                    raise ObservabilityError(
                        f"cannot absorb metric {name!r} of unknown "
                        f"type {kind!r}"
                    )

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def series(self, name: str) -> list[Counter | Gauge | Histogram]:
        """Every labelled series registered under ``name``."""
        return [m for (n, _), m in sorted(self._metrics.items()) if n == name]

    def snapshot(self) -> dict[str, list[dict[str, Any]]]:
        """JSON-safe view: metric name -> list of labelled series."""
        out: dict[str, list[dict[str, Any]]] = {}
        for (name, _), metric in sorted(self._metrics.items()):
            out.setdefault(name, []).append(metric.snapshot())
        return out

    def render(self) -> str:
        """Terminal-friendly listing, one line per series."""
        lines: list[str] = []
        for (name, labels), metric in sorted(self._metrics.items()):
            label_text = (
                "{" + ", ".join(f"{k}={v}" for k, v in labels) + "}"
                if labels
                else ""
            )
            if isinstance(metric, Counter):
                lines.append(f"{name}{label_text} = {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"{name}{label_text} = {metric.value:.6g}")
            else:
                lines.append(
                    f"{name}{label_text} count={metric.count} "
                    f"mean={metric.mean:.6g} min={metric.min} max={metric.max}"
                )
        return "\n".join(lines)
