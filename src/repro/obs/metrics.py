"""A zero-dependency metrics registry: counters, gauges, histograms.

The cost meters answer "how much did this one operation cost"; the
registry answers "how is the *system* behaving" -- buffer hit ratios,
Theta-filter prune rates per tree level, QualPairs list lengths, WAL
sync batch sizes, parallel chunk durations, retry counts.  Components
publish into a registry handed to them (``attach_metrics``-style); no
component creates or requires one, so the un-observed hot paths carry at
most a ``None`` check.

Metrics are keyed by ``(name, labels)`` -- labels are sorted key/value
pairs, so ``counter("join.filter_evals", level=2)`` names one series per
tree level.  Histograms use *fixed* upper-bound buckets declared at
first creation (Prometheus-style cumulative counting is left to
consumers; bucket counts here are per-interval, which is easier to read
in a terminal).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping

from repro.errors import ObservabilityError
from repro.storage.costs import CostMeter

#: Default histogram buckets for wall-clock durations in seconds.
DURATION_BUCKETS: tuple[float, ...] = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)

#: Default histogram buckets for small cardinalities (list lengths, batch
#: sizes): powers of two up to 4096.
SIZE_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)

_LabelKey = tuple[tuple[str, Any], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count.

    Increments run under a per-metric lock: many sessions of the query
    service publish into one shared registry, and a lost update would
    make the soak tests' exact-count assertions flaky.
    """

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: _LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A point-in-time value that may move both ways."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed-bucket distribution with count, sum, min and max."""

    __slots__ = ("name", "labels", "buckets", "bucket_counts", "count",
                 "sum", "min", "max", "_lock")

    def __init__(self, name: str, labels: _LabelKey,
                 buckets: tuple[float, ...]) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ObservabilityError(
                f"histogram {name!r} needs sorted, non-empty buckets, "
                f"got {buckets!r}"
            )
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        # One interval per upper bound, plus the overflow interval.
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.bucket_counts[bisect_left(self.buckets, value)] += 1
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": {
                **{
                    f"le_{bound:g}": n
                    for bound, n in zip(self.buckets, self.bucket_counts)
                },
                "overflow": self.bucket_counts[-1],
            },
        }


class MetricsRegistry:
    """Get-or-create home for every published metric series."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, _LabelKey], Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, labels: Mapping[str, Any],
                       *args) -> Any:
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ObservabilityError(
                        f"metric {name!r} {dict(labels)!r} already registered "
                        f"as {type(existing).__name__}, not {cls.__name__}"
                    )
                return existing
            metric = cls(name, key[1], *args)
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, buckets: Iterable[float] | None = None,
                  **labels: Any) -> Histogram:
        chosen = tuple(buckets) if buckets is not None else SIZE_BUCKETS
        return self._get_or_create(Histogram, name, labels, chosen)

    def absorb_meter(self, meter: CostMeter, prefix: str = "cost",
                     **labels: Any) -> None:
        """Publish one meter's counters as ``<prefix>.<field>`` counters.

        This is how a finished operation's CostMeter flows into the
        registry next to the online metrics the components published
        while it ran.
        """
        for key, value in meter.snapshot().items():
            if key == "total":
                self.gauge(f"{prefix}.total", **labels).set(value)
            else:
                self.counter(f"{prefix}.{key}", **labels).inc(int(value))

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def series(self, name: str) -> list[Counter | Gauge | Histogram]:
        """Every labelled series registered under ``name``."""
        return [m for (n, _), m in sorted(self._metrics.items()) if n == name]

    def snapshot(self) -> dict[str, list[dict[str, Any]]]:
        """JSON-safe view: metric name -> list of labelled series."""
        out: dict[str, list[dict[str, Any]]] = {}
        for (name, _), metric in sorted(self._metrics.items()):
            out.setdefault(name, []).append(metric.snapshot())
        return out

    def render(self) -> str:
        """Terminal-friendly listing, one line per series."""
        lines: list[str] = []
        for (name, labels), metric in sorted(self._metrics.items()):
            label_text = (
                "{" + ", ".join(f"{k}={v}" for k, v in labels) + "}"
                if labels
                else ""
            )
            if isinstance(metric, Counter):
                lines.append(f"{name}{label_text} = {metric.value}")
            elif isinstance(metric, Gauge):
                lines.append(f"{name}{label_text} = {metric.value:.6g}")
            else:
                lines.append(
                    f"{name}{label_text} count={metric.count} "
                    f"mean={metric.mean:.6g} min={metric.min} max={metric.max}"
                )
        return "\n".join(lines)
