"""Zero-dependency query tracing: nested spans over the cost meters.

The paper's argument is an *accounting* argument -- the C/D formulas
predict page accesses and predicate evaluations -- so the tracer's unit
of duration is the same accounting: every span can capture the delta of
a :class:`~repro.storage.costs.CostMeter` between entry and exit (the
"virtual clock" of the simulated engine) alongside its wall-clock time.
A SELECT traversal then decomposes into one span per tree level, each
carrying exactly the page reads and Theta evaluations that level caused
-- Figures 8-13 become explainable per level instead of per run.

Two implementations share one surface:

* :class:`Tracer` records spans and can export them as JSONL or render
  them as an indented tree;
* :class:`NullTracer` (singleton :data:`NULL_TRACER`) is the disabled
  path: ``span()`` hands back one shared no-op context manager, so
  instrumented code costs a single attribute call per *span* (never per
  tuple or per predicate) when tracing is off.

Instrumented code follows one idiom::

    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("join.level", meter=meter, level=j) as span:
        ...
        span.set_tag("qual_pairs", len(qual_pairs))

Span cost deltas are *inclusive* (a parent contains its children).  The
exporter also derives the *exclusive* ``cost_self`` of every span --
inclusive minus the sum of the direct children's inclusive deltas -- so
summing ``cost_self`` over a trace reproduces the root totals exactly.

Distributed traces: spans recorded in another process (a shard worker)
are shipped home as exported records and **grafted** into the local
tree with :meth:`Tracer.graft`.  Every exported record carries a
*stable, process-qualified* ``uid`` (``"shard2g1:0"``) next to the
local integer ids, so parent links survive the graft and re-exporting
the merged tree yields the same identities the worker minted.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, TextIO

from repro.errors import ObservabilityError
from repro.storage.costs import COUNTER_FIELDS, CostMeter

#: Meter snapshot keys that participate in span cost deltas.  ``total``
#: doubles as the span's virtual-clock duration (paper cost units).
_DELTA_KEYS: tuple[str, ...] = COUNTER_FIELDS + ("total",)


@dataclass(slots=True)
class Span:
    """One traced operation: name, tags, wall time, meter deltas.

    ``process``/``remote_id`` are set only on *grafted* spans: they keep
    the identity the originating process minted (``process`` label plus
    the remote integer id), which is what makes exported uids stable
    across the graft.  Locally recorded spans leave both unset and are
    qualified with their own tracer's process label on export.
    """

    span_id: int
    parent_id: int | None
    depth: int
    name: str
    tags: dict[str, Any] = field(default_factory=dict)
    wall_start: float = 0.0
    wall_end: float | None = None
    cost_start: dict[str, float] | None = None
    cost_end: dict[str, float] | None = None
    process: str | None = None
    remote_id: int | None = None

    def set_tag(self, key: str, value: Any) -> None:
        """Attach or overwrite one tag (usable while the span is open)."""
        self.tags[key] = value

    @property
    def wall_seconds(self) -> float:
        """Wall-clock duration (0.0 while the span is still open)."""
        if self.wall_end is None:
            return 0.0
        return self.wall_end - self.wall_start

    @property
    def cost(self) -> dict[str, float]:
        """Inclusive meter delta over the span ({} when no meter given)."""
        if self.cost_start is None or self.cost_end is None:
            return {}
        return {
            k: self.cost_end.get(k, 0.0) - self.cost_start.get(k, 0.0)
            for k in _DELTA_KEYS
        }

    @property
    def virtual_duration(self) -> float:
        """The span's duration on the cost model's virtual clock."""
        return self.cost.get("total", 0.0)


class _SpanHandle:
    """Context manager opening/closing one span on its tracer."""

    __slots__ = ("_tracer", "_span", "_meter")

    def __init__(self, tracer: "Tracer", span: Span, meter: CostMeter | None) -> None:
        self._tracer = tracer
        self._span = span
        self._meter = meter

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        if self._meter is not None:
            self._span.cost_start = self._meter.snapshot()
        self._span.wall_start = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.wall_end = time.perf_counter()
        if self._meter is not None:
            self._span.cost_end = self._meter.snapshot()
        popped = self._tracer._stack.pop()
        if popped is not self._span:  # pragma: no cover - misuse guard
            raise ObservabilityError(
                f"span stack corrupted: closed {self._span.name!r} but "
                f"{popped.name!r} was on top"
            )


class Tracer:
    """Records nested spans; export as JSONL or render as a tree.

    ``process`` is this tracer's process label -- the qualifier its own
    spans export under (``"main:3"``).  Workers use their shard and
    generation (``"shard2g1"``), so a grafted tree never has two spans
    with the same uid even after restarts.  ``first_id`` seeds the
    span-id counter: a long-lived process serving many requests through
    throwaway tracers (a shard worker) threads the sequence across them,
    so one incarnation never mints the same uid twice.
    """

    def __init__(self, process: str = "main", *, first_id: int = 0) -> None:
        if not process or ":" in process:
            raise ObservabilityError(
                f"process label must be non-empty and ':'-free, "
                f"got {process!r}"
            )
        if first_id < 0:
            raise ObservabilityError(
                f"first_id must be >= 0, got {first_id}"
            )
        self.process = process
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = first_id

    @property
    def enabled(self) -> bool:
        return True

    def span(self, name: str, *, meter: CostMeter | None = None,
             **tags: Any) -> _SpanHandle:
        """Open a child span of the currently active span.

        ``meter`` is snapshotted at entry and exit; the difference is the
        span's inclusive cost delta.  Extra keyword arguments become
        tags; more can be added through :meth:`Span.set_tag` while the
        span is open.
        """
        parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=parent.depth + 1 if parent is not None else 0,
            name=name,
            tags=dict(tags),
        )
        self._next_id += 1
        self.spans.append(span)
        return _SpanHandle(self, span, meter)

    # ------------------------------------------------------------------
    # Remote spans
    # ------------------------------------------------------------------

    def active_span(self) -> Span | None:
        """The innermost currently open span, if any."""
        return self._stack[-1] if self._stack else None

    def graft(
        self, records: Iterable[dict[str, Any]], *,
        default_process: str | None = None,
    ) -> list[Span]:
        """Attach remote span records under the currently active span.

        ``records`` is the output of another tracer's :meth:`to_records`
        (shipped across a process boundary as plain dicts).  Remote
        spans keep the identity their process minted -- ``process`` and
        the remote integer id -- so exported uids and parent links are
        stable across the graft.  Remote roots become children of the
        active span (or trace roots when nothing is open); remote
        parent/child links are preserved via the remote ids.  Costs
        arrive as precomputed inclusive deltas, so the conservation law
        extends over the grafted subtree unchanged.
        """
        parent = self.active_span()
        id_map: dict[int, Span] = {}
        grafted: list[Span] = []
        for rec in records:
            remote_parent = rec.get("parent_id")
            if remote_parent is not None and remote_parent in id_map:
                attach_to: Span | None = id_map[remote_parent]
            else:
                attach_to = parent
            process = rec.get("process") or default_process
            if not process:
                raise ObservabilityError(
                    f"remote span record {rec.get('name')!r} has no "
                    "process label; pass default_process"
                )
            span = Span(
                span_id=self._next_id,
                parent_id=attach_to.span_id if attach_to is not None else None,
                depth=attach_to.depth + 1 if attach_to is not None else 0,
                name=str(rec["name"]),
                tags=dict(rec.get("tags", {})),
                wall_start=0.0,
                wall_end=float(rec.get("wall_seconds", 0.0)),
                process=process,
                remote_id=int(rec["span_id"]),
            )
            cost = rec.get("cost") or {}
            if cost:
                span.cost_start = dict.fromkeys(_DELTA_KEYS, 0.0)
                span.cost_end = {
                    k: float(cost.get(k, 0.0)) for k in _DELTA_KEYS
                }
            self._next_id += 1
            self.spans.append(span)
            id_map[int(rec["span_id"])] = span
            grafted.append(span)
        return grafted

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span: Span) -> list[Span]:
        """Direct children, deterministically ordered by local span id.

        Local ids are assigned at open (or graft) time, so this order is
        span-start order -- stable for a given execution and independent
        of dict/iteration incidentals.
        """
        return sorted(
            (s for s in self.spans if s.parent_id == span.span_id),
            key=lambda s: s.span_id,
        )

    def uid_of(self, span: Span) -> str:
        """The span's stable, process-qualified identity.

        Locally recorded spans qualify with this tracer's process label;
        grafted spans keep the label and id their originating process
        minted, so the uid a worker exported is the uid the merged tree
        exports.
        """
        if span.process is not None:
            remote = span.remote_id if span.remote_id is not None \
                else span.span_id
            return f"{span.process}:{remote}"
        return f"{self.process}:{span.span_id}"

    def to_records(self) -> list[dict[str, Any]]:
        """JSON-safe span records, in span-start order.

        Each record carries the inclusive ``cost`` delta and the derived
        exclusive ``cost_self`` delta (inclusive minus the direct
        children's inclusive deltas).  Summing ``cost_self`` over every
        span of a trace therefore reproduces the root spans' inclusive
        totals -- the conservation law the trace tests pin.

        Identity comes in two forms: the local integer ``span_id`` /
        ``parent_id`` pair (compact, graft-input form) and the stable
        process-qualified ``uid`` / ``parent_uid`` strings, which
        survive grafting and re-export unchanged.
        """
        child_sums: dict[int, dict[str, float]] = {}
        for s in self.spans:
            if s.parent_id is not None and s.cost_start is not None:
                acc = child_sums.setdefault(s.parent_id, dict.fromkeys(_DELTA_KEYS, 0.0))
                for k, v in s.cost.items():
                    acc[k] += v
        uids = {s.span_id: self.uid_of(s) for s in self.spans}
        records = []
        for s in self.spans:
            cost = s.cost
            eaten = child_sums.get(s.span_id)
            if cost and eaten is not None:
                cost_self = {k: cost[k] - eaten[k] for k in _DELTA_KEYS}
            else:
                cost_self = dict(cost)
            records.append(
                {
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    "uid": uids[s.span_id],
                    "parent_uid": (
                        uids[s.parent_id] if s.parent_id is not None else None
                    ),
                    "process": s.process if s.process is not None else self.process,
                    "depth": s.depth,
                    "name": s.name,
                    "tags": dict(s.tags),
                    "wall_seconds": s.wall_seconds,
                    "cost": cost,
                    "cost_self": cost_self,
                }
            )
        return records

    def export_jsonl(self, out: TextIO) -> int:
        """Write one JSON object per span; returns the span count."""
        records = self.to_records()
        for record in records:
            out.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)

    def render_tree(self) -> str:
        """Indented per-span view: name, key tags, wall and cost deltas."""
        lines: list[str] = []

        def describe(span: Span) -> str:
            parts = [span.name]
            if span.tags:
                tag_text = " ".join(
                    f"{k}={v}" for k, v in sorted(span.tags.items())
                )
                parts.append(f"[{tag_text}]")
            cost = span.cost
            if cost:
                parts.append(
                    "cost={:.0f} (reads={:.0f} writes={:.0f} "
                    "filter={:.0f} exact={:.0f})".format(
                        cost.get("total", 0.0),
                        cost.get("page_reads", 0.0),
                        cost.get("page_writes", 0.0),
                        cost.get("theta_filter_evals", 0.0),
                        cost.get("theta_exact_evals", 0.0),
                    )
                )
            parts.append(f"wall={span.wall_seconds * 1e3:.2f}ms")
            return " ".join(parts)

        def walk(span: Span, prefix: str, is_last: bool) -> None:
            glyph = "`-- " if is_last else "|-- "
            lines.append(prefix + glyph + describe(span))
            kids = self.children_of(span)
            ext = "    " if is_last else "|   "
            for i, kid in enumerate(kids):
                walk(kid, prefix + ext, i == len(kids) - 1)

        for root in self.roots():
            lines.append(describe(root))
            kids = self.children_of(root)
            for i, kid in enumerate(kids):
                walk(kid, "", i == len(kids) - 1)
        return "\n".join(lines)


class _NullSpan:
    """The shared do-nothing span the disabled path hands out."""

    __slots__ = ()

    def set_tag(self, key: str, value: Any) -> None:
        pass


class _NullHandle:
    """Reusable no-op context manager: enter/exit do nothing."""

    __slots__ = ()
    _span = _NullSpan()

    def __enter__(self) -> _NullSpan:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


class NullTracer:
    """Disabled tracing: every ``span()`` call is the same no-op.

    Kept stateless and shared (:data:`NULL_TRACER`) so the instrumented
    hot paths pay one method call and one shared-object return per span
    site -- and span sites are per level / per phase, never per tuple.
    """

    _handle = _NullHandle()

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name: str, *, meter: CostMeter | None = None,
             **tags: Any) -> _NullHandle:
        return self._handle

    def graft(
        self, records: Iterable[dict[str, Any]], *,
        default_process: str | None = None,
    ) -> list[Span]:
        """Disabled path: remote records are dropped, nothing is kept."""
        return []

    def roots(self) -> list[Span]:
        return []

    def to_records(self) -> list[dict[str, Any]]:
        return []

    def export_jsonl(self, out: TextIO) -> int:
        return 0

    def render_tree(self) -> str:
        return ""


#: The process-wide disabled tracer; instrumented code defaults to it.
NULL_TRACER = NullTracer()


def coalesce(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """The given tracer, or the shared null tracer when ``None``."""
    return tracer if tracer is not None else NULL_TRACER


def sum_cost_self(records: Iterable[dict[str, Any]]) -> dict[str, float]:
    """Sum the exclusive deltas of exported records (trace conservation)."""
    totals = dict.fromkeys(_DELTA_KEYS, 0.0)
    for record in records:
        for k, v in record.get("cost_self", {}).items():
            totals[k] += v
    return totals


def render_records(records: Iterable[dict[str, Any]]) -> str:
    """Render exported span records as the same indented tree.

    Works on the *wire form* (the dicts :meth:`Tracer.to_records`
    emits), so a trace can be rendered after a JSONL round trip or in a
    process that never saw the live spans.  Parent links resolve through
    the stable ``uid``/``parent_uid`` fields and children sort by local
    ``span_id``, so the output is byte-identical to
    :meth:`Tracer.render_tree` on the originating tracer.
    """
    recs = list(records)
    by_uid = {r["uid"]: r for r in recs}
    kids: dict[str | None, list[dict[str, Any]]] = {}
    for r in recs:
        parent = r.get("parent_uid")
        if parent is not None and parent not in by_uid:
            parent = None
        kids.setdefault(parent, []).append(r)
    for bucket in kids.values():
        bucket.sort(key=lambda r: r["span_id"])

    def describe(rec: dict[str, Any]) -> str:
        parts = [rec["name"]]
        tags = rec.get("tags") or {}
        if tags:
            tag_text = " ".join(f"{k}={v}" for k, v in sorted(tags.items()))
            parts.append(f"[{tag_text}]")
        cost = rec.get("cost") or {}
        if cost:
            parts.append(
                "cost={:.0f} (reads={:.0f} writes={:.0f} "
                "filter={:.0f} exact={:.0f})".format(
                    cost.get("total", 0.0),
                    cost.get("page_reads", 0.0),
                    cost.get("page_writes", 0.0),
                    cost.get("theta_filter_evals", 0.0),
                    cost.get("theta_exact_evals", 0.0),
                )
            )
        parts.append(f"wall={rec.get('wall_seconds', 0.0) * 1e3:.2f}ms")
        return " ".join(parts)

    lines: list[str] = []

    def walk(rec: dict[str, Any], prefix: str, is_last: bool) -> None:
        glyph = "`-- " if is_last else "|-- "
        lines.append(prefix + glyph + describe(rec))
        children = kids.get(rec["uid"], [])
        ext = "    " if is_last else "|   "
        for i, kid in enumerate(children):
            walk(kid, prefix + ext, i == len(children) - 1)

    for root in kids.get(None, []):
        lines.append(describe(root))
        children = kids.get(root["uid"], [])
        for i, kid in enumerate(children):
            walk(kid, "", i == len(children) - 1)
    return "\n".join(lines)
