"""Observability: query tracing, metrics, and model-drift detection.

Three pieces, all zero-dependency and all optional at every call site:

* :mod:`repro.obs.trace` -- nested spans with per-span CostMeter deltas,
  a no-op implementation for the disabled path, a JSONL exporter and a
  tree renderer;
* :mod:`repro.obs.metrics` -- a registry of counters, gauges and
  fixed-bucket histograms that the buffer pool, WAL, parallel pool and
  join kernels publish into;
* :mod:`repro.obs.drift` -- predicted-vs-measured cost comparison with
  the fitting module's log-space tolerance.
"""

from repro.obs.drift import (
    DEFAULT_DRIFT_TOLERANCE,
    DriftReport,
    DriftRow,
    drift_from_measurements,
    drift_from_plan,
    log_error,
    model_for_strategy,
)
from repro.obs.metrics import (
    DURATION_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    coalesce,
    sum_cost_self,
)

__all__ = [
    "DEFAULT_DRIFT_TOLERANCE",
    "DURATION_BUCKETS",
    "SIZE_BUCKETS",
    "Counter",
    "DriftReport",
    "DriftRow",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "coalesce",
    "drift_from_measurements",
    "drift_from_plan",
    "log_error",
    "model_for_strategy",
    "sum_cost_self",
]
