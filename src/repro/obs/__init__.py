"""Observability: query tracing, metrics, and model-drift detection.

Five pieces, all zero-dependency and all optional at every call site:

* :mod:`repro.obs.trace` -- nested spans with per-span CostMeter deltas,
  a no-op implementation for the disabled path, a JSONL exporter, a
  tree renderer, and cross-process grafting of remote span records;
* :mod:`repro.obs.context` -- the request-scoped :class:`TraceContext`
  that rides dispatch payloads so remote spans attribute to one request;
* :mod:`repro.obs.metrics` -- a registry of counters, gauges and
  fixed-bucket histograms that the buffer pool, WAL, parallel pool and
  join kernels publish into, with idempotent fleet-snapshot absorption;
* :mod:`repro.obs.flight` -- the bounded flight recorder of structured
  incident events (restarts, failovers, sheds, deadline hits);
* :mod:`repro.obs.drift` -- predicted-vs-measured cost comparison with
  the fitting module's log-space tolerance.
"""

from repro.obs.context import TraceContext
from repro.obs.drift import (
    DEFAULT_DRIFT_TOLERANCE,
    DriftReport,
    DriftRow,
    drift_from_measurements,
    drift_from_plan,
    log_error,
    model_for_strategy,
)
from repro.obs.flight import DEFAULT_CAPACITY, FlightEvent, FlightRecorder
from repro.obs.metrics import (
    DURATION_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    coalesce,
    render_records,
    sum_cost_self,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_DRIFT_TOLERANCE",
    "DURATION_BUCKETS",
    "SIZE_BUCKETS",
    "Counter",
    "DriftReport",
    "DriftRow",
    "FlightEvent",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceContext",
    "Tracer",
    "coalesce",
    "drift_from_measurements",
    "drift_from_plan",
    "log_error",
    "model_for_strategy",
    "render_records",
    "sum_cost_self",
]
