"""Model-vs-measured drift detection.

The optimizer picks strategies from the Section 4 cost formulas; nothing
so far verified that the formulas still track the engine they describe
after three PRs of parallel, fault-injection and WAL machinery.  This
module closes the loop: after an executed query, compare the cost the
formula predicted (the number the strategy was *chosen by*) against the
metered actuals, and flag disagreement beyond a threshold.

The error metric is the one :mod:`repro.costmodel.fitting` already uses
to score distributions against measured pi tables: the squared
difference of natural logs, with the same ``1e-12`` floor.  The default
threshold, :data:`DEFAULT_DRIFT_TOLERANCE`, is one decade --
``ln(10)**2`` -- matching the paper's log-log figures, where model and
measurement agreeing within an order of magnitude is agreement and
anything beyond it is a visible departure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.errors import ObservabilityError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.core.optimizer import JoinPlan

#: Same probability/cost floor as ``costmodel.fitting._FLOOR``: costs are
#: compared in log space, so exact zeros must be clamped.
FLOOR = 1e-12

#: One decade of disagreement in the squared-log metric of
#: :func:`repro.costmodel.fitting._fit_error`.
DEFAULT_DRIFT_TOLERANCE = math.log(10.0) ** 2

#: Executor strategy name -> model cost names that can predict it, in
#: preference order (the plan carries whichever was computable).
_MODELS_FOR_STRATEGY: dict[str, tuple[str, ...]] = {
    "scan": ("D_I",),
    "tree": ("D_IIb", "D_IIa"),
    "join-index": ("D_III",),
    "partition": ("D_PAR",),
    # A sharded join is the same grid-partition sweep with the grid
    # spread across workers; the Section-4 partition formula prices the
    # *fleet-merged* meter (the router concatenates shard-local work),
    # not any single shard's share.
    "shard-partition": ("D_PAR",),
}


def log_error(predicted: float, measured: float) -> float:
    """Squared natural-log error, fitting.py's agreement metric."""
    return (
        math.log(max(measured, FLOOR)) - math.log(max(predicted, FLOOR))
    ) ** 2


def model_for_strategy(strategy: str, predicted_costs: dict[str, float]) -> str | None:
    """The model formula in ``predicted_costs`` that prices ``strategy``.

    Parameterised strategy names (``"partition[8]"``,
    ``"shard-partition[3]"`` -- the bracket suffix carries the worker or
    shard count) normalise to their base name: the formula prices the
    total work, which the reference-point rule keeps invariant under the
    split.

    A ``"+interval"`` suffix (the executor's drift label for a run with
    the raster-interval tier enabled) prefers the matching ``<model>+INT``
    entry -- the plan's prediction *with* the filter's probe/build/save
    delta -- and falls back to the base formula when the plan never
    priced the filter.
    """
    base, _, flag = strategy.partition("+")
    base = base.split("[", 1)[0]
    for model in _MODELS_FOR_STRATEGY.get(base, ()):
        if flag == "interval" and model + "+INT" in predicted_costs:
            return model + "+INT"
        if model in predicted_costs:
            return model
    return None


@dataclass(slots=True)
class DriftRow:
    """One strategy's predicted-vs-measured comparison."""

    strategy: str
    model: str
    predicted: float
    measured: float
    log_error: float
    drifted: bool

    @property
    def ratio(self) -> float:
        """measured / predicted (clamped at the log-space floor)."""
        return max(self.measured, FLOOR) / max(self.predicted, FLOOR)

    def describe(self) -> str:
        flag = "DRIFT" if self.drifted else "ok"
        return (
            f"{self.strategy:<12} {self.model:<6} "
            f"predicted={self.predicted:14.1f} measured={self.measured:14.1f} "
            f"x{self.ratio:8.3f} log-err={self.log_error:7.3f} [{flag}]"
        )


@dataclass(slots=True)
class DriftReport:
    """Predicted-vs-measured rows for one query, plus the verdict."""

    query: str
    threshold: float = DEFAULT_DRIFT_TOLERANCE
    rows: list[DriftRow] = field(default_factory=list)

    @property
    def drifted(self) -> bool:
        return any(r.drifted for r in self.rows)

    @property
    def worst(self) -> DriftRow | None:
        return max(self.rows, key=lambda r: r.log_error, default=None)

    def row(self, strategy: str) -> DriftRow:
        for r in self.rows:
            if r.strategy == strategy:
                return r
        raise ObservabilityError(f"no drift row for strategy {strategy!r}")

    def format(self) -> str:
        lines = [
            f"drift report: {self.query}",
            f"tolerance: squared-log error <= {self.threshold:.3f} "
            f"(one decade = {DEFAULT_DRIFT_TOLERANCE:.3f})",
        ]
        lines += [f"  {r.describe()}" for r in self.rows]
        if not self.rows:
            lines.append("  (no strategy with a model formula was measured)")
        elif self.drifted:
            worst = self.worst
            lines.append(
                f"MODEL DRIFT: {worst.strategy} off by x{worst.ratio:.2f} "
                f"(log-err {worst.log_error:.2f} > {self.threshold:.2f})"
            )
        else:
            lines.append("model tracks the measured engine within tolerance")
        return "\n".join(lines)


def _drift_row(strategy: str, model: str, predicted: float, measured: float,
               threshold: float) -> DriftRow:
    err = log_error(predicted, measured)
    return DriftRow(
        strategy=strategy,
        model=model,
        predicted=predicted,
        measured=measured,
        log_error=err,
        drifted=err > threshold,
    )


def drift_from_plan(
    plan: "JoinPlan",
    strategy: str,
    measured_total: float,
    *,
    query: str = "",
    threshold: float = DEFAULT_DRIFT_TOLERANCE,
) -> DriftReport:
    """One-row drift report for an executed plan.

    ``strategy`` is the executor strategy that actually ran (it may
    differ from the plan's pick after a fallback); ``measured_total`` is
    the weighted meter total of the winning attempt.  When the executed
    strategy has no formula in the plan, the report has zero rows and
    never flags -- absence of a model is not drift.
    """
    report = DriftReport(query=query, threshold=threshold)
    model = model_for_strategy(strategy, plan.predicted_costs)
    if model is not None:
        report.rows.append(
            _drift_row(strategy, model, plan.predicted_costs[model],
                       measured_total, threshold)
        )
    return report


def drift_from_measurements(
    plan: "JoinPlan",
    measurements: Iterable[tuple[str, float]],
    *,
    query: str = "",
    threshold: float = DEFAULT_DRIFT_TOLERANCE,
) -> DriftReport:
    """Drift rows for every measured strategy the plan can price.

    ``measurements`` are ``(executor_strategy, measured_total)`` pairs --
    exactly what a :class:`~repro.core.comparison.ComparisonReport`'s
    rows provide.  Strategies without a formula are skipped.
    """
    report = DriftReport(query=query, threshold=threshold)
    for strategy, measured in measurements:
        model = model_for_strategy(strategy, plan.predicted_costs)
        if model is None:
            continue
        report.rows.append(
            _drift_row(strategy, model, plan.predicted_costs[model],
                       measured, threshold)
        )
    return report
