"""Request-scoped trace context: the id triple that crosses processes.

The PR 4 tracer assumed one query lives in one process: spans nest on a
thread-local stack and the conservation law is checked against one
meter.  Since the shard runtime, a query's work happens in worker
processes that reply with bare cost meters -- invisible to the trace.
A :class:`TraceContext` is the minimal Dapper-style span context that
restores the link: the service mints one per request (``trace_id`` plus
a monotonically increasing request ``seq``), the router carries it in
every dispatch payload, and workers stamp the remote spans they record
with it, so the grafted tree is attributable to exactly one request.

The context is deliberately a plain value object with a dict wire form:
it must survive JSON protocol lines *and* multiprocessing pickling
without either transport knowing about tracers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ObservabilityError


@dataclass(slots=True, frozen=True)
class TraceContext:
    """One request's identity as it crosses session/shard boundaries.

    ``trace_id`` names the request tree; ``seq`` is the service-level
    request sequence number (total order over everything the service
    admitted); ``span_uid`` is the process-qualified uid of the
    session-side span that remote spans should graft under -- purely
    informational on the worker side, but it makes a remote span record
    self-describing even when inspected in isolation.
    """

    trace_id: str
    seq: int
    span_uid: str = ""

    def __post_init__(self) -> None:
        if not self.trace_id:
            raise ObservabilityError("trace_id must be non-empty")
        if self.seq < 0:
            raise ObservabilityError(f"seq must be >= 0, got {self.seq}")

    def for_span(self, span_uid: str) -> "TraceContext":
        """The same request context re-anchored under ``span_uid``."""
        return TraceContext(self.trace_id, self.seq, span_uid)

    def to_wire(self) -> dict[str, Any]:
        """Plain-dict form carried inside dispatch payloads."""
        return {
            "trace_id": self.trace_id,
            "seq": self.seq,
            "span_uid": self.span_uid,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "TraceContext":
        """Rebuild from :meth:`to_wire` output; validates shape."""
        trace_id = payload.get("trace_id")
        seq = payload.get("seq")
        if not isinstance(trace_id, str) or not isinstance(seq, int) \
                or isinstance(seq, bool):
            raise ObservabilityError(
                f"malformed trace context payload: {dict(payload)!r}"
            )
        return cls(trace_id, seq, str(payload.get("span_uid", "")))
