"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build; ``python setup.py develop``
installs the package in editable mode without needing wheels.  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
