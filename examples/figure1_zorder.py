"""Figure 1 and the sort-merge failure (Section 2.2), made visible.

Renders an 8x8 grid with its Peano/z-order curve values, places objects
on it, shows why spatially adjacent objects can be far apart on the
curve, and then *measures* the failure: a windowed 1-D sort-merge join
misses adjacency matches that the exact strategies find.

Run:  python examples/figure1_zorder.py
"""

from repro import Adjacent, ColumnType, Rect, Relation, Schema
from repro.geometry import Point, z_value
from repro.join import naive_sortmerge_join, nested_loop_join
from repro.relational.schema import Column
from repro.storage import BufferPool, CostMeter, SimulatedDisk

UNIVERSE = Rect(0, 0, 8, 8)
BITS = 3  # an 8x8 grid, as in Figure 1


def render_grid() -> None:
    print("the 8x8 grid with z-order values (Figure 1's Peano curve):\n")
    for gy in range(7, -1, -1):
        row = []
        for gx in range(8):
            z = z_value(Point(gx + 0.5, gy + 0.5), UNIVERSE, BITS)
            row.append(f"{z:3d}")
        print("   " + " ".join(row))
    print()


def show_proximity_gap() -> None:
    a = Point(3.5, 3.5)  # cell (3,3)
    b = Point(4.5, 4.5)  # cell (4,4) -- touches (3,3) at a corner
    za = z_value(a, UNIVERSE, BITS)
    zb = z_value(b, UNIVERSE, BITS)
    print(f"cells (3,3) and (4,4) are spatially adjacent, but their")
    print(f"z-values are {za} and {zb}: {abs(za - zb)} apart on the curve.")
    print("No total order preserves spatial proximity (Section 2.2).\n")


def measure_sortmerge_failure() -> None:
    schema = Schema([Column("oid", ColumnType.INT), Column("cell", ColumnType.RECT)])
    pool = BufferPool(SimulatedDisk(), 4000, CostMeter())

    # Two columns of cells hugging the grid's central seam.
    rel_r = Relation("west", schema, pool)
    rel_s = Relation("east", schema, pool)
    for gy in range(8):
        rel_r.insert([gy, Rect(3.0, float(gy), 4.0, float(gy + 1))])
        rel_s.insert([gy, Rect(4.0, float(gy), 5.0, float(gy + 1))])

    theta = Adjacent()
    exact = nested_loop_join(rel_r, rel_s, "cell", "cell", theta, memory_pages=50)
    merged = naive_sortmerge_join(
        rel_r, rel_s, "cell", "cell", theta,
        universe=UNIVERSE, bits=BITS, window=3,
    )
    missed = exact.pair_set() - merged.pair_set()
    print(f"adjacency join across the seam:")
    print(f"  exact (nested loop)       : {len(exact.pair_set()):2d} matching pairs")
    print(f"  naive sort-merge (w=3)    : {len(merged.pair_set()):2d} found, "
          f"{len(missed)} MISSED")
    for tid_r, tid_s in sorted(missed)[:4]:
        r = rel_r.get(tid_r)
        s = rel_s.get(tid_s)
        print(f"    missed: west row {r['oid']} adjacent to east row {s['oid']}")
    print("\nOnly Orenstein's cell-decomposition merge (repro.join.zorder_merge)")
    print("makes sort-merge sound, and only for the 'overlaps' operator.")


def main() -> None:
    render_grid()
    show_proximity_gap()
    measure_sortmerge_failure()


if __name__ == "__main__":
    main()
