"""Relational pipelines with spatial joins (Sections 2.1 and 4.5).

Two pipelines in one script:

1. The paper's classical walk-through: select the New York customers,
   equijoin with orders, project to ``nyorders``.
2. The spatial version of the same pattern, which Section 4.5 singles
   out: run *selections first*, then the spatial join on the (much
   smaller) intermediate relations -- and watch the cost meter confirm
   the saving.

Run:  python examples/query_pipeline.py
"""

from repro import ColumnType, Point, Rect, Relation, Schema, WithinDistance
from repro.core import SpatialQueryExecutor
from repro.relational import (
    equijoin_into,
    project_into,
    select_into,
    theta_join_into,
)
from repro.relational.schema import Column
from repro.storage import BufferPool, CostMeter, SimulatedDisk
from repro.workloads import uniform_points


def classical_pipeline(pool) -> None:
    print("=== classical pipeline (Section 2.1): nyorders ===")
    customer = Relation(
        "customer",
        Schema([Column("cno", ColumnType.INT), Column("cname", ColumnType.STR),
                Column("ccity", ColumnType.STR)]),
        pool,
    )
    order = Relation(
        "order",
        Schema([Column("custno", ColumnType.INT), Column("partno", ColumnType.INT),
                Column("quantity", ColumnType.INT)]),
        pool,
    )
    customer.insert_all(
        [[1, "ada", "New York"], [2, "bob", "Boston"],
         [3, "cyd", "New York"], [4, "dee", "Chicago"]]
    )
    order.insert_all(
        [[1, 100, 5], [1, 101, 2], [3, 100, 1], [4, 102, 9]]
    )

    nycustomer = select_into(customer, lambda t: t["ccity"] == "New York", "nycustomer")
    joined = equijoin_into(nycustomer, "cno", order, "custno", "nyjoined")
    nyorders = project_into(joined, ["cno", "cname", "partno", "quantity"], "nyorders")
    for t in nyorders.scan():
        print(f"  {t['cname']:4s} ordered part {t['partno']} x{t['quantity']}")
    print()


def spatial_pipeline(pool) -> None:
    print("=== spatial pipeline (Section 4.5): select before join ===")
    schema = Schema([Column("oid", ColumnType.INT), Column("price", ColumnType.FLOAT),
                     Column("loc", ColumnType.POINT)])
    universe = Rect(0, 0, 1000, 1000)
    shops = Relation("shop", schema, pool)
    homes = Relation("home", schema, pool)
    import random

    rng = random.Random(11)
    for i, p in enumerate(uniform_points(1500, universe, rng=1)):
        shops.insert([i, rng.uniform(1, 9), p])
    for i, p in enumerate(uniform_points(1500, universe, rng=2)):
        homes.insert([i, rng.uniform(100_000, 900_000), p])

    executor = SpatialQueryExecutor()
    theta = WithinDistance(25.0)

    # Join the full base relations...
    full_meter = CostMeter()
    theta_join_into(executor, shops, "loc", homes, "loc", theta, "near_full",
                    strategy="scan", meter=full_meter)

    # ... versus: selections first, join after.
    cheap_shops = select_into(shops, lambda t: t["price"] < 3.0, "cheap_shops")
    pricey_homes = select_into(homes, lambda t: t["price"] > 600_000, "pricey_homes")
    reduced_meter = CostMeter()
    result = theta_join_into(
        executor, cheap_shops, "loc", pricey_homes, "loc", theta, "near_reduced",
        strategy="scan", meter=reduced_meter,
    )

    print(f"  base join   : {int(full_meter.theta_exact_evals):>9} predicate evals")
    print(f"  reduced join: {int(reduced_meter.theta_exact_evals):>9} predicate evals "
          f"({len(cheap_shops)} x {len(pricey_homes)} tuples after selections)")
    print(f"  result: {len(result)} (cheap shop, pricey home) pairs within 25 units")
    print(f"  saving: {full_meter.theta_exact_evals / max(1, reduced_meter.theta_exact_evals):.0f}x "
          f"fewer exact predicate evaluations")


def main() -> None:
    pool = BufferPool(SimulatedDisk(), capacity=4000, meter=CostMeter())
    classical_pipeline(pool)
    spatial_pipeline(pool)


if __name__ == "__main__":
    main()
