"""Quickstart: build two spatial relations, index them, join them.

Reproduces the paper's core workflow in ~40 lines:

1. create relations with spatial columns over the simulated storage engine;
2. attach R-tree (generalization tree) secondary indices;
3. run the same spatial join under several strategies;
4. compare the measured costs in the paper's units (C_Theta=1, C_IO=1000).

Run:  python examples/quickstart.py
"""

from repro import (
    ColumnType,
    Overlaps,
    Rect,
    Relation,
    Schema,
    SpatialQueryExecutor,
    StrategyComparison,
)
from repro.relational.schema import Column
from repro.storage import BufferPool, CostMeter, SimulatedDisk
from repro.trees import RTree
from repro.workloads import uniform_rects


def main() -> None:
    # --- set up storage and two relations of random rectangles ---------
    pool = BufferPool(SimulatedDisk(), capacity=4000, meter=CostMeter())
    schema = Schema([Column("oid", ColumnType.INT), Column("shape", ColumnType.RECT)])
    universe = Rect(0, 0, 1000, 1000)

    parcels = Relation("parcel", schema, pool)
    zones = Relation("zone", schema, pool)
    for i, r in enumerate(uniform_rects(800, universe, 40, 40, rng=1)):
        parcels.insert([i, r])
    for i, r in enumerate(uniform_rects(200, universe, 120, 120, rng=2)):
        zones.insert([i, r])

    # --- attach generalization-tree (R-tree) indices --------------------
    parcels.attach_index("shape", RTree(max_entries=10))
    zones.attach_index("shape", RTree(max_entries=10))

    # --- one join, one strategy ----------------------------------------
    executor = SpatialQueryExecutor()
    result = executor.join(parcels, "shape", zones, "shape", Overlaps(), strategy="tree")
    print(f"tree join found {len(result.pair_set())} overlapping (parcel, zone) pairs")
    print(f"  cost: {result.stats['total']:.0f} "
          f"({int(result.stats['page_reads'])} page reads, "
          f"{int(result.stats['theta_filter_evals'] + result.stats['theta_exact_evals'])} "
          f"predicate evaluations)")

    # --- every applicable strategy, compared ----------------------------
    print()
    report = StrategyComparison().compare_join(
        parcels, "shape", zones, "shape", Overlaps(), include_zorder=True
    )
    print(report.format_table())
    print(f"\ncheapest strategy: {report.cheapest().strategy}")


if __name__ == "__main__":
    main()
