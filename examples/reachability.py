"""Reachability queries over a road network (the Table 1 buffer operator).

Builds a synthetic road lattice with facilities, then answers:

1. which facilities are reachable from a given road within x minutes
   (Algorithm SELECT with the buffer Theta-filter of Table 1);
2. which roads have *at least one* hospital nearby (a spatial semijoin,
   probing with early exit);
3. which facilities are farthest from the network (antijoin + kNN).

Run:  python examples/reachability.py
"""

from repro import ReachableWithin
from repro.join import spatial_antijoin, spatial_select, spatial_semijoin
from repro.storage.costs import CostMeter
from repro.trees.knn import nearest_neighbors
from repro.workloads import make_road_network

WITHIN_30 = ReachableWithin(minutes=30.0, speed=1.0)


def main() -> None:
    net = make_road_network(grid=4, facilities_per_kind=12, seed=99)
    print(f"road network: {len(net.roads)} roads, "
          f"{len(net.facilities)} facilities\n")

    # --- 1. SELECT with the buffer filter --------------------------------
    road = next(net.roads.scan())
    meter = CostMeter()
    reachable = spatial_select(
        net.facility_tree, road["path"], WITHIN_30, meter=meter
    )
    kinds: dict[str, int] = {}
    for tid in reachable.tids:
        kind = net.facilities.get(tid)["kind"]
        kinds[kind] = kinds.get(kind, 0) + 1
    print(f"facilities within 30 minutes of road {road['name']!r}: "
          f"{len(reachable.tids)} ({kinds}); "
          f"{meter.theta_filter_evals} filter evaluations")

    # --- 2. semijoin: roads with a hospital nearby ----------------------
    # Restrict the inner side to hospitals by building a small tree.
    from repro.trees.rtree import RTree

    hospital_tree = RTree(max_entries=8)
    for f in net.facilities.scan():
        if f["kind"] == "hospital":
            hospital_tree.insert(f["site"], f.tid)
    semi_meter = CostMeter()
    served = spatial_semijoin(
        net.roads, "path", hospital_tree, WITHIN_30, meter=semi_meter
    )
    print(f"\nroads with a hospital within 30 minutes: "
          f"{len(served.tids)} of {len(net.roads)} "
          f"({semi_meter.predicate_evaluations} predicate evaluations, "
          f"early-exit probes)")

    # --- 3. antijoin + nearest neighbor ----------------------------------
    strict = ReachableWithin(minutes=10.0, speed=1.0)
    unserved = spatial_antijoin(net.facilities, "site", net.road_tree, strict)
    print(f"\nfacilities farther than 10 minutes from every road: "
          f"{len(unserved.tids)}")
    for tid, facility in unserved.matches[:3]:
        dist, nearest_road_tid = nearest_neighbors(
            net.road_tree, facility["site"], k=1
        )[0]
        road_name = net.roads.get(nearest_road_tid)["name"]
        print(f"  {facility['kind']:8s} {facility['fid']:3d}: nearest road "
              f"{road_name!r} at {dist:.1f} minutes")


if __name__ == "__main__":
    main()
