"""Regenerate the paper's comparative study (Figures 8-13) as tables.

Evaluates the Section 4 cost formulas with the exact Table 3 parameters,
sweeping the join selectivity p on a log axis, and prints one table per
figure plus the update costs and detected crossovers.

Run:  python examples/cost_study.py
"""

from repro.costmodel import join_study, selection_study, update_study
from repro.costmodel.sweep import log_space


def main() -> None:
    print("update costs per insertion (Section 4.2, Table 3 parameters)")
    for name, value in update_study().items():
        print(f"  {name:6s} = {value:14.1f}")
    print()

    select_ps = log_space(1e-6, 1.0, 13)
    for figure, dist in ((8, "uniform"), (9, "no-loc"), (10, "hi-loc")):
        study = selection_study(dist, select_ps)
        print(f"--- Figure {figure} ---")
        print(study.format_table())
        print()

    join_ps = log_space(1e-12, 1.0, 13)
    for figure, dist in ((11, "uniform"), (12, "no-loc"), (13, "hi-loc")):
        study = join_study(dist, join_ps)
        print(f"--- Figure {figure} ---")
        print(study.format_table())
        crossover = study.crossover("D_III", "D_IIb")
        if crossover is not None:
            print(f"join index / clustered tree crossover near p = {crossover:.0e}")
        print(f"winner at p=1e-12: {study.winner_at(1e-12)}, "
              f"at p=1e-3: {study.winner_at(1e-3)}")
        print()


if __name__ == "__main__":
    main()
