"""Cartographic hierarchies (Figure 3) and directional queries.

Builds a three-level map (countries > states > cities) whose
generalization tree consists entirely of *application objects* -- every
node may qualify for a query result, which is why Algorithm SELECT checks
interior nodes too.  Then runs:

* a containment selection ("everything inside this window");
* the paper's directional query shape, ``to the Northwest of`` (query (1)
  of the introduction), using the Figure 5 tangent-quadrant filter;
* a within-distance self-join over city regions with a **local join
  index** (the Section 5 future-work hybrid).

Run:  python examples/cartography.py
"""

from repro import NorthwestOf, Overlaps, WithinDistance
from repro.geometry import Rect
from repro.join import LocalJoinIndex, spatial_select
from repro.storage.costs import CostMeter
from repro.workloads import make_map


def main() -> None:
    m = make_map(countries=6, states_per_country=4, cities_per_state=6, seed=7)
    regions, tree = m.regions, m.tree
    print(f"map: {len(regions)} regions, tree height {tree.height()}\n")

    def name_of(tid):
        return regions.get(tid)["name"]

    # --- selection: everything overlapping a map window -----------------
    window = Rect(100, 100, 320, 320)
    meter = CostMeter()
    hits = spatial_select(tree, window, Overlaps(), meter=meter)
    kinds = {}
    for tid in hits.tids:
        kinds.setdefault(regions.get(tid)["kind"], []).append(name_of(tid))
    print(f"window {window.as_tuple()} overlaps "
          f"{len(hits.tids)} regions "
          f"({meter.theta_filter_evals} filter evaluations, "
          f"tree pruned {len(regions) - meter.theta_filter_evals} nodes):")
    for kind in ("country", "state", "city"):
        names = kinds.get(kind, [])
        print(f"  {kind:8s}: {len(names):3d}  e.g. {names[:3]}")

    # --- the paper's query (1): to the Northwest of ---------------------
    # Pick a city near the middle of the map as the reference object.
    cities = [t for t in regions.scan() if t["kind"] == "city"]
    anchor = min(
        cities,
        key=lambda t: t["region"].centerpoint().distance_to(
            m.universe.centerpoint()
        ),
    )
    nw = spatial_select(tree, anchor["region"], NorthwestOf(), reverse=True)
    nw_cities = [name_of(t) for t in nw.tids if regions.get(t)["kind"] == "city"]
    print(f"\n{len(nw_cities)} cities to the northwest of {anchor['name']}; "
          f"first five: {nw_cities[:5]}")

    # --- local join index: nearby-region pairs (Section 5 extension) ----
    theta = WithinDistance(60.0)
    lji = LocalJoinIndex(tree, theta, partition_height=1)
    build_meter = CostMeter()
    lji.build(meter=build_meter)
    print(f"\nlocal join index over {lji.partition_count} country partitions: "
          f"{lji.local_pair_count()} local pairs, "
          f"{lji.residual_pair_count()} residual pairs "
          f"(built with {build_meter.update_computations} comparisons)")

    insert_meter = CostMeter()
    lji.insert(
        tid=cities[0].tid, region=Rect(10, 10, 14, 14),
        partition=0, meter=insert_meter,
    )
    print(f"one maintenance insert touched "
          f"{insert_meter.update_computations} objects "
          f"(a global join index would touch all {len(regions)})")


if __name__ == "__main__":
    main()
