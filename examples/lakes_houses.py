"""The paper's motivating query (2): houses within distance of a lake.

    house(hid, hprice, hlocation)   -- POINT column
    lake(lid, name, larea)          -- POLYGON column

    "Find all houses within 10 kilometers from a lake"

The exact predicate is evaluated between a point and a polygon; the
Theta-filter works on MBRs, which is what makes the hierarchical
strategies effective.  This example runs the query three ways (exhaustive
scan, generalization-tree join, precomputed join index) and then shows
the flip side the paper stresses: the join index's update cost when a new
house is inserted (the U_III effect).

Run:  python examples/lakes_houses.py
"""

from repro import ReachableWithin, SpatialQueryExecutor
from repro.join.join_index import JoinIndex
from repro.storage.costs import CostMeter
from repro.workloads import make_lakes_and_houses

# Travel model: 1 unit of distance per minute; "10 km" becomes 10 units.
WITHIN_10 = ReachableWithin(minutes=10.0, speed=1.0)


def main() -> None:
    scenario = make_lakes_and_houses(n_houses=2000, n_lakes=60, seed=42)
    houses, lakes = scenario.houses, scenario.lakes
    executor = SpatialQueryExecutor()

    print(f"{len(houses)} houses ({houses.num_pages} pages), "
          f"{len(lakes)} lakes ({lakes.num_pages} pages)\n")

    # --- strategy I: exhaustive scan ------------------------------------
    scan_meter = CostMeter()
    scan = executor.join(
        houses, "hlocation", lakes, "larea", WITHIN_10,
        strategy="scan", meter=scan_meter,
    )
    print(f"nested loop : {len(scan.pair_set()):5d} pairs, "
          f"cost {scan_meter.total():12.0f}")

    # --- strategy II: generalization-tree join --------------------------
    tree_meter = CostMeter()
    tree = executor.join(
        houses, "hlocation", lakes, "larea", WITHIN_10,
        strategy="tree", meter=tree_meter,
    )
    print(f"tree join   : {len(tree.pair_set()):5d} pairs, "
          f"cost {tree_meter.total():12.0f}")

    # --- strategy III: precomputed join index ---------------------------
    ji = JoinIndex.precompute(houses, lakes, "hlocation", "larea", WITHIN_10)
    ji_meter = CostMeter()
    from_index = ji.join(meter=ji_meter)
    print(f"join index  : {len(from_index.pair_set()):5d} pairs, "
          f"cost {ji_meter.total():12.0f}")

    assert scan.pair_set() == tree.pair_set() == from_index.pair_set()

    # --- the catch: maintenance (Section 4.2) ---------------------------
    print("\ninserting one new house ...")
    from repro.geometry import Point

    new_house = houses.insert([99_999, 123_456.0, Point(500.0, 500.0)])
    update_meter = CostMeter()
    new_pairs = ji.insert_r(new_house, meter=update_meter)
    print(f"join index maintenance: checked every lake page, "
          f"{update_meter.update_computations} update computations, "
          f"{int(update_meter.page_reads)} page reads "
          f"-> {new_pairs} new index pairs")
    print("(the R-tree absorbed the same insert during houses.insert, "
          "at a few node accesses -- the U_IIx vs U_III gap of Figure 8-13's "
          "update discussion)")

    # --- a typical follow-up: which lakeside houses are expensive? ------
    expensive = [
        (h["hid"], lake["name"])
        for h, lake in (
            (houses.get(r), lakes.get(s)) for r, s in tree.pair_set()
        )
        if h["hprice"] > 400_000
    ]
    print(f"\n{len(expensive)} expensive lakeside houses; first five: "
          f"{expensive[:5]}")


if __name__ == "__main__":
    main()
